"""The Polly-style auto-parallelizer driver.

Walks each function's loop forest outermost-first, checks DOALL
legality with the affine dependence analysis, and lowers parallel loops
to the simulated OpenMP runtime protocol (fork + static worksharing).
Loops whose only obstruction is possible pointer aliasing are versioned
with a runtime check (Figure 2).  The result object records, per loop,
whether and why (not) it was parallelized — the raw data behind the
paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.dependence import ParallelismReport, analyze_loop_parallelism
from ..analysis.induction import CountedLoop, analyze_counted_loop
from ..analysis.loops import Loop
from ..analysis.manager import (AnalysisManager, PreservedAnalyses,
                                get_loop_info)
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.instructions import Branch, CondBranch, DbgValue, Instruction
from ..ir.module import Function, Module
from ..ir.verifier import verify_module
from ..passes import const_fold, dce, simplify_cfg
from .fission import FissionOutcome, FissionStats, try_fission_loop
from .outline import OutlineError, outline_parallel_loop
from .versioning import build_noalias_check


@dataclass
class LoopOutcome:
    function: str
    header: str
    depth: int
    parallelized: bool
    conditional: bool = False           # guarded by a runtime alias check
    microtask: Optional[str] = None
    reasons: List[str] = field(default_factory=list)
    reductions: int = 0                 # reassociable chains tolerated
    fissioned: bool = False             # this loop was split by fission


@dataclass
class PollyResult:
    outcomes: List[LoopOutcome] = field(default_factory=list)
    fission: FissionStats = field(default_factory=FissionStats)
    fission_outcomes: List[FissionOutcome] = field(default_factory=list)

    @property
    def parallel_loops(self) -> List[LoopOutcome]:
        return [o for o in self.outcomes if o.parallelized]

    def outcome_for(self, header: str) -> Optional[LoopOutcome]:
        for outcome in self.outcomes:
            if outcome.header == header:
                return outcome
        return None

    def fission_subloop_outcomes(self, function: Optional[str] = None
                                 ) -> List[LoopOutcome]:
        """Final outcome of every sub-loop produced by a split."""
        headers = {}
        for f_outcome in self.fission_outcomes:
            if not f_outcome.split:
                continue
            if function is not None and f_outcome.function != function:
                continue
            for header in f_outcome.subloop_headers:
                headers[(f_outcome.function, header)] = None
        for outcome in self.outcomes:
            key = (outcome.function, outcome.header)
            if key in headers:
                headers[key] = outcome
        return [o for o in headers.values() if o is not None]


class _RejectLoop(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


#: Minimum estimated compute cycles per iteration for parallelization to
#: be considered profitable.  Like production Polly, tiny-body loops
#: (copy loops, vector adds) are left sequential: fork/barrier overhead
#: would dominate.  These are exactly the loops a *programmer* may still
#: choose to parallelize with machine knowledge — the Figure 9 gap.
MIN_PROFITABLE_COST = 10.0


def estimated_iteration_cost(loop: Loop) -> float:
    """Rough compute cycles per iteration of the loop body."""
    from ..runtime.machine import COMPUTE_COST, DEFAULT_COST, MATH_CALL_COST
    from ..ir.instructions import Call, DbgValue
    total = 0.0
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, DbgValue):
                continue
            if isinstance(inst, Call) and inst.callee_name in MATH_CALL_COST:
                total += MATH_CALL_COST[inst.callee_name]
                continue
            total += COMPUTE_COST.get(inst.opcode, DEFAULT_COST)
            if inst.opcode in ("load", "store"):
                total += 2.0  # partial memory-latency credit
    return total


def _structural_check(loop: Loop, counted: Optional[CountedLoop],
                      min_profitable_cost: float = MIN_PROFITABLE_COST
                      ) -> CountedLoop:
    if counted is None:
        raise _RejectLoop("not a counted loop")
    if not loop.subloops:
        cost = estimated_iteration_cost(loop)
        if cost < min_profitable_cost:
            raise _RejectLoop(
                f"unprofitable: ~{cost:.1f} cycles/iteration below the "
                f"{min_profitable_cost:.0f}-cycle threshold")
    if not loop.is_rotated:
        raise _RejectLoop("loop is not in rotated (do-while) form")
    if not counted.compares_next:
        raise _RejectLoop("exit test does not check the incremented IV")
    if counted.predicate not in ("slt", "sle", "sgt", "sge"):
        raise _RejectLoop(f"unsupported predicate {counted.predicate}")
    exit_block = loop.unique_exit
    if exit_block is None:
        raise _RejectLoop("loop has multiple exit blocks")
    if exit_block.phis():
        raise _RejectLoop("exit block carries phis (loop values live-out)")
    for block in loop.blocks:
        for inst in block.instructions:
            for user in inst.users:
                if isinstance(user, DbgValue):
                    continue
                if user.parent is not None and user.parent not in loop.blocks:
                    raise _RejectLoop(
                        f"value %{inst.name or '?'} is used outside the loop")
    preheader = [p for p in loop.header.predecessors if p not in loop.blocks]
    if len(preheader) != 1:
        raise _RejectLoop("no unique preheader")
    return counted


def _caller_exit(loop: Loop) -> BasicBlock:
    return loop.unique_exit


def _erase_loop_blocks(loop: Loop) -> None:
    function = loop.header.parent
    # Debug intrinsics elsewhere may observe loop values; like LLVM, drop
    # the intrinsics rather than let them block (or dangle after) the
    # transform.
    for block in loop.blocks:
        for inst in block.instructions:
            for user in list(inst.users):
                if isinstance(user, DbgValue) \
                        and user.parent not in loop.blocks:
                    user.erase()
    for block in loop.blocks:
        for inst in list(block.instructions):
            inst.drop_operands()
    for block in loop.blocks:
        for inst in list(block.instructions):
            block.remove(inst)
        function.remove_block(block)


def _parallelize_unconditional(module: Module, loop: Loop,
                               counted: CountedLoop) -> str:
    preheader = [p for p in loop.header.predecessors
                 if p not in loop.blocks][0]
    exit_block = _caller_exit(loop)
    builder = IRBuilder()
    builder.position_before(preheader.terminator)
    microtask, fork = outline_parallel_loop(module, counted, builder)
    preheader.terminator.erase()
    preheader.append(Branch(exit_block))
    _erase_loop_blocks(loop)
    return microtask.name


def _parallelize_versioned(module: Module, loop: Loop, counted: CountedLoop,
                           report: ParallelismReport) -> str:
    function = loop.header.parent
    preheader = [p for p in loop.header.predecessors
                 if p not in loop.blocks][0]
    exit_block = _caller_exit(loop)

    par_block = BasicBlock("polly.par", function)
    seq_block = BasicBlock("polly.seq", function)
    function.add_block(par_block, after=preheader)
    function.add_block(seq_block, after=par_block)

    # Parallel version: bounds + fork + jump to the exit.
    par_builder = IRBuilder(par_block)
    microtask, fork = outline_parallel_loop(module, counted, par_builder)
    par_block.append(Branch(exit_block))

    # The ub64 computed by the outliner sits in par_block, but the alias
    # check needs a bound too — recompute it in the preheader.
    check_builder = IRBuilder()
    check_builder.position_before(preheader.terminator)
    from .outline import _inclusive_bound, _to_i64
    from ..ir.values import ConstantInt, const_int
    from ..ir import types as ir_ty
    if isinstance(counted.bound, ConstantInt):
        bound64 = const_int(counted.bound.value, ir_ty.I64)
    else:
        bound64 = _to_i64(check_builder, counted.bound)
    ub64 = _inclusive_bound(check_builder, counted, bound64)
    noalias = build_noalias_check(check_builder, report, counted, ub64)

    # Sequential fallback: the original guard + loop, moved behind the check.
    old_term = preheader.terminator
    preheader.remove(old_term)
    seq_block.append(old_term)
    preheader.append(CondBranch(noalias, par_block, seq_block))
    for phi in loop.header.phis():
        for i in range(1, len(phi.operands), 2):
            if phi.operands[i] is preheader:
                phi.set_operand(i, seq_block)
    return microtask.name


def try_parallelize_loop(module: Module, loop: Loop,
                         min_profitable_cost: float = MIN_PROFITABLE_COST,
                         enable_reductions: bool = False) -> LoopOutcome:
    function = loop.header.parent
    outcome = LoopOutcome(function.name, loop.header.name, loop.depth,
                          parallelized=False)
    if enable_reductions:
        _demote_scalar_reduction(loop)
    try:
        counted = _structural_check(loop, analyze_counted_loop(loop),
                                    min_profitable_cost)
    except _RejectLoop as reject:
        outcome.reasons.append(reject.reason)
        return outcome
    report = analyze_loop_parallelism(counted,
                                      allow_reductions=enable_reductions)
    outcome.reductions = len(report.reductions)
    if not report.is_parallel:
        outcome.reasons.extend(report.reject_reasons)
        return outcome
    try:
        if report.needs_alias_checks:
            microtask = _parallelize_versioned(module, loop, counted, report)
            outcome.conditional = True
        else:
            microtask = _parallelize_unconditional(module, loop, counted)
    except OutlineError as error:
        outcome.reasons.append(str(error))
        return outcome
    outcome.parallelized = True
    outcome.microtask = microtask
    return outcome


def analyze_function_loops(function: Function,
                           min_profitable_cost: float = MIN_PROFITABLE_COST,
                           analysis_manager: Optional[AnalysisManager] = None
                           ) -> List[LoopOutcome]:
    """Analysis-only view: legality of every loop, without transforming."""
    outcomes = []
    info = get_loop_info(function, analysis_manager)
    for loop in info.all_loops():
        outcome = LoopOutcome(function.name, loop.header.name, loop.depth,
                              parallelized=False)
        try:
            counted = _structural_check(loop, analyze_counted_loop(loop),
                                        min_profitable_cost)
            report = analyze_loop_parallelism(counted)
            if report.is_parallel:
                outcome.parallelized = True
                outcome.conditional = bool(report.needs_alias_checks)
            else:
                outcome.reasons.extend(report.reject_reasons)
        except _RejectLoop as reject:
            outcome.reasons.append(reject.reason)
        outcomes.append(outcome)
    return outcomes


def _demote_scalar_reduction(loop: Loop) -> None:
    """Turn a single scalar accumulator phi into a memory reduction so
    the reduction-aware legality test can accept the loop (§7
    extension)."""
    from ..passes.reg2mem import DemoteError, demote_loop_phi, \
        find_accumulator_phi
    counted = analyze_counted_loop(loop)
    if counted is None:
        return
    accumulator = find_accumulator_phi(loop, counted.phi)
    if accumulator is None:
        return
    try:
        demote_loop_phi(loop, accumulator)
    except DemoteError:
        pass


def parallelize_function(module: Module, function: Function,
                         result: PollyResult,
                         min_profitable_cost: float = MIN_PROFITABLE_COST,
                         enable_reductions: bool = False,
                         analysis_manager: Optional[AnalysisManager] = None,
                         enable_fission: bool = True) -> None:
    attempted = set()
    fissioned = set()
    am = analysis_manager
    while True:
        info = get_loop_info(function, am)
        candidate = _next_candidate(info.top_level, attempted)
        if candidate is None:
            return
        attempted.add(candidate.header)
        outcome = try_parallelize_loop(module, candidate,
                                       min_profitable_cost,
                                       enable_reductions)
        # Outlining (and reduction demotion) rewrites the function's CFG
        # mid-attempt, so conservatively recompute the forest next round.
        if am is not None:
            am.invalidate(function)
        result.outcomes.append(outcome)
        if (enable_fission and not outcome.parallelized
                and candidate.header not in fissioned):
            fissioned.add(candidate.header)
            _attempt_fission(module, function, candidate.header, outcome,
                             result, min_profitable_cost, attempted, am)


def _attempt_fission(module: Module, function: Function, header,
                     outcome: LoopOutcome, result: PollyResult,
                     min_profitable_cost: float, attempted, am) -> None:
    """Try to split a loop the DOALL test just rejected; on success the
    new sub-loops re-enter the candidate queue."""
    info = get_loop_info(function, am)
    loop = next((lp for lp in info.all_loops() if lp.header is header), None)
    if loop is None:
        return
    f_outcome = try_fission_loop(module, loop, min_profitable_cost,
                                 stats=result.fission)
    if not f_outcome.considered:
        return  # structurally unfissionable: not worth recording
    result.fission_outcomes.append(f_outcome)
    if not f_outcome.split:
        return
    outcome.fissioned = True
    # The first sub-loop keeps the original header; re-attempt it only
    # when its statement group is a parallel candidate (otherwise we'd
    # loop on a carried group that can never be parallelized or split).
    if f_outcome.first_group_clean:
        attempted.discard(header)
    if am is not None:
        am.invalidate(function)


def _next_candidate(loops: List[Loop], attempted) -> Optional[Loop]:
    """Outermost-first: descend into a loop's children only when the loop
    itself was already attempted and not transformed."""
    for loop in loops:
        if loop.header not in attempted:
            return loop
        child = _next_candidate(loop.subloops, attempted)
        if child is not None:
            return child
    return None


def _timed_phase(instrumentation, am: AnalysisManager, module: Module,
                 name: str, fn, verify_fn=None):
    """Run one parallelizer phase, recording a PassTiming when asked.

    Mirrors what :class:`~repro.passes.pass_manager.PassManager` records
    per pass (wall time, verify time, analysis-cache deltas, IR size
    deltas), so ``--time-passes`` reports cover the parallelizer too.
    """
    import time
    if instrumentation is None:
        changed = fn()
        if verify_fn is not None:
            verify_fn()
        return changed
    from ..passes.pass_manager import PassTiming, _ir_size
    blocks_before, insts_before = _ir_size(module)
    stats_before = am.stats.snapshot()
    started = time.perf_counter()
    changed = fn()
    elapsed = time.perf_counter() - started
    verify_elapsed = 0.0
    if verify_fn is not None:
        verify_started = time.perf_counter()
        verify_fn()
        verify_elapsed = time.perf_counter() - verify_started
    blocks_after, insts_after = _ir_size(module)
    delta = am.stats.since(stats_before)
    instrumentation.record(PassTiming(
        name=name, seconds=elapsed, verify_seconds=verify_elapsed,
        changed=bool(changed), cache_hits=delta.hits,
        cache_misses=delta.misses, invalidations=delta.invalidations,
        blocks_before=blocks_before, blocks_after=blocks_after,
        instructions_before=insts_before, instructions_after=insts_after))
    return changed


def parallelize_module(module: Module, verify: bool = True,
                       only_functions: Optional[List[str]] = None,
                       min_profitable_cost: float = MIN_PROFITABLE_COST,
                       enable_reductions: bool = False,
                       analysis_manager: Optional[AnalysisManager] = None,
                       instrumentation=None,
                       enable_fission: bool = True) -> PollyResult:
    """Run the parallelizer on every (or selected) defined function.

    ``enable_reductions`` turns on the §7 extension: scalar accumulator
    phis are demoted to shared slots and reassociable reduction chains
    are tolerated by the legality test (and later decompiled by SPLENDID
    as ``reduction(...)`` clauses).  ``instrumentation`` (a
    :class:`~repro.passes.PassInstrumentation`) appends the
    parallelizer's phases to the same report the optimizer feeds.
    """
    am = analysis_manager or AnalysisManager()
    result = PollyResult()

    def run_parallelize():
        for function in list(module.defined_functions()):
            if function.is_outlined_parallel_region:
                continue
            if (only_functions is not None
                    and function.name not in only_functions):
                continue
            parallelize_function(module, function, result,
                                 min_profitable_cost, enable_reductions,
                                 analysis_manager=am,
                                 enable_fission=enable_fission)
        result.fission.parallelized = len(
            [o for o in result.fission_subloop_outcomes() if o.parallelized])
        return bool(result.parallel_loops)

    def run_cleanup():
        # Post-outlining cleanup only rewrites instructions inside
        # functions it changes; invalidate those so the verifier below
        # re-derives its dominator trees only where needed.
        changed = False
        for function in list(module.defined_functions()):
            if const_fold.run_function(function):
                am.invalidate(function, PreservedAnalyses.cfg())
                changed = True
            if simplify_cfg.simplify_function(function):
                am.invalidate(function)
                changed = True
            if dce.run_function(function):
                am.invalidate(function, PreservedAnalyses.cfg())
                changed = True
        return changed

    _timed_phase(instrumentation, am, module, "polly-parallelize",
                 run_parallelize)
    if instrumentation is not None and enable_fission:
        # Fission runs interleaved inside the parallelize phase; report
        # its accumulated time as its own entry so --time-passes can
        # break the phase down.
        from ..passes.pass_manager import PassTiming, _ir_size
        blocks, insts = _ir_size(module)
        instrumentation.record(PassTiming(
            name="polly-fission", seconds=result.fission.seconds,
            verify_seconds=0.0, changed=result.fission.split > 0,
            cache_hits=0, cache_misses=0, invalidations=0,
            blocks_before=blocks, blocks_after=blocks,
            instructions_before=insts, instructions_after=insts))
    _timed_phase(instrumentation, am, module, "polly-cleanup", run_cleanup,
                 verify_fn=((lambda: verify_module(module,
                                                   analysis_manager=am))
                            if verify else None))
    return result
