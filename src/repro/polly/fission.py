"""Profitability-driven loop fission (partial parallelization).

A loop that carries one cross-iteration dependence stays sequential
wholesale under the plain DOALL test — even when most of its statements
are independent.  This driver recovers those loops: it partitions the
statement-dependence graph of a mixed loop into maximal
dependence-isolated groups (SCC condensation over the same affine
verdict lattice the race checker uses), spills scalar recurrences that
feed clean statements to temp arrays (scalar expansion), distributes
the loop at every group boundary, and lets the regular parallelizer
outline the clean sub-loops while the carried ones stay sequential.

Every split is gated on the machine cost model: fission only happens
when the modeled parallel benefit of the clean groups exceeds the
fission overhead (extra loop control, temp-array traffic, fork/join).
Unprofitable mixed loops are left whole — the veto counts surface in
:class:`FissionStats` (``--time-passes``, batch payloads, gateway
``/v1/stats``, and ``repro report fission``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.dependence import (LoopPartition, StatementGroup,
                                   partition_loop_statements)
from ..analysis.induction import (CountedLoop, analyze_counted_loop,
                                  constant_trip_count)
from ..analysis.loops import Loop
from ..ir.instructions import Store
from ..ir.module import Module
from ..passes.loop_distribute import DistributeError, distribute_loop
from .versioning import ExpansionError, expand_scalar

#: Assumed trip count for loops whose bounds are not compile-time
#: constants (PolyBench-style kernels at this repo's miniaturized sizes).
DEFAULT_TRIP_ESTIMATE = 32

#: Per-iteration loop-control cost of one extra sub-loop (IV increment,
#: compare, branch) — what each fission boundary adds to the total work.
LOOP_CONTROL_COST = 3.0

#: Per-iteration cost of one scalar-expansion temp (a store in the
#: producer loop plus a load in the consumer loop).
EXPANSION_COST = 8.0


@dataclass
class FissionStats:
    """Counters for the fission phase, mirrored into ``--time-passes``
    output, batch payloads, the gateway's ``/v1/stats``, and the
    ``repro report fission`` table."""

    considered: int = 0         # mixed loops examined as candidates
    split: int = 0              # loops actually distributed
    subloops: int = 0           # sub-loops those splits produced
    parallelized: int = 0       # sub-loops the parallelizer then outlined
    vetoed_cost: int = 0        # candidates kept whole by the cost model
    vetoed_legality: int = 0    # candidates no legal split could realize
    expanded: int = 0           # scalars spilled to temp arrays
    refused: int = 0            # sub-loop pairs re-fused on decompile
    seconds: float = 0.0

    def merge(self, other: "FissionStats") -> None:
        self.considered += other.considered
        self.split += other.split
        self.subloops += other.subloops
        self.parallelized += other.parallelized
        self.vetoed_cost += other.vetoed_cost
        self.vetoed_legality += other.vetoed_legality
        self.expanded += other.expanded
        self.refused += other.refused
        self.seconds += other.seconds

    def to_dict(self) -> dict:
        return {
            "considered": self.considered, "split": self.split,
            "subloops": self.subloops, "parallelized": self.parallelized,
            "vetoed_cost": self.vetoed_cost,
            "vetoed_legality": self.vetoed_legality,
            "expanded": self.expanded, "refused": self.refused,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "FissionStats":
        stats = cls()
        for key, value in (data or {}).items():
            if hasattr(stats, key):
                setattr(stats, key, value)
        return stats


@dataclass
class FissionOutcome:
    """Per-loop record of one fission attempt (serializable)."""

    function: str
    header: str
    split: bool
    considered: bool = False    # was a mixed (fissionable-shape) candidate
    subloop_headers: List[str] = field(default_factory=list)
    first_group_clean: bool = False
    expanded: int = 0
    modeled_benefit: float = 0.0
    reasons: List[str] = field(default_factory=list)


class _VetoFission(Exception):
    def __init__(self, reason: str, cost: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.cost = cost


def _group_iteration_cost(group: StatementGroup) -> float:
    """Modeled compute cycles one iteration of the group costs (same
    table :func:`~repro.polly.parallelizer.estimated_iteration_cost`
    charges whole loops with)."""
    from ..ir.instructions import Call, DbgValue
    from ..runtime.machine import COMPUTE_COST, DEFAULT_COST, MATH_CALL_COST
    total = 0.0
    for inst in group.instructions:
        if isinstance(inst, DbgValue):
            continue
        if isinstance(inst, Call) and inst.callee_name in MATH_CALL_COST:
            total += MATH_CALL_COST[inst.callee_name]
            continue
        total += COMPUTE_COST.get(inst.opcode, DEFAULT_COST)
        if inst.opcode in ("load", "store"):
            total += 2.0
    return total


def _modeled_benefit(partition: LoopPartition, trips: int,
                     min_profitable_cost: float, machine) -> float:
    """Net modeled cycles saved by fissioning: parallel gain on the
    clean groups minus the fission overheads.  Raises when the split
    cannot pay for itself."""
    if machine is None:
        from ..runtime.machine import MachineModel
        machine = MachineModel()
    gain = 0.0
    profitable_clean = 0
    expansions = 0
    for group in partition.groups:
        expansions += len(group.expansions)
        if group.carried:
            continue
        cost = _group_iteration_cost(group)
        if cost < min_profitable_cost:
            continue  # the parallelizer would reject this sub-loop anyway
        profitable_clean += 1
        sequential = trips * cost
        threads = max(1.0, min(float(machine.num_threads), float(trips)))
        parallel = (machine.fork_overhead + machine.barrier_overhead
                    + sequential / threads)
        gain += sequential - parallel
    if not profitable_clean:
        raise _VetoFission(
            "no clean statement group clears the profitability bar",
            cost=True)
    overhead = (len(partition.groups) - 1) * trips * LOOP_CONTROL_COST
    overhead += expansions * trips * EXPANSION_COST
    benefit = gain - overhead
    if benefit <= 0.0:
        raise _VetoFission(
            f"modeled parallel gain {gain:.0f} cycles does not cover the "
            f"fission overhead {overhead:.0f}", cost=True)
    return benefit


def _structural_gate(loop: Loop) -> CountedLoop:
    if loop.subloops or loop.header is not loop.latch:
        raise _VetoFission("not a single-block innermost loop")
    counted = analyze_counted_loop(loop)
    if counted is None or not counted.compares_next:
        raise _VetoFission("loop is not counted")
    if not loop.is_rotated:
        raise _VetoFission("loop is not in rotated form")
    if loop.unique_exit is None:
        raise _VetoFission("loop has multiple exit blocks")
    preheaders = [p for p in loop.header.predecessors
                  if p not in loop.blocks]
    if len(preheaders) != 1:
        raise _VetoFission("no unique preheader")
    return counted


def _apply_expansions(module: Module, counted: CountedLoop,
                      partition: LoopPartition) -> int:
    expanded = 0
    for group in partition.clean_groups:
        for value in group.expansions:
            readers = [inst for inst in group.instructions
                       if value in inst.operands]
            if not readers:
                continue
            try:
                expand_scalar(module, counted, value, readers)
            except ExpansionError as error:
                raise _VetoFission(f"scalar expansion failed: {error}")
            expanded += 1
    return expanded


def _apply_splits(loop: Loop, partition: LoopPartition) -> List[str]:
    """Distribute at every group boundary; returns all sub-loop header
    names, first-to-last."""
    function = loop.header.parent
    group_stores: List[List[Store]] = [list(g.stores)
                                       for g in partition.groups]
    headers = [loop.header.name]
    current = loop
    for boundary in range(1, len(partition.groups)):
        moving = set()
        for stores in group_stores[boundary:]:
            moving.update(stores)
        result = distribute_loop(current, lambda st: st in moving)
        headers.append(result.second_header.name)
        # Moved stores are now clones; re-identify the later groups.
        for stores in group_stores[boundary:]:
            stores[:] = [result.clones.get(st, st) for st in stores]
        from ..analysis.manager import get_loop_info
        info = get_loop_info(function, None)
        current = next(lp for lp in info.all_loops()
                       if lp.header is result.second_header)
    return headers


def try_fission_loop(module: Module, loop: Loop,
                     min_profitable_cost: Optional[float] = None,
                     machine=None,
                     stats: Optional[FissionStats] = None) -> FissionOutcome:
    """Attempt to fission one (non-parallelizable) loop.

    Returns a :class:`FissionOutcome`; when ``outcome.split`` is true
    the loop has been distributed in place and ``subloop_headers`` names
    every resulting sub-loop for the parallelizer to (re)attempt.
    """
    from .parallelizer import MIN_PROFITABLE_COST
    if min_profitable_cost is None:
        min_profitable_cost = MIN_PROFITABLE_COST
    function = loop.header.parent
    outcome = FissionOutcome(function.name, loop.header.name, split=False)
    stats = stats if stats is not None else FissionStats()
    started = time.perf_counter()
    try:
        # Structural gates and non-mixed partitions are not fission
        # candidates at all — they don't count as considered or vetoed.
        try:
            counted = _structural_gate(loop)
        except _VetoFission as veto:
            outcome.reasons.append(veto.reason)
            return outcome
        partition = partition_loop_statements(counted, allow_expansion=True)
        if not partition.is_mixed:
            outcome.reasons.extend(partition.reasons or [
                "statements form a single dependence class"])
            return outcome
        stats.considered += 1
        outcome.considered = True
        try:
            if any(group.has_recurrence
                   for group in partition.groups[1:]):
                raise _VetoFission(
                    "a scalar recurrence is pinned behind another group")
            trips = constant_trip_count(counted) or DEFAULT_TRIP_ESTIMATE
            outcome.modeled_benefit = _modeled_benefit(
                partition, trips, min_profitable_cost, machine)
            outcome.expanded = _apply_expansions(module, counted, partition)
            outcome.subloop_headers = _apply_splits(loop, partition)
        except DistributeError as error:
            raise _VetoFission(str(error))
    except _VetoFission as veto:
        outcome.reasons.append(veto.reason)
        if veto.cost:
            stats.vetoed_cost += 1
        else:
            stats.vetoed_legality += 1
        return outcome
    finally:
        stats.seconds += time.perf_counter() - started

    outcome.split = True
    outcome.first_group_clean = not partition.groups[0].carried
    stats.split += 1
    stats.subloops += len(outcome.subloop_headers)
    stats.expanded += outcome.expanded
    return outcome
