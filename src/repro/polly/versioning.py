"""Runtime alias-check versioning (the paper's Figure 2 mechanism).

When the dependence test is clean except that two pointer *bases* might
alias (e.g. two pointer arguments), the parallelizer does what Polly
does: emit a runtime check that the accessed ranges are disjoint and
branch to the parallel version when it passes, falling back to the
original sequential loop otherwise.  SPLENDID then decompiles both
versions, making the compiler's aliasing assumption visible to the
programmer — which is what enables the Figure 2 collaboration story.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.dependence import MemoryAccess, ParallelismReport
from ..analysis.induction import CountedLoop
from ..ir import types as ir_ty
from ..ir.builder import IRBuilder
from ..ir.values import ConstantInt, Value, const_int


def _access_extent_const(report: ParallelismReport, base: Value) -> int:
    """Largest constant first-dimension offset (+1) accessed off ``base``."""
    max_const = 0
    for access in report.accesses:
        if access.base is not base or not access.subscripts:
            continue
        first = access.subscripts[0]
        max_const = max(max_const, first.const)
    return max_const + 1


def build_noalias_check(builder: IRBuilder, report: ParallelismReport,
                        counted: CountedLoop, ub64: Value) -> Value:
    """Emit IR computing 'all checked base pairs are disjoint' (i1).

    The accessed range of a base is approximated as
    ``[base, base + ub + max_const_offset + 1)`` elements — the same
    bound-derived constant ranges visible in the paper's Figure 2 check
    (``(A+1000) <= B | (B+999) <= (A+1) ...``).
    """
    result: Value = None
    for base_a, base_b in report.needs_alias_checks:
        extent_a = builder.add(ub64, const_int(_access_extent_const(report, base_a)),
                               "range.end")
        extent_b = builder.add(ub64, const_int(_access_extent_const(report, base_b)),
                               "range.end")
        end_a = builder.gep(base_a, [extent_a], f"{_name(base_a)}.end")
        end_b = builder.gep(base_b, [extent_b], f"{_name(base_b)}.end")
        disjoint_ab = builder.icmp("ule", end_a, _as_ptr(builder, base_b, end_a),
                                   "noalias")
        disjoint_ba = builder.icmp("ule", end_b, _as_ptr(builder, base_a, end_b),
                                   "noalias")
        pair_ok = builder.binop("or", disjoint_ab, disjoint_ba, "pair.disjoint")
        result = pair_ok if result is None else builder.binop(
            "and", result, pair_ok, "all.disjoint")
    if result is None:
        return const_int(1, ir_ty.I1)
    return result


def _name(value: Value) -> str:
    return getattr(value, "name", "") or "ptr"


def _as_ptr(builder: IRBuilder, value: Value, like: Value) -> Value:
    if value.type == like.type:
        return value
    return builder.cast("bitcast", value, like.type)
