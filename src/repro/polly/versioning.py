"""Runtime alias-check versioning (the paper's Figure 2 mechanism).

When the dependence test is clean except that two pointer *bases* might
alias (e.g. two pointer arguments), the parallelizer does what Polly
does: emit a runtime check that the accessed ranges are disjoint and
branch to the parallel version when it passes, falling back to the
original sequential loop otherwise.  SPLENDID then decompiles both
versions, making the compiler's aliasing assumption visible to the
programmer — which is what enables the Figure 2 collaboration story.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.dependence import MemoryAccess, ParallelismReport
from ..analysis.induction import CountedLoop
from ..ir import types as ir_ty
from ..ir.builder import IRBuilder
from ..ir.values import ConstantInt, Value, const_int


def _access_extent_const(report: ParallelismReport, base: Value) -> int:
    """Largest constant first-dimension offset (+1) accessed off ``base``."""
    max_const = 0
    for access in report.accesses:
        if access.base is not base or not access.subscripts:
            continue
        first = access.subscripts[0]
        max_const = max(max_const, first.const)
    return max_const + 1


def build_noalias_check(builder: IRBuilder, report: ParallelismReport,
                        counted: CountedLoop, ub64: Value) -> Value:
    """Emit IR computing 'all checked base pairs are disjoint' (i1).

    The accessed range of a base is approximated as
    ``[base, base + ub + max_const_offset + 1)`` elements — the same
    bound-derived constant ranges visible in the paper's Figure 2 check
    (``(A+1000) <= B | (B+999) <= (A+1) ...``).
    """
    result: Value = None
    for base_a, base_b in report.needs_alias_checks:
        extent_a = builder.add(ub64, const_int(_access_extent_const(report, base_a)),
                               "range.end")
        extent_b = builder.add(ub64, const_int(_access_extent_const(report, base_b)),
                               "range.end")
        end_a = builder.gep(base_a, [extent_a], f"{_name(base_a)}.end")
        end_b = builder.gep(base_b, [extent_b], f"{_name(base_b)}.end")
        disjoint_ab = builder.icmp("ule", end_a, _as_ptr(builder, base_b, end_a),
                                   "noalias")
        disjoint_ba = builder.icmp("ule", end_b, _as_ptr(builder, base_a, end_b),
                                   "noalias")
        pair_ok = builder.binop("or", disjoint_ab, disjoint_ba, "pair.disjoint")
        result = pair_ok if result is None else builder.binop(
            "and", result, pair_ok, "all.disjoint")
    if result is None:
        return const_int(1, ir_ty.I1)
    return result


class ExpansionError(Exception):
    pass


def expand_scalar(module, counted: CountedLoop, value: Value,
                  readers: List["Instruction"]) -> Value:
    """Scalar expansion: spill the per-iteration scalar ``value`` to a
    fresh module-level temp array (``tmp[iv - start] = value``) and
    rewrite each instruction in ``readers`` to load the element instead.

    This is the cheap-temp-array mechanism that breaks a false (scalar
    recurrence) dependence before loop fission: after expansion the
    readers no longer reference the recurrence chain, so their statement
    group can be distributed into its own — parallelizable — loop, which
    re-reads the values the sequential recurrence loop produced.
    """
    from ..analysis.induction import constant_trip_count
    from ..ir.instructions import Instruction, Phi
    from ..ir.values import GlobalVariable

    trips = constant_trip_count(counted)
    if trips is None:
        raise ExpansionError("trip count is not a compile-time constant")
    if counted.step.value != 1:
        raise ExpansionError("only unit-step loops are expanded")
    if not isinstance(counted.start, ConstantInt):
        raise ExpansionError("loop start is not constant")
    if not isinstance(value, Instruction) \
            or value.parent is not counted.loop.header:
        raise ExpansionError("expanded value is not defined in the loop body")

    function = counted.loop.header.parent
    stem = f"{function.name}.fission.{getattr(value, 'name', '') or 'tmp'}"
    name, counter = stem, 0
    while name in module.globals:
        counter += 1
        name = f"{stem}.{counter}"
    temp = GlobalVariable(ir_ty.array(value.type, trips), name)
    module.add_global(temp)

    block = counted.loop.header
    builder = IRBuilder()
    if isinstance(value, Phi):
        first_non_phi = next(i for i in block.instructions
                             if not isinstance(i, Phi))
        builder.position_before(first_non_phi)
    else:
        following = block.instructions[block.instructions.index(value) + 1]
        builder.position_before(following)

    def element_address() -> Value:
        idx: Value = counted.phi
        if counted.start.value != 0:
            idx = builder.sub(idx, const_int(counted.start.value, idx.type),
                              f"{name}.off")
        if idx.type is not ir_ty.I64:
            idx = builder.sext(idx, ir_ty.I64)
        return builder.gep(temp, [const_int(0), idx], f"{name}.idx")

    builder.store(value, element_address())

    order = {inst: i for i, inst in enumerate(block.instructions)}
    readers = sorted(readers, key=lambda r: order[r])
    builder.position_before(readers[0])
    spilled = builder.load(element_address(), f"{name}.val")
    for reader in readers:
        for i, op in enumerate(reader.operands):
            if op is value:
                reader.set_operand(i, spilled)
    return temp


def _name(value: Value) -> str:
    return getattr(value, "name", "") or "ptr"


def _as_ptr(builder: IRBuilder, value: Value, like: Value) -> Value:
    if value.type == like.type:
        return value
    return builder.cast("bitcast", value, like.type)
