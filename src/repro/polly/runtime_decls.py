"""Declarations of the (simulated) LLVM/OpenMP runtime entry points."""

from __future__ import annotations

from ..ir import types as ir_ty
from ..ir.module import Function, Module

FORK_CALL = "__kmpc_fork_call"
STATIC_INIT = "__kmpc_for_static_init_8"
STATIC_FINI = "__kmpc_for_static_fini"
BARRIER = "__kmpc_barrier"

RUNTIME_FUNCTIONS = (FORK_CALL, STATIC_INIT, STATIC_FINI, BARRIER)


def declare_fork_call(module: Module, microtask: Function,
                      num_shared: int) -> Function:
    # Variadic: the first argument is the outlined microtask, the rest are
    # the sequential loop bounds and the shared values.
    ftype = ir_ty.function(ir_ty.VOID, [], is_vararg=True)
    return module.get_or_declare(FORK_CALL, ftype)


def declare_static_init(module: Module) -> Function:
    ftype = ir_ty.function(ir_ty.VOID, [
        ir_ty.I32, ir_ty.I32, ir_ty.I32,
        ir_ty.pointer(ir_ty.I64), ir_ty.pointer(ir_ty.I64),
        ir_ty.pointer(ir_ty.I64), ir_ty.I64, ir_ty.I64])
    return module.get_or_declare(STATIC_INIT, ftype)


def declare_static_fini(module: Module) -> Function:
    ftype = ir_ty.function(ir_ty.VOID, [ir_ty.I32])
    return module.get_or_declare(STATIC_FINI, ftype)


def declare_barrier(module: Module) -> Function:
    ftype = ir_ty.function(ir_ty.VOID, [ir_ty.I32])
    return module.get_or_declare(BARRIER, ftype)
