"""repro.polly — Polly-style automatic parallelizer (DOALL + OpenMP lowering)."""

from .fission import FissionOutcome, FissionStats, try_fission_loop
from .outline import OutlineError, OutlinedLoop, collect_live_ins, outline_parallel_loop
from .parallelizer import (LoopOutcome, PollyResult, analyze_function_loops,
                           parallelize_function, parallelize_module,
                           try_parallelize_loop)
from .runtime_decls import (BARRIER, FORK_CALL, RUNTIME_FUNCTIONS,
                            STATIC_FINI, STATIC_INIT, declare_barrier,
                            declare_fork_call, declare_static_fini,
                            declare_static_init)
from .versioning import build_noalias_check

__all__ = [
    "FissionOutcome", "FissionStats", "try_fission_loop",
    "OutlineError", "OutlinedLoop", "collect_live_ins", "outline_parallel_loop",
    "LoopOutcome", "PollyResult", "analyze_function_loops",
    "parallelize_function", "parallelize_module", "try_parallelize_loop",
    "BARRIER", "FORK_CALL", "RUNTIME_FUNCTIONS", "STATIC_FINI", "STATIC_INIT",
    "declare_barrier", "declare_fork_call", "declare_static_fini",
    "declare_static_init", "build_noalias_check",
]
