"""Outlining of parallel loops into OpenMP microtasks.

Given a rotated counted DOALL loop, this module builds the *outlined
parallel region* exactly the way LLVM's OpenMP lowering does (and the
way the paper's Figure 1 IR shows):

``caller``::

    ...preheader...
    %lb/%ub = <original sequential bounds, i64>
    call void @__kmpc_fork_call(@<fn>.<loop>.omp_outlined, %lb, %ub, <shareds>)
    br label %exit

``microtask``::

    entry:
      %lb.addr / %ub.addr / %stride.addr = alloca i64     ; + stores
      call @__kmpc_for_static_init_8(tid, ntid, 34, %lb.addr, %ub.addr,
                                     %stride.addr, step, 1)
      %mylb = load %lb.addr ; %myub = load %ub.addr
      %guard = icmp sle %mylb, %myub                       ; guard check
      br %guard, label %loop, label %finish
    loop: ...cloned rotated loop, bounds rewritten to mylb/myub...
    finish:
      call @__kmpc_for_static_fini(tid)
      ret void

SPLENDID's Parallel Region Detransformer later reverses every one of
these steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.induction import CountedLoop
from ..analysis.loops import Loop
from ..ir import types as ir_ty
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.instructions import (Alloca, Branch, Call, Cast, CondBranch,
                               DbgValue, ICmp, Instruction, Phi, Ret, Store)
from ..ir.module import Function, Module
from ..ir.values import (Argument, Constant, ConstantInt, GlobalVariable,
                         Value, const_int)
from .runtime_decls import (declare_fork_call, declare_static_fini,
                            declare_static_init)

def _next_outline_id(module: Module) -> int:
    """Deterministic per-module microtask id.

    A process-global counter would make outlined names (and therefore
    every decompiled artifact) depend on how many modules the process
    parallelized before — unusable for the content-addressed artifact
    cache and for reproducible batch output.  Counting the module's own
    microtasks keeps names stable across processes and runs.
    """
    used = set()
    for function in module.functions.values():
        _, sep, suffix = function.name.rpartition(".omp_outlined.")
        if sep and suffix.isdigit():
            used.add(int(suffix))
    next_id = len(used)
    while next_id in used:       # paranoia against gaps from renames
        next_id += 1
    return next_id


class OutlineError(Exception):
    pass


@dataclass
class OutlinedLoop:
    """Record of one parallelized loop (consumed by reports and tests)."""

    caller: Function
    microtask: Function
    fork_call: Call
    header_name: str
    schedule: str = "static"
    nowait: bool = True
    step: int = 1


def _is_live_in_candidate(value: Value) -> bool:
    if isinstance(value, (Constant, GlobalVariable)):
        return False
    if isinstance(value, (BasicBlock, Function)):
        return False
    return isinstance(value, (Instruction, Argument))


def collect_live_ins(counted: CountedLoop) -> List[Value]:
    """Out-of-loop values the loop body reads, in deterministic order.

    The IV's initial value and the loop bound are excluded when their only
    in-loop uses are the ones the outliner rewrites (phi init / exit test).
    """
    loop = counted.loop
    live: List[Value] = []
    seen = set()
    for block in loop.blocks_in_layout_order():
        for inst in block.instructions:
            if isinstance(inst, DbgValue):
                continue
            for i, op in enumerate(inst.operands):
                if not _is_live_in_candidate(op):
                    continue
                if isinstance(op, Instruction) and op.parent in loop.blocks:
                    continue
                if inst is counted.phi and op is counted.start:
                    continue
                if inst is counted.compare and op is counted.bound:
                    continue
                if id(op) not in seen:
                    seen.add(id(op))
                    live.append(op)
    return live


def _inclusive_bound(builder: IRBuilder, counted: CountedLoop,
                     bound64: Value) -> Value:
    """Inclusive i64 upper (or lower, for negative steps) iteration bound."""
    predicate = counted.predicate
    if predicate == "slt":
        return builder.sub(bound64, const_int(1), "polly.ub")
    if predicate == "sle":
        return bound64
    if predicate == "sgt":
        return builder.add(bound64, const_int(1), "polly.lb.last")
    if predicate == "sge":
        return bound64
    raise OutlineError(f"unsupported continue predicate {predicate!r}")


def _to_i64(builder: IRBuilder, value: Value) -> Value:
    if isinstance(value, ConstantInt):
        return const_int(value.value, ir_ty.I64)
    if value.type == ir_ty.I64:
        return value
    return builder.sext(value, ir_ty.I64)


def outline_parallel_loop(module: Module, counted: CountedLoop,
                          insert_builder: IRBuilder) -> Tuple[Function, Call]:
    """Create the microtask and emit the fork call via ``insert_builder``
    (positioned where the loop used to run).  The original loop blocks are
    NOT removed here — the caller-side rewrite owns that."""
    loop = counted.loop
    caller = loop.header.parent
    if not counted.compares_next:
        raise OutlineError("exit test does not check the incremented IV")
    step = counted.step.value
    if step == 0:
        raise OutlineError("zero step")

    live_ins = collect_live_ins(counted)

    # --- Caller side: sequential bounds + fork call. ---
    lb64 = _to_i64(insert_builder, counted.start)
    if isinstance(counted.bound, ConstantInt):
        bound64 = const_int(counted.bound.value, ir_ty.I64)
    else:
        bound64 = _to_i64(insert_builder, counted.bound)
    ub64 = _inclusive_bound(insert_builder, counted, bound64)

    # --- Microtask skeleton. ---
    outline_id = _next_outline_id(module)
    name = f"{caller.name}.omp_outlined.{outline_id}"
    param_types = [ir_ty.I32, ir_ty.I32, ir_ty.I64, ir_ty.I64]
    param_names = ["tid", "ntid", "lb", "ub"]
    for value in live_ins:
        param_types.append(value.type)
        param_names.append(getattr(value, "name", "") or "shared")
    microtask = Function(name, ir_ty.function(ir_ty.VOID, param_types),
                         param_names)
    microtask.is_outlined_parallel_region = True
    module.add_function(microtask)

    tid, ntid, lb_param, ub_param = microtask.arguments[:4]
    live_params = dict(zip(map(id, live_ins), microtask.arguments[4:]))

    entry = microtask.append_block("entry")
    finish = BasicBlock("runtime.finish", microtask)
    builder = IRBuilder(entry)
    lb_slot = builder.alloca(ir_ty.I64, "lb.addr")
    ub_slot = builder.alloca(ir_ty.I64, "ub.addr")
    stride_slot = builder.alloca(ir_ty.I64, "stride.addr")
    builder.store(lb_param, lb_slot)
    builder.store(ub_param, ub_slot)
    builder.store(const_int(step, ir_ty.I64), stride_slot)
    init_fn = declare_static_init(module)
    builder.call(init_fn, [tid, ntid, const_int(34, ir_ty.I32),
                           lb_slot, ub_slot, stride_slot,
                           const_int(step, ir_ty.I64),
                           const_int(1, ir_ty.I64)])
    my_lb = builder.load(lb_slot, "mylb")
    my_ub = builder.load(ub_slot, "myub")
    guard_pred = "sle" if step > 0 else "sge"
    guard = builder.icmp(guard_pred, my_lb, my_ub, "chunk.nonempty")

    # --- Clone the loop blocks into the microtask. ---
    value_map: Dict[int, Value] = {id(v): p for v, p in
                                   zip(live_ins, microtask.arguments[4:])}
    block_map: Dict[BasicBlock, BasicBlock] = {}
    loop_blocks = loop.blocks_in_layout_order()
    for block in loop_blocks:
        clone = BasicBlock(block.name, microtask)
        microtask.add_block(clone)
        block_map[block] = clone
        value_map[id(block)] = clone
    microtask.add_block(finish)

    cloned_of: Dict[int, Instruction] = {}
    for block in loop_blocks:
        clone_block = block_map[block]
        for inst in block.instructions:
            if isinstance(inst, DbgValue):
                # Keep only debug intrinsics whose value lives in the loop
                # or is a live-in; others have no counterpart here.
                op = inst.value
                keep = (isinstance(op, Instruction) and op.parent in loop.blocks) \
                    or id(op) in value_map or isinstance(op, Constant)
                if not keep:
                    continue
            copy = inst.clone()
            cloned_of[id(inst)] = copy
            value_map[id(inst)] = copy
            clone_block.append(copy)
    for block in loop_blocks:
        for inst in block_map[block].instructions:
            for i, op in enumerate(inst.operands):
                mapped = value_map.get(id(op))
                if mapped is not None:
                    inst.set_operand(i, mapped)

    # --- Rewrite the IV initial value (thread-local lower bound). ---
    iv_clone: Phi = cloned_of[id(counted.phi)]
    init_value: Value = my_lb
    if counted.phi.type != ir_ty.I64:
        init_value = builder.trunc(my_lb, counted.phi.type, "mylb.trunc")
    for i in range(1, len(iv_clone.operands), 2):
        if iv_clone.operands[i] not in block_map.values():
            # This is the edge that used to come from the preheader.
            iv_clone.set_operand(i - 1, init_value)
            iv_clone.set_operand(i, entry)

    builder.cond_br(guard, block_map[loop.header], finish)

    # --- Rewrite the exit test against the thread-local upper bound. ---
    old_cmp: ICmp = cloned_of[id(counted.compare)]
    latch_clone = block_map[counted.exiting_block]
    tested_clone = cloned_of.get(id(counted.step_inst), None)
    if tested_clone is None:
        raise OutlineError("incremented IV missing from clone")
    cmp_builder = IRBuilder()
    cmp_builder.position_before(old_cmp)
    tested64 = tested_clone
    if tested_clone.type != ir_ty.I64:
        tested64 = cmp_builder.sext(tested_clone, ir_ty.I64)
    continue_pred = "sle" if step > 0 else "sge"
    new_cmp = cmp_builder.icmp(continue_pred, tested64, my_ub, "omp.cont")
    old_term = latch_clone.terminator
    old_term.erase()
    latch_clone.append(CondBranch(new_cmp, block_map[loop.header], finish))
    if not old_cmp.is_used():
        old_cmp.erase()

    # --- Finish block. ---
    fini_builder = IRBuilder(finish)
    fini_fn = declare_static_fini(module)
    fini_builder.call(fini_fn, [tid])
    fini_builder.ret()
    microtask.assign_names()

    # --- Fork call in the caller. ---
    fork_fn = declare_fork_call(module, microtask, len(live_ins))
    fork_call = insert_builder.call(
        fork_fn, [microtask, lb64, ub64, *live_ins])
    return microtask, fork_call
