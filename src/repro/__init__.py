"""repro — a from-scratch reproduction of SPLENDID (ASPLOS 2023).

SPLENDID decompiles *parallel LLVM-IR* (sequential C, optimized at -O2
and auto-parallelized by Polly) into portable, natural C/OpenMP source,
enabling compiler-programmer collaborative parallelization.

This package rebuilds the entire stack in pure Python:

* :mod:`repro.minic`      — a mini-C front end (parser/sema/printer);
* :mod:`repro.frontend`   — AST -> IR lowering with debug metadata,
  plus OpenMP lowering (the "any host compiler" used for recompiling
  decompiled code);
* :mod:`repro.ir`         — an LLVM-flavored SSA IR;
* :mod:`repro.analysis`   — dominators, loops, dependence, dataflow;
* :mod:`repro.passes`     — mem2reg, loop rotation, LICM, CSE, DCE,
  unrolling, distribution (the -O2 pipeline);
* :mod:`repro.polly`      — the DOALL auto-parallelizer with runtime
  alias versioning and ``__kmpc_*`` OpenMP lowering;
* :mod:`repro.runtime`    — an IR interpreter with a simulated OpenMP
  runtime and a 28-thread machine cost model;
* :mod:`repro.decompilers`— Rellic/Ghidra/CBackend-style baselines;
* :mod:`repro.core`       — SPLENDID itself;
* :mod:`repro.metrics`    — BLEU-4, LoC, variable-restoration metrics;
* :mod:`repro.polybench`  — the 16-benchmark PolyBench subset;
* :mod:`repro.collab`     — programmer edits on decompiled code;
* :mod:`repro.eval`       — drivers for every table/figure of the paper.

Quickstart::

    from repro import compile_source, optimize_o2, parallelize_module, decompile
    module = compile_source(C_SOURCE)
    optimize_o2(module)                  # clang -O2 analogue
    parallelize_module(module)           # Polly analogue
    print(decompile(module, "full"))     # SPLENDID
"""

from .core import Splendid, decompile, decompile_unit
from .frontend import compile_source, lower_unit
from .passes import optimize_o1, optimize_o2
from .polly import parallelize_module
from .runtime import Interpreter, MachineModel, run_module

__version__ = "1.0.0"

__all__ = [
    "Splendid", "decompile", "decompile_unit",
    "compile_source", "lower_unit",
    "optimize_o1", "optimize_o2",
    "parallelize_module",
    "Interpreter", "MachineModel", "run_module",
    "__version__",
]
