"""Loop distribution (fission) — for the paper's Figure 3 case study.

Splits a single-block rotated counted loop into two consecutive loops,
moving a caller-selected suffix of its body statements into the second.
Legality is checked structurally: no SSA value may flow between the two
halves (other than the induction variable), which covers the
independent-statement fissions Figure 3 demonstrates.  Memory
dependences are the caller's responsibility (the optimizer invokes this
only on independent statement groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

from ..analysis.induction import analyze_counted_loop
from ..analysis.loops import Loop
from ..ir.block import BasicBlock
from ..ir.instructions import (Branch, Cast, CondBranch, DbgValue,
                               Instruction, Phi, Store)
from ..ir.module import Function
from ..ir.values import Value


class DistributeError(Exception):
    pass


@dataclass
class DistributeResult:
    """Outcome of one fission: the (unchanged) first loop, the second
    loop's header block, and the original→clone mapping for every moved
    instruction (the fission driver re-identifies group stores through
    it across repeated splits)."""

    first: Loop
    second_header: BasicBlock
    clones: Dict[Instruction, Instruction] = field(default_factory=dict)


def distribute_loop(loop: Loop,
                    move_to_second: Callable[[Instruction], bool]
                    ) -> DistributeResult:
    """Fission ``loop``; ``move_to_second`` selects the store statements
    (and their backward slices) that move to the new loop.  Callers
    re-run LoopInfo to obtain the second loop as a Loop object."""
    if loop.header is not loop.latch:
        raise DistributeError("only single-block loops can be distributed")
    counted = analyze_counted_loop(loop)
    if counted is None or not counted.compares_next:
        raise DistributeError("loop is not counted")

    block = loop.header
    function = block.parent
    preheader = [p for p in block.predecessors if p not in loop.blocks]
    if len(preheader) != 1:
        raise DistributeError("no unique preheader")
    preheader = preheader[0]
    exit_block = loop.unique_exit
    if exit_block is None:
        raise DistributeError("no unique exit")

    machinery = {counted.phi, counted.step_inst, counted.compare,
                 block.terminator}
    for inst in block.instructions:
        if isinstance(inst, Cast) and inst.value is counted.step_inst:
            machinery.add(inst)

    # Seed from the selected stores; close over their backward slices.
    # Pure slice instructions are CLONED into the second loop (they may
    # be shared with the kept half, e.g. CSE'd address computations);
    # only the stores themselves move.
    moved_stores: List[Store] = [
        inst for inst in block.instructions
        if isinstance(inst, Store) and move_to_second(inst)]
    if not moved_stores:
        raise DistributeError("selector matched no stores")
    slice_set: Set[Instruction] = set()
    worklist: List[Instruction] = list(moved_stores)
    while worklist:
        inst = worklist.pop()
        if inst in slice_set or inst in machinery:
            continue
        slice_set.add(inst)
        for op in inst.operands:
            if isinstance(op, Instruction) and op.parent is block \
                    and op not in machinery:
                worklist.append(op)
    moved = slice_set
    # Carried scalar state (header phis besides the IV) may stay in the
    # first loop, but the moved statements must not read it: the second
    # loop has no copy of the recurrence.  Callers break such reads with
    # scalar expansion first (polly.versioning.expand_scalar).
    if any(isinstance(inst, Phi) for inst in moved):
        raise DistributeError(
            "moved statements read loop-carried scalar state")

    # Build the second loop behind a dedicated preheader: the first
    # loop's exit edge jumps to the preheader, which falls through to
    # the new header.  Downstream transforms (e.g. OpenMP outlining)
    # rewrite "the preheader terminator" of a loop they replace, so the
    # second loop must NOT treat the first loop's body as its preheader.
    second = BasicBlock(f"{block.name}.dist", function)
    preheader2 = BasicBlock(f"{block.name}.dist.ph", function)
    function.add_block(preheader2, after=block)
    function.add_block(second, after=preheader2)
    preheader2.append(Branch(second))

    # Redirect the first loop's exit edge to the second loop... which
    # starts immediately (guard is inherited: both halves share the trip
    # space, and the first loop only exits after completing all trips).
    term: CondBranch = block.terminator
    for i, op in enumerate(term.operands):
        if op is exit_block:
            term.set_operand(i, preheader2)

    # Second loop IV.
    iv2 = Phi(counted.phi.type, counted.phi.name)
    iv2.debug_variable = counted.phi.debug_variable
    second.append(iv2)
    mapping: Dict[Value, Value] = {counted.phi: iv2}

    for inst in list(block.instructions):
        if inst in moved:
            clone = inst.clone()
            mapping[inst] = clone
            for i, op in enumerate(clone.operands):
                if op in mapping:
                    clone.set_operand(i, mapping[op])
            second.append(clone)
    # The stores leave the first loop; pure slice values stay behind and
    # die there if nothing else uses them (local cleanup below).
    for store in moved_stores:
        store.erase()
    for inst in reversed([i for i in block.instructions if i in moved]):
        if isinstance(inst, Store):
            continue
        users = [u for u in inst.users if not isinstance(u, DbgValue)]
        if not users:
            for dbg in [u for u in inst.users if isinstance(u, DbgValue)]:
                dbg.erase()
            inst.erase()
    # Clone the IV machinery (increment, compare, compare-feeding casts).
    step2 = counted.step_inst.clone()
    step2.name = f"{step2.name}.d" if step2.name else ""
    for i, op in enumerate(step2.operands):
        if op in mapping:
            step2.set_operand(i, mapping[op])
    second.append(step2)
    mapping[counted.step_inst] = step2
    compare2 = counted.compare.clone()
    compare2.name = f"{compare2.name}.d" if compare2.name else ""
    for i, op in enumerate(list(compare2.operands)):
        if op is counted.step_inst:
            compare2.set_operand(i, step2)
        elif isinstance(op, Cast) and op.value is counted.step_inst:
            cast2 = op.clone()
            cast2.set_operand(0, step2)
            second.append(cast2)
            compare2.set_operand(i, cast2)
        elif op in mapping:
            compare2.set_operand(i, mapping[op])
    second.append(compare2)
    if term.if_true in loop.blocks:
        second.append(CondBranch(compare2, second, exit_block))
    else:
        second.append(CondBranch(compare2, exit_block, second))

    iv2.add_incoming(counted.start, preheader2)
    iv2.add_incoming(step2, second)
    return DistributeResult(loop, second,
                            {orig: clone for orig, clone in mapping.items()
                             if isinstance(orig, Instruction)})
