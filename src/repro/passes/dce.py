"""Dead code elimination for side-effect-free instructions.

``llvm.dbg.value`` intrinsics do not keep values alive (matching LLVM):
a value used only by debug intrinsics is dead, and its intrinsics are
deleted with it.
"""

from __future__ import annotations

from ..analysis.dependence import PURE_MATH_FUNCTIONS
from ..ir.instructions import Call, DbgValue, Instruction, Store
from ..ir.module import Function, Module


def has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator or isinstance(inst, Store):
        return True
    if isinstance(inst, DbgValue):
        return False
    if isinstance(inst, Call):
        return inst.callee_name not in PURE_MATH_FUNCTIONS
    return False


def _only_debug_uses(inst: Instruction) -> bool:
    return all(isinstance(user, DbgValue) for user in inst.users)


def run_function(function: Function) -> int:
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in reversed(list(block.instructions)):
                if has_side_effects(inst):
                    continue
                if isinstance(inst, DbgValue):
                    continue
                if inst.is_used() and not _only_debug_uses(inst):
                    continue
                for dbg in list(inst.users):
                    dbg.erase()
                inst.erase()
                removed += 1
                changed = True
        removed_webs = _remove_dead_phi_webs(function)
        if removed_webs:
            removed += removed_webs
            changed = True
    return removed


def _remove_dead_phi_webs(function: Function) -> int:
    """Delete phi cycles whose only external observers are debug
    intrinsics.

    mem2reg keeps a variable's last value rotating through loop phis even
    when nothing but ``llvm.dbg.value`` reads it (e.g. an inner loop
    counter observed at the outer level).  Plain DCE cannot remove the
    phis because they use each other; here we collect the closed web and
    drop it whole.
    """
    from ..ir.instructions import Phi

    all_phis = [inst for block in function.blocks for inst in block.phis()]
    removed = 0
    visited = set()
    for root in all_phis:
        if root in visited or root.parent is None:
            continue
        web = {root}
        frontier = [root]
        dead = True
        while frontier and dead:
            phi = frontier.pop()
            for user in phi.users:
                if isinstance(user, DbgValue):
                    continue
                if isinstance(user, Phi):
                    if user not in web:
                        web.add(user)
                        frontier.append(user)
                else:
                    dead = False
                    break
        visited |= web
        if not dead:
            continue
        for phi in web:
            for dbg in [u for u in phi.users if isinstance(u, DbgValue)]:
                dbg.erase()
        for phi in web:
            phi.drop_operands()
        for phi in web:
            if phi.parent is not None:
                phi.parent.remove(phi)
            removed += 1
    return removed


def run(module: Module) -> int:
    return sum(run_function(f) for f in module.defined_functions())
