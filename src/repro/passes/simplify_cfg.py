"""CFG simplification: fold constant branches, merge straight-line chains,
remove empty forwarding blocks and unreachable code."""

from __future__ import annotations

from typing import List

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.block import BasicBlock
from ..ir.instructions import Branch, CondBranch, Instruction, Phi
from ..ir.module import Function, Module
from ..ir.values import ConstantInt


def _fold_constant_branches(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, CondBranch) and isinstance(term.condition, ConstantInt):
            taken = term.if_true if term.condition.value else term.if_false
            dead = term.if_false if term.condition.value else term.if_true
            if dead is not taken:
                for phi in dead.phis():
                    if any(p is block for _, p in phi.incoming):
                        phi.remove_incoming(block)
            term.erase()
            block.append(Branch(taken))
            changed = True
        elif isinstance(term, CondBranch) and term.if_true is term.if_false:
            target = term.if_true
            term.erase()
            block.append(Branch(target))
            changed = True
    return changed


def _merge_blocks(function: Function) -> bool:
    """Merge B into A when A's only successor is B and B's only
    predecessor is A."""
    changed = False
    for block in list(function.blocks):
        term = block.terminator
        if not isinstance(term, Branch) or isinstance(term, CondBranch):
            continue
        succ = term.target
        if succ is block or succ is function.entry:
            continue
        if succ.predecessors != [block]:
            continue
        if succ.phis():
            for phi in list(succ.phis()):
                value = phi.incoming_for(block)
                phi.replace_all_uses_with(value)
                phi.erase()
        term.erase()
        for inst in list(succ.instructions):
            succ.remove(inst)
            block.append(inst)
        # Successor phi edges now come from `block`.
        for next_block in block.successors:
            for phi in next_block.phis():
                for i in range(1, len(phi.operands), 2):
                    if phi.operands[i] is succ:
                        phi.set_operand(i, block)
        succ.replace_all_uses_with(block)
        function.remove_block(succ)
        changed = True
    return changed


def _remove_forwarding_blocks(function: Function) -> bool:
    """Remove blocks containing only `br label X` when safe."""
    changed = False
    for block in list(function.blocks):
        if block is function.entry or len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch) or isinstance(term, CondBranch):
            continue
        target = term.target
        if target is block:
            continue
        preds = block.predecessors
        # Unsafe when the target has phis and a predecessor already
        # branches to the target (would need distinct incoming values).
        if target.phis():
            target_preds = set(target.predecessors)
            if any(p in target_preds for p in preds):
                continue
            for phi in target.phis():
                value = phi.incoming_for(block)
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(value, pred)
        for pred in preds:
            pred_term = pred.terminator
            for i, op in enumerate(pred_term.operands):
                if op is block:
                    pred_term.set_operand(i, target)
        term.erase()
        function.remove_block(block)
        changed = True
    return changed


def _prune_single_incoming_phis(function: Function) -> bool:
    """Replace `phi [v, pred]` (one edge) with v directly."""
    changed = False
    for block in function.blocks:
        for phi in list(block.phis()):
            incoming = phi.incoming
            if len(incoming) == 1:
                value = incoming[0][0]
                phi.replace_all_uses_with(value)
                phi.erase()
                changed = True
    return changed


def simplify_function(function: Function) -> bool:
    if function.is_declaration:
        return False
    changed_any = False
    while True:
        changed = False
        changed |= _fold_constant_branches(function)
        changed |= bool(remove_unreachable_blocks(function))
        changed |= _prune_single_incoming_phis(function)
        changed |= _remove_forwarding_blocks(function)
        changed |= _merge_blocks(function)
        if not changed:
            break
        changed_any = True
    return changed_any


def run(module: Module) -> bool:
    changed = False
    for function in module.defined_functions():
        changed |= simplify_function(function)
    return changed
