"""mem2reg: promote stack slots to SSA values (pruned-SSA construction).

Besides the classic promotion (phi insertion at iterated dominance
frontiers + dominator-tree renaming), this pass materializes the debug
trail SPLENDID depends on: every promoted store and every inserted phi
for a slot tagged with a :class:`DILocalVariable` is replaced/followed
by an ``llvm.dbg.value`` intrinsic mapping the SSA value back to the
source variable.  This mirrors LLVM's behavior and reproduces the
many-values-per-variable (and conflicting-lifetime) situations of the
paper's Figure 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.manager import AnalysisManager, get_domtree
from ..ir.block import BasicBlock
from ..ir.instructions import Alloca, DbgValue, Instruction, Load, Phi, Store
from ..ir.module import Function, Module
from ..ir.values import UndefValue, Value


def is_promotable(alloca: Alloca) -> bool:
    """A slot is promotable when it holds a scalar and every use is a
    direct load or store of the slot itself."""
    if not alloca.allocated_type.is_scalar and not alloca.allocated_type.is_pointer:
        return False
    for user in alloca.users:
        if isinstance(user, Load) and user.pointer is alloca:
            continue
        if isinstance(user, Store) and user.pointer is alloca \
                and user.value is not alloca:
            continue
        return False
    return True


class _AllocaPromotion:
    def __init__(self, alloca: Alloca):
        self.alloca = alloca
        self.phis: Set[Phi] = set()
        self.stack: List[Value] = []

    def current(self) -> Value:
        if self.stack:
            return self.stack[-1]
        return UndefValue(self.alloca.allocated_type)


def promote_function(function: Function,
                     am: "AnalysisManager" = None) -> int:
    """Promote all promotable allocas in ``function``; returns the count."""
    if function.is_declaration:
        return 0
    allocas = [inst for inst in function.instructions()
               if isinstance(inst, Alloca) and is_promotable(inst)]
    if not allocas:
        return 0

    domtree = get_domtree(function, am)
    frontier = domtree.dominance_frontier()
    promotions: Dict[Alloca, _AllocaPromotion] = {}
    phi_owner: Dict[Phi, _AllocaPromotion] = {}

    # Phase 1: place phis at iterated dominance frontiers of def blocks.
    reachable = set(domtree.reachable)
    for alloca in allocas:
        promo = _AllocaPromotion(alloca)
        promotions[alloca] = promo
        def_blocks = {user.parent for user in alloca.users
                      if isinstance(user, Store) and user.parent in reachable}
        worklist = list(def_blocks)
        placed: Set[BasicBlock] = set()
        while worklist:
            block = worklist.pop()
            for df_block in frontier.get(block, ()):
                if df_block in placed:
                    continue
                placed.add(df_block)
                phi = Phi(alloca.allocated_type, alloca.name or "")
                df_block.insert(0, phi)
                phi.debug_variable = alloca.debug_variable
                promo.phis.add(phi)
                phi_owner[phi] = promo
                worklist.append(df_block)

    # Phase 2: rename along the dominator tree.
    to_erase: List[Instruction] = []

    def visit(block: BasicBlock) -> None:
        pushed: List[_AllocaPromotion] = []
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and inst in phi_owner:
                promo = phi_owner[inst]
                promo.stack.append(inst)
                pushed.append(promo)
                _emit_dbg(block, inst, inst, after=True)
            elif isinstance(inst, Load) and inst.pointer in promotions:
                promo = promotions[inst.pointer]
                inst.replace_all_uses_with(promo.current())
                to_erase.append(inst)
            elif isinstance(inst, Store) and inst.pointer in promotions:
                promo = promotions[inst.pointer]
                promo.stack.append(inst.value)
                pushed.append(promo)
                if promo.alloca.debug_variable is not None:
                    dbg = DbgValue(inst.value, promo.alloca.debug_variable)
                    block.insert_before(inst, dbg)
                to_erase.append(inst)
        for succ in block.successors:
            for phi in succ.phis():
                if phi in phi_owner:
                    phi.add_incoming(phi_owner[phi].current(), block)
        for child in domtree.children.get(block, ()):
            visit(child)
        for promo in reversed(pushed):
            promo.stack.pop()

    visit(function.entry)

    for inst in to_erase:
        inst.erase()
    for alloca in allocas:
        # Loads/stores in unreachable blocks still reference the slot.
        for user in list(alloca.users):
            if isinstance(user, Load):
                user.replace_all_uses_with(UndefValue(user.type))
            user.erase()
        alloca.erase()

    _prune_trivial_phis(function, set(phi_owner))
    return len(allocas)


def _emit_dbg(block: BasicBlock, anchor: Instruction, value: Value,
              after: bool = False) -> None:
    phi = anchor
    if getattr(phi, "debug_variable", None) is None:
        return
    index = block.index_of(anchor)
    if after:
        index = block.first_non_phi_index()
    block.insert(index, DbgValue(value, phi.debug_variable))


def _prune_trivial_phis(function: Function, candidates: Set[Phi]) -> None:
    """Remove phis whose incoming values are all identical (or self)."""
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                values = {v for v, _ in phi.incoming if v is not phi}
                if len(values) == 1:
                    replacement = values.pop()
                    phi.replace_all_uses_with(replacement)
                    # Keep the debug trail alive for the merged value.
                    phi.erase()
                    changed = True
                elif len(values) == 0 and phi.incoming:
                    from ..ir.values import UndefValue as _Undef
                    phi.replace_all_uses_with(_Undef(phi.type))
                    phi.erase()
                    changed = True


def run(module: Module, am: "AnalysisManager" = None) -> int:
    """Run mem2reg on every defined function; returns promoted slots."""
    total = 0
    for function in module.defined_functions():
        total += promote_function(function, am)
    return total
