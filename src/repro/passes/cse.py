"""Common subexpression elimination (EarlyCSE-style).

Dominator-tree scoped value numbering over pure instructions: an
instruction identical (opcode, operands, predicate) to one already
available on the dominating path is replaced by it.  Keeps the IR — and
therefore the decompiled output — free of the duplicate ``sext``/GEP
chains the -O0 front end produces for every subscript.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.manager import AnalysisManager, get_domtree
from ..ir.instructions import (BinaryOp, Cast, FCmp, GetElementPtr, ICmp,
                               Instruction, Select)
from ..ir.module import Function, Module


def _operand_key(op):
    from ..ir.values import ConstantFloat, ConstantInt
    if isinstance(op, ConstantInt):
        return ("ci", op.type.bits, op.value)
    if isinstance(op, ConstantFloat):
        return ("cf", op.value)
    return ("v", id(op))


def _key(inst: Instruction):
    operands = tuple(_operand_key(op) for op in inst.operands)
    if isinstance(inst, (ICmp, FCmp)):
        return (inst.opcode, inst.predicate, operands)
    if isinstance(inst, BinaryOp) and inst.is_commutative:
        return (inst.opcode, tuple(sorted(operands)), inst.type)
    return (inst.opcode, operands, inst.type)


def _eligible(inst: Instruction) -> bool:
    if isinstance(inst, (Cast, GetElementPtr, ICmp, FCmp, Select)):
        return True
    if isinstance(inst, BinaryOp):
        return inst.opcode not in ("sdiv", "srem", "udiv", "urem")
    return False


def run_function(function: Function,
                 am: "AnalysisManager" = None) -> int:
    if function.is_declaration:
        return 0
    domtree = get_domtree(function, am)
    removed = 0
    scopes: List[Dict[Tuple, Instruction]] = [{}]
    available: Dict[Tuple, Instruction] = {}

    def visit(block) -> None:
        nonlocal removed
        added: List[Tuple] = []
        for inst in list(block.instructions):
            if not _eligible(inst):
                continue
            key = _key(inst)
            existing = available.get(key)
            if existing is not None:
                inst.replace_all_uses_with(existing)
                inst.erase()
                removed += 1
            else:
                available[key] = inst
                added.append(key)
        for child in domtree.children.get(block, ()):
            visit(child)
        for key in added:
            del available[key]

    if function.blocks:
        visit(function.entry)
    return removed


def run(module: Module, am: "AnalysisManager" = None) -> int:
    return sum(run_function(f, am) for f in module.defined_functions())
