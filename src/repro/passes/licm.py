"""Loop-invariant code motion.

Hoists side-effect-free instructions whose operands are loop-invariant
into the preheader.  Matches the paper's observation (§5.3.2) that LICM
is one of the optimizations that strips debug provenance: hoisted
instructions keep computing the right value but no longer sit next to
their ``dbg.value`` anchors, so some variable names become
unrecoverable — which is exactly what Figure 8's missing percentages
come from.
"""

from __future__ import annotations

from typing import Set

from ..analysis.loops import Loop
from ..analysis.manager import AnalysisManager, get_loop_info
from ..ir.instructions import (BinaryOp, Cast, DbgValue, GetElementPtr, ICmp,
                               FCmp, Instruction, Load, Phi, Select, Store)
from ..ir.module import Function, Module
from ..ir.values import Argument, Constant, Value
from .dce import has_side_effects


def _is_invariant(value: Value, loop: Loop, hoisted: Set[Instruction]) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks or value in hoisted
    return True


def _hoistable(inst: Instruction) -> bool:
    # Loads are not hoisted: proving no aliasing store in the loop is the
    # job of a memory-dependence analysis this simple LICM doesn't have.
    return isinstance(inst, (BinaryOp, Cast, ICmp, FCmp, GetElementPtr,
                             Select))


def hoist_loop(loop: Loop) -> int:
    preheader = loop.preheader
    if preheader is None:
        return 0
    hoisted: Set[Instruction] = set()
    changed = True
    count = 0
    while changed:
        changed = False
        for block in loop.blocks_in_layout_order():
            for inst in list(block.instructions):
                if inst in hoisted or not _hoistable(inst):
                    continue
                if has_side_effects(inst):
                    continue
                if isinstance(inst, BinaryOp) and inst.opcode in (
                        "sdiv", "srem", "udiv", "urem"):
                    from ..ir.values import ConstantInt
                    if not (isinstance(inst.rhs, ConstantInt)
                            and inst.rhs.value != 0):
                        continue  # hoisting could introduce a trap
                if not all(_is_invariant(op, loop, hoisted)
                           for op in inst.operands):
                    continue
                block.remove(inst)
                preheader.insert(preheader.index_of(preheader.terminator), inst)
                hoisted.add(inst)
                count += 1
                changed = True
    return count


def run_function(function: Function,
                 am: "AnalysisManager" = None) -> int:
    if function.is_declaration:
        return 0
    info = get_loop_info(function, am)
    count = 0
    # Innermost first so invariants bubble outward one level per pass.
    for loop in reversed(info.all_loops()):
        count += hoist_loop(loop)
    return count


def run(module: Module, am: "AnalysisManager" = None) -> int:
    return sum(run_function(f, am) for f in module.defined_functions())
