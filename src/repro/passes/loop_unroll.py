"""Loop unrolling (for the paper's Figure 3 case study).

Unrolls single-block rotated counted loops by a constant factor when
the trip count is a known multiple of the factor.  SPLENDID
deliberately does NOT de-transform unrolling (§3.5.2): the unrolled
body stays visible in the decompiled output so a performance engineer
can read off the unroll factor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.induction import analyze_counted_loop, constant_trip_count
from ..analysis.loops import Loop
from ..analysis.manager import AnalysisManager, get_loop_info
from ..ir.builder import IRBuilder
from ..ir.instructions import DbgValue, Instruction, Phi
from ..ir.module import Function, Module
from ..ir.values import ConstantInt, Value, const_int


class UnrollError(Exception):
    pass


def can_unroll(loop: Loop, factor: int) -> bool:
    if factor < 2:
        return False
    if loop.header is not loop.latch:
        return False  # single-block loops only
    counted = analyze_counted_loop(loop)
    if counted is None or not counted.compares_next:
        return False
    if counted.step.value not in (1, -1):
        return False
    trips = constant_trip_count(counted)
    if trips is None or trips % factor != 0:
        return False
    for phi in loop.header_phis():
        if phi is not counted.phi:
            return False  # no cross-iteration scalars
    return True


def unroll_loop(loop: Loop, factor: int) -> bool:
    """Unroll in place.  Returns True on success."""
    if not can_unroll(loop, factor):
        return False
    counted = analyze_counted_loop(loop)
    block = loop.header
    iv = counted.phi
    step = counted.step.value
    body: List[Instruction] = [
        inst for inst in block.instructions
        if not isinstance(inst, (Phi, DbgValue))
        and inst is not counted.step_inst and inst is not counted.compare
        and not inst.is_terminator
        and not _feeds_only_compare(inst, counted)]

    insert_anchor = counted.step_inst
    builder = IRBuilder()
    for k in range(1, factor):
        builder.position_before(insert_anchor)
        offset = builder.add(iv, const_int(k * step, iv.type))
        mapping: Dict[Value, Value] = {iv: offset}
        for inst in body:
            clone = inst.clone()
            if clone.name:
                clone.name = f"{clone.name}.u{k}"
            for i, op in enumerate(clone.operands):
                if op in mapping:
                    clone.set_operand(i, mapping[op])
            builder._emit(clone)
            mapping[inst] = clone

    # The increment advances by factor*step now.
    for i, op in enumerate(counted.step_inst.operands):
        if isinstance(op, ConstantInt) and op.value == step:
            counted.step_inst.set_operand(
                i, const_int(factor * step, op.type))
            break
    return True


def _feeds_only_compare(inst: Instruction, counted) -> bool:
    from ..ir.instructions import Cast
    if isinstance(inst, Cast) and inst.value is counted.step_inst:
        return all(u is counted.compare for u in inst.users
                   if not isinstance(u, DbgValue))
    return False


def unroll_innermost(function: Function, factor: int = 4,
                     am: "AnalysisManager" = None) -> int:
    """Unroll every eligible innermost loop; returns the count."""
    count = 0
    info = get_loop_info(function, am)
    for loop in info.innermost_loops():
        if unroll_loop(loop, factor):
            count += 1
    if count and am is not None:
        am.invalidate(function)  # unrolling rewrites the CFG
    return count


def run(module: Module, factor: int = 4,
        am: "AnalysisManager" = None) -> int:
    return sum(unroll_innermost(f, factor, am)
               for f in module.defined_functions())
