"""repro.passes — the optimizer (mem2reg, cleanup, LICM, loop rotation...)."""

from . import (const_fold, cse, dce, licm, loop_distribute,
               loop_rotate, loop_unroll, mem2reg, simplify_cfg)
from .inline import InlineError, inline_all_calls_to, inline_call
from .pass_manager import (FunctionPassAdaptor, PassInstrumentation,
                           PassManager, PassPipelineError, PassRecord,
                           PassTiming, PassTimingReport)
from .pipeline import o1_pipeline, o2_pipeline, optimize_o1, optimize_o2

__all__ = [
    "const_fold", "cse", "dce", "licm", "loop_distribute",
    "loop_rotate", "loop_unroll", "mem2reg", "simplify_cfg",
    "InlineError", "inline_all_calls_to", "inline_call",
    "FunctionPassAdaptor", "PassInstrumentation", "PassManager",
    "PassPipelineError", "PassRecord", "PassTiming", "PassTimingReport",
    "o1_pipeline", "o2_pipeline", "optimize_o1", "optimize_o2",
]
