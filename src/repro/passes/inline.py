"""Function inlining utility.

Used in two places: the O2 pipeline (inlining small helpers) and — more
importantly for the paper — SPLENDID's Parallel Code Inliner, which
substitutes fork-call arguments for outlined-function parameters when
folding the parallel region back into its caller (§4.1.2, §3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.instructions import (Branch, Call, DbgValue, Instruction, Phi, Ret)
from ..ir.module import Function, Module
from ..ir.values import Argument, Value


class InlineError(Exception):
    pass


def inline_call(call: Call) -> List[BasicBlock]:
    """Inline ``call``'s callee at the call site.

    Returns the list of blocks cloned into the caller.  The callee is
    left untouched (it is cloned, not moved).
    """
    callee = call.callee
    if not isinstance(callee, Function) or callee.is_declaration:
        raise InlineError(f"cannot inline call to {callee}")
    caller_block = call.parent
    caller = caller_block.parent
    function: Function = callee

    # Split the caller block at the call site.
    split_index = caller_block.index_of(call)
    continuation = BasicBlock(f"{caller_block.name}.cont", caller)
    caller.add_block(continuation, after=caller_block)
    for inst in list(caller_block.instructions[split_index + 1:]):
        caller_block.remove(inst)
        continuation.append(inst)
    # Successor phis must now name the continuation block.
    for succ in continuation.successors:
        for phi in succ.phis():
            for i in range(1, len(phi.operands), 2):
                if phi.operands[i] is caller_block:
                    phi.set_operand(i, continuation)

    # Clone callee blocks.
    value_map: Dict[Value, Value] = {}
    for arg, actual in zip(function.arguments, call.args):
        value_map[arg] = actual
    cloned_blocks: List[BasicBlock] = []
    for block in function.blocks:
        clone = BasicBlock(f"{function.name}.{block.name}", caller)
        caller.add_block(clone)
        value_map[block] = clone
        cloned_blocks.append(clone)

    return_values: List[tuple] = []  # (value, block)
    for block in function.blocks:
        clone: BasicBlock = value_map[block]
        for inst in block.instructions:
            if isinstance(inst, Ret):
                if inst.value is not None:
                    return_values.append((inst.value, clone))
                else:
                    return_values.append((None, clone))
                clone.append(Branch(continuation))
                continue
            copy = inst.clone()
            value_map[inst] = copy
            clone.append(copy)
    # Remap operands in cloned instructions.
    for block in cloned_blocks:
        for inst in block.instructions:
            for i, op in enumerate(inst.operands):
                if op in value_map:
                    inst.set_operand(i, value_map[op])

    # Wire the call site into the entry clone.
    caller_block.append(Branch(value_map[function.entry]))

    # Replace the call's value with the (merged) return value.
    if not call.type.is_void and return_values:
        live = [(value_map.get(v, v), b) for v, b in return_values
                if v is not None]
        if len(live) == 1:
            call.replace_all_uses_with(live[0][0])
        elif live:
            phi = Phi(call.type, f"{function.name}.ret")
            continuation.insert(0, phi)
            for value, block in live:
                phi.add_incoming(value, block)
            call.replace_all_uses_with(phi)
    call.erase()
    # Reorder: keep continuation after the cloned body for readability.
    caller.blocks.remove(continuation)
    caller.blocks.append(continuation)
    return cloned_blocks


def inline_all_calls_to(module: Module, name: str) -> int:
    """Inline every call to ``name`` and drop the (now unused) function."""
    function = module.functions.get(name)
    if function is None or function.is_declaration:
        return 0
    count = 0
    for caller in list(module.defined_functions()):
        if caller is function:
            continue
        for block in list(caller.blocks):
            for inst in list(block.instructions):
                if isinstance(inst, Call) and inst.callee is function:
                    inline_call(inst)
                    count += 1
    if count and not function.is_used():
        module.remove_function(name)
    return count
