"""Constant folding and peephole simplification (instcombine-lite).

Folds constant arithmetic/comparisons/casts and applies algebraic
identities (x+0, x*1, x*0, ...).  Runs to a local fixpoint per function.
"""

from __future__ import annotations

from typing import Optional

from ..ir import types as ir_ty
from ..ir.instructions import BinaryOp, Cast, ICmp, FCmp, Instruction, Select
from ..ir.module import Function, Module
from ..ir.values import (ConstantFloat, ConstantInt, Value, const_bool,
                         const_float, const_int)


def _fold_int_binop(opcode: str, a: int, b: int,
                    vtype: ir_ty.IntType) -> Optional[int]:
    if opcode == "add":
        return a + b
    if opcode == "sub":
        return a - b
    if opcode == "mul":
        return a * b
    if opcode == "sdiv":
        if b == 0:
            return None
        return int(a / b)  # C truncating division
    if opcode == "srem":
        if b == 0:
            return None
        return a - int(a / b) * b
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return a << (b % vtype.bits)
    if opcode == "ashr":
        return a >> (b % vtype.bits)
    return None


def _fold_float_binop(opcode: str, a: float, b: float) -> Optional[float]:
    try:
        if opcode == "fadd":
            return a + b
        if opcode == "fsub":
            return a - b
        if opcode == "fmul":
            return a * b
        if opcode == "fdiv":
            return a / b if b != 0.0 else None
    except OverflowError:
        return None
    return None


_ICMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: (a % (1 << 64)) < (b % (1 << 64)),
    "ule": lambda a, b: (a % (1 << 64)) <= (b % (1 << 64)),
    "ugt": lambda a, b: (a % (1 << 64)) > (b % (1 << 64)),
    "uge": lambda a, b: (a % (1 << 64)) >= (b % (1 << 64)),
}

_FCMP = {
    # Ordered predicates are false when either operand is NaN, unordered
    # ones true; "one" is therefore a < b or a > b (NOT a != b, which is
    # true on NaN), and the unordered forms are negations of the
    # inverted ordered comparisons.
    "oeq": lambda a, b: a == b, "one": lambda a, b: a < b or a > b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: not (a < b or a > b),
    "une": lambda a, b: a != b,
    "ult": lambda a, b: not a >= b, "ule": lambda a, b: not a > b,
    "ugt": lambda a, b: not a <= b, "uge": lambda a, b: not a < b,
}


def _simplify(inst: Instruction) -> Optional[Value]:
    """Return a replacement value, or None."""
    if isinstance(inst, BinaryOp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            folded = _fold_int_binop(inst.opcode, lhs.value, rhs.value,
                                     inst.type)
            if folded is not None:
                return const_int(folded, inst.type)
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            folded = _fold_float_binop(inst.opcode, lhs.value, rhs.value)
            if folded is not None:
                return const_float(folded)
        # Canonicalize constants to the right for commutative ops.
        if inst.is_commutative and isinstance(lhs, (ConstantInt, ConstantFloat)) \
                and not isinstance(rhs, (ConstantInt, ConstantFloat)):
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            lhs, rhs = inst.lhs, inst.rhs
        # Algebraic identities.
        if isinstance(rhs, ConstantInt):
            if rhs.value == 0 and inst.opcode in ("add", "sub", "or", "xor",
                                                  "shl", "ashr"):
                return lhs
            if rhs.value == 1 and inst.opcode in ("mul", "sdiv"):
                return lhs
            if rhs.value == 0 and inst.opcode == "mul":
                return const_int(0, inst.type)
        if isinstance(rhs, ConstantFloat):
            if rhs.value == 1.0 and inst.opcode in ("fmul", "fdiv"):
                return lhs
        if inst.opcode == "sub" and lhs is rhs:
            return const_int(0, inst.type)
        if inst.opcode == "xor" and lhs is rhs:
            return const_int(0, inst.type)
    elif isinstance(inst, ICmp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            return const_bool(_ICMP[inst.predicate](lhs.value, rhs.value))
        if lhs is rhs:
            return const_bool(inst.predicate in ("eq", "sle", "sge", "ule",
                                                 "uge"))
    elif isinstance(inst, FCmp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat) \
                and inst.predicate in _FCMP:
            return const_bool(_FCMP[inst.predicate](lhs.value, rhs.value))
    elif isinstance(inst, Cast):
        value = inst.value
        if isinstance(value, ConstantInt):
            if inst.opcode in ("sext", "trunc"):
                return const_int(value.value, inst.type)
            if inst.opcode == "zext":
                raw = value.value % (1 << value.type.bits)
                return const_int(raw, inst.type)
            if inst.opcode == "sitofp":
                return const_float(float(value.value))
        if isinstance(value, ConstantFloat) and inst.opcode == "fptosi":
            return const_int(int(value.value), inst.type)
        if isinstance(value, Cast) and value.opcode == inst.opcode == "sext":
            # sext(sext(x)) -> sext(x)
            from ..ir.instructions import Cast as _Cast
            merged = _Cast("sext", value.value, inst.type, inst.name)
            inst.parent.insert_before(inst, merged)
            return merged
    elif isinstance(inst, Select):
        if isinstance(inst.condition, ConstantInt):
            return inst.if_true if inst.condition.value else inst.if_false
        if inst.if_true is inst.if_false:
            return inst.if_true
    return None


def run_function(function: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                replacement = _simplify(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    inst.erase()
                    folded += 1
                    changed = True
    return folded


def run(module: Module) -> int:
    return sum(run_function(f) for f in module.defined_functions())
