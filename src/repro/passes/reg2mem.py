"""Selective phi demotion (reg2mem for one accumulator).

Used by the reduction extension: a scalar accumulator phi is demoted to
a stack slot so the loop carries its state through memory, turning a
scalar reduction into a *memory* reduction the parallelizer's reduction
recognizer (:mod:`repro.analysis.reduction`) can accept and the OpenMP
lowering can share by reference.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.loops import Loop
from ..ir.builder import IRBuilder
from ..ir.instructions import Alloca, DbgValue, Instruction, Phi
from ..ir.values import Value


class DemoteError(Exception):
    pass


def demote_loop_phi(loop: Loop, phi: Phi) -> Alloca:
    """Demote a loop-header phi to a stack slot.

    The slot is allocated in the function's entry block, initialized in
    the preheader with the phi's initial value, reloaded at the top of
    each iteration, stored at the latch, and reloaded after the loop for
    any outside users.  Returns the slot.
    """
    function = loop.header.parent
    header = loop.header
    latch = loop.latch
    if latch is None:
        raise DemoteError("loop has no unique latch")
    outside = [p for p in header.predecessors if p not in loop.blocks]
    if len(outside) != 1:
        raise DemoteError("loop has no unique preheader")
    preheader = outside[0]
    initial = phi.incoming_for(preheader)
    latch_value = phi.incoming_for(latch)
    if initial is None or latch_value is None:
        raise DemoteError("phi is not a simple two-edge loop phi")

    builder = IRBuilder()
    entry = function.entry
    slot = Alloca(phi.type, f"{phi.name}.red" if phi.name else "red")
    slot.debug_variable = phi.debug_variable
    entry.insert(0, slot)

    # Initialize before entering the loop.
    builder.position_before(preheader.terminator)
    builder.store(initial, slot)

    # Reload at the top of each iteration.
    builder.position_before(
        header.instructions[header.first_non_phi_index()])
    current = builder.load(slot, phi.name or "red")

    # Store the updated value at the end of the iteration.
    builder.position_before(latch.terminator)
    builder.store(latch_value, slot)

    # Outside users read the final value from the slot.
    exit_loads = {}
    for user in list(phi.users):
        if user is current:
            continue
        if isinstance(user, DbgValue):
            user.replace_uses_of_with(phi, current)
            continue
        if isinstance(user, Instruction) and user.parent in loop.blocks:
            user.replace_uses_of_with(phi, current)
        elif isinstance(user, Instruction):
            block = user.parent
            if block not in exit_loads:
                builder.position_before(
                    block.instructions[block.first_non_phi_index()]
                    if not isinstance(user, Phi) else block.instructions[0])
                if isinstance(user, Phi):
                    # Load at the end of each incoming edge instead.
                    for i in range(1, len(user.operands), 2):
                        if user.operands[i - 1] is phi:
                            pred = user.operands[i]
                            builder.position_before(pred.terminator)
                            load = builder.load(slot, "red.out")
                            user.set_operand(i - 1, load)
                    continue
                exit_loads[block] = builder.load(slot, "red.out")
            user.replace_uses_of_with(phi, exit_loads[block])

    phi.erase()

    # The update value may also escape directly (rotation's LCSSA phis
    # reference it).  Out-of-loop observers read the slot instead: it
    # holds the latch value on loop exits and the initial value on
    # guard-skip paths.
    for user in list(latch_value.users):
        if isinstance(user, DbgValue):
            continue
        if isinstance(user, Instruction) and user.parent is not None \
                and user.parent not in loop.blocks:
            if isinstance(user, Phi):
                for i in range(1, len(user.operands), 2):
                    if user.operands[i - 1] is latch_value:
                        pred = user.operands[i]
                        builder.position_before(pred.terminator)
                        load = builder.load(slot, "red.out")
                        user.set_operand(i - 1, load)
            else:
                block = user.parent
                builder.position_before(
                    block.instructions[block.first_non_phi_index()])
                load = builder.load(slot, "red.out")
                user.replace_uses_of_with(latch_value, load)
    return slot


def find_accumulator_phi(loop: Loop, iv_phi: Phi) -> Optional[Phi]:
    """The single non-IV header phi whose recurrence is a reassociable
    binop on itself — the scalar-reduction shape."""
    from ..analysis.reduction import REASSOCIABLE_OPS
    from ..ir.instructions import BinaryOp

    candidates = [p for p in loop.header_phis() if p is not iv_phi]
    if len(candidates) != 1:
        return None
    phi = candidates[0]
    latch = loop.latch
    if latch is None:
        return None
    update = phi.incoming_for(latch)
    if not isinstance(update, BinaryOp) \
            or update.opcode not in REASSOCIABLE_OPS:
        return None
    from ..analysis.reduction import _chain_leaves, _collect_chain
    chain = _collect_chain(loop, update, update.opcode)
    if chain is None:
        return None
    leaves = _chain_leaves(chain)
    if leaves.count(phi) != 1:
        return None
    chain_set = set(chain)
    for user in phi.users:
        if isinstance(user, DbgValue) or user in chain_set or user is phi:
            continue
        if isinstance(user, Instruction) and user.parent in loop.blocks:
            return None  # accumulator read mid-iteration: not a reduction
    return phi
