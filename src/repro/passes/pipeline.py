"""Canned optimization pipelines mirroring clang -O0/-O1/-O2.

The -O2 pipeline is what the paper feeds Polly: mem2reg (SSA), CFG
cleanup, constant folding, LICM, and crucially loop rotation — which is
what turns every counted loop into the do-while + guard shape SPLENDID
later de-transforms.
"""

from __future__ import annotations

from ..ir.module import Module
from . import const_fold, cse, dce, licm, loop_rotate, mem2reg, simplify_cfg
from .pass_manager import PassManager


def o1_pipeline(verify_each: bool = True) -> PassManager:
    pm = PassManager(verify_each=verify_each)
    pm.add("mem2reg", mem2reg.run)
    pm.add("simplify-cfg", simplify_cfg.run)
    pm.add("const-fold", const_fold.run)
    pm.add("dce", dce.run)
    return pm


def o2_pipeline(verify_each: bool = True) -> PassManager:
    pm = PassManager(verify_each=verify_each)
    pm.add("mem2reg", mem2reg.run)
    pm.add("simplify-cfg", simplify_cfg.run)
    pm.add("const-fold", const_fold.run)
    pm.add("cse", cse.run)
    pm.add("dce", dce.run)
    pm.add("licm", licm.run)
    pm.add("const-fold-2", const_fold.run)
    pm.add("cse-2", cse.run)
    pm.add("dce-2", dce.run)
    pm.add("loop-rotate", loop_rotate.run)
    pm.add("simplify-cfg-2", simplify_cfg.run)
    pm.add("const-fold-3", const_fold.run)
    pm.add("cse-3", cse.run)
    pm.add("dce-3", dce.run)
    pm.add("simplify-cfg-3", simplify_cfg.run)
    pm.add("dce-4", dce.run)
    return pm


def optimize_o1(module: Module, verify_each: bool = True) -> Module:
    o1_pipeline(verify_each).run(module)
    return module


def optimize_o2(module: Module, verify_each: bool = True) -> Module:
    o2_pipeline(verify_each).run(module)
    return module
