"""Canned optimization pipelines mirroring clang -O0/-O1/-O2.

The -O2 pipeline is what the paper feeds Polly: mem2reg (SSA), CFG
cleanup, constant folding, LICM, and crucially loop rotation — which is
what turns every counted loop into the do-while + guard shape SPLENDID
later de-transforms.

Every pass is registered with its :class:`PreservedAnalyses` contract
(see ``docs/ARCHITECTURE.md`` for the full table): instruction-only
rewrites (mem2reg, const-fold, CSE, DCE, LICM) preserve the CFG
analyses, so the dominator trees the verifier and the downstream
passes request survive in the shared :class:`AnalysisManager` cache;
branch/block surgery (simplify-cfg, loop-rotate) preserves nothing.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.manager import AnalysisManager, PreservedAnalyses
from ..ir.module import Module
from . import const_fold, cse, dce, licm, loop_rotate, mem2reg, simplify_cfg
from .pass_manager import PassInstrumentation, PassManager

_CFG = PreservedAnalyses.cfg()
_NONE = PreservedAnalyses.none()


def _base_pipeline(verify_each: bool,
                   analysis_manager: Optional[AnalysisManager],
                   instrumentation: Optional[PassInstrumentation]
                   ) -> PassManager:
    pm = PassManager(verify_each=verify_each,
                     analysis_manager=analysis_manager,
                     instrumentation=instrumentation)
    pm.add_function_pass("mem2reg", mem2reg.promote_function, preserves=_CFG)
    pm.add_function_pass("simplify-cfg", simplify_cfg.simplify_function,
                         preserves=_NONE)
    pm.add_function_pass("const-fold", const_fold.run_function,
                         preserves=_CFG)
    return pm


def o1_pipeline(verify_each: bool = True,
                analysis_manager: Optional[AnalysisManager] = None,
                instrumentation: Optional[PassInstrumentation] = None
                ) -> PassManager:
    pm = _base_pipeline(verify_each, analysis_manager, instrumentation)
    pm.add_function_pass("dce", dce.run_function, preserves=_CFG)
    return pm


def o2_pipeline(verify_each: bool = True,
                analysis_manager: Optional[AnalysisManager] = None,
                instrumentation: Optional[PassInstrumentation] = None
                ) -> PassManager:
    pm = _base_pipeline(verify_each, analysis_manager, instrumentation)
    pm.add_function_pass("cse", cse.run_function, preserves=_CFG)
    pm.add_function_pass("dce", dce.run_function, preserves=_CFG)
    pm.add_function_pass("licm", licm.run_function, preserves=_CFG)
    pm.add_function_pass("const-fold-2", const_fold.run_function,
                         preserves=_CFG)
    pm.add_function_pass("cse-2", cse.run_function, preserves=_CFG)
    pm.add_function_pass("dce-2", dce.run_function, preserves=_CFG)
    pm.add_function_pass("loop-rotate", loop_rotate.rotate_function,
                         preserves=_NONE)
    pm.add_function_pass("simplify-cfg-2", simplify_cfg.simplify_function,
                         preserves=_NONE)
    pm.add_function_pass("const-fold-3", const_fold.run_function,
                         preserves=_CFG)
    pm.add_function_pass("cse-3", cse.run_function, preserves=_CFG)
    pm.add_function_pass("dce-3", dce.run_function, preserves=_CFG)
    pm.add_function_pass("simplify-cfg-3", simplify_cfg.simplify_function,
                         preserves=_NONE)
    pm.add_function_pass("dce-4", dce.run_function, preserves=_CFG)
    return pm


def optimize_o1(module: Module, verify_each: bool = True,
                analysis_manager: Optional[AnalysisManager] = None,
                instrumentation: Optional[PassInstrumentation] = None
                ) -> Module:
    o1_pipeline(verify_each, analysis_manager, instrumentation).run(module)
    return module


def optimize_o2(module: Module, verify_each: bool = True,
                analysis_manager: Optional[AnalysisManager] = None,
                instrumentation: Optional[PassInstrumentation] = None
                ) -> Module:
    o2_pipeline(verify_each, analysis_manager, instrumentation).run(module)
    return module
