"""Loop rotation: convert top-test (for/while) loops into do-while form.

This reproduces LLVM's ``-loop-rotate`` normalization, which is what
makes decompiled loops come out as do-while + guard (paper §2.2): the
exit test moves to the bottom of the loop, and a *guard* copy of the
test is placed in the preheader so a loop whose condition is initially
false is skipped entirely.

Mechanically, for a loop with header H (phis + test), body entry B,
latch L, preheader P, and exit E:

* P gets copies of H's non-phi instructions with phi operands replaced
  by their initial values, ending in ``br guard ? B : E``.
* H keeps its instructions but they now compute with the *latch* values
  (end-of-iteration state); H becomes the new latch and sole exiting
  block, branching back to B or out to E.
* B becomes the new header: it receives phis merging the initial values
  (from P) with the recomputed values (from H).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.loops import Loop
from ..analysis.manager import AnalysisManager, get_loop_info
from ..ir.block import BasicBlock
from ..ir.instructions import (Branch, CondBranch, DbgValue, Instruction, Phi)
from ..ir.module import Function, Module
from ..ir.values import UndefValue, Value


class RotationError(Exception):
    pass


def _ensure_preheader(loop: Loop) -> Optional[BasicBlock]:
    preheader = loop.preheader
    if preheader is not None:
        return preheader
    outside = [p for p in loop.header.predecessors if p not in loop.blocks]
    if len(outside) != 1:
        return None
    from ..analysis.cfg import split_edge
    return split_edge(outside[0], loop.header)


def can_rotate(loop: Loop) -> bool:
    header = loop.header
    if loop.is_rotated:
        return False
    term = header.terminator
    if not isinstance(term, CondBranch):
        return False
    if loop.exiting_blocks != [header]:
        return False
    if loop.latch is None:
        return False
    body_entry = (term.if_true if term.if_true in loop.blocks
                  else term.if_false)
    exit_block = (term.if_false if body_entry is term.if_true
                  else term.if_true)
    if body_entry is header or exit_block in loop.blocks:
        return False
    if body_entry.phis():
        return False  # body entry had >1 predecessor: unexpected shape
    if any(p is not header for p in exit_block.predecessors):
        return False  # keep the exit-merge logic simple
    header_phis = [i for i in header.instructions if isinstance(i, Phi)]
    for phi in header_phis:
        # Inter-phi dependences (value swaps) would need cycle-aware
        # rewiring; such loops are left unrotated.
        if any(v in header_phis for v, _ in phi.incoming):
            return False
    for inst in header.instructions:
        if isinstance(inst, (Phi, DbgValue)) or inst.is_terminator:
            continue
        from .dce import has_side_effects
        if has_side_effects(inst):
            return False
    return True


def rotate_loop(loop: Loop) -> bool:
    """Rotate one loop.  Returns True on success."""
    if not can_rotate(loop):
        return False
    preheader = _ensure_preheader(loop)
    if preheader is None:
        return False
    header = loop.header
    latch = loop.latch
    term: CondBranch = header.terminator
    body_entry = term.if_true if term.if_true in loop.blocks else term.if_false
    exit_block = term.if_false if body_entry is term.if_true else term.if_true

    header_phis = [i for i in header.instructions if isinstance(i, Phi)]
    header_insts = [i for i in header.instructions
                    if not isinstance(i, Phi) and not i.is_terminator]

    initial: Dict[Value, Value] = {
        phi: phi.incoming_for(preheader) for phi in header_phis}
    latch_value: Dict[Phi, Value] = {
        phi: phi.incoming_for(latch) for phi in header_phis}

    # --- Guard: copy header instructions into the preheader, substituting
    # initial phi values.
    guard_map: Dict[Instruction, Instruction] = {}
    insertion = preheader.index_of(preheader.terminator)
    for inst in header_insts:
        if isinstance(inst, DbgValue):
            continue
        copy = inst.clone()
        if copy.name:
            copy.name = f"{copy.name}.guard"
        for i, op in enumerate(copy.operands):
            replacement = initial.get(op) or guard_map.get(op)
            if replacement is not None:
                copy.set_operand(i, replacement)
        preheader.insert(insertion, copy)
        insertion += 1
        guard_map[inst] = copy

    guard_cond = guard_map.get(term.condition,
                               initial.get(term.condition, term.condition))
    preheader.terminator.erase()
    if term.if_true is body_entry:
        preheader.append(CondBranch(guard_cond, body_entry, exit_block))
    else:
        preheader.append(CondBranch(guard_cond, exit_block, body_entry))

    # --- New header phis in the body entry.
    new_phis: Dict[Phi, Phi] = {}
    for phi in header_phis:
        new_phi = Phi(phi.type, phi.name)
        new_phi.debug_variable = phi.debug_variable
        body_entry.insert(0, new_phi)
        new_phis[phi] = new_phi

    def resolved_latch(phi: Phi) -> Value:
        value = latch_value[phi]
        return new_phis[phi] if value is phi else value

    # In-loop uses of a header-computed value observe the *previous*
    # execution of H once H runs at the bottom: merge the guard copy
    # (first iteration) with H's own value (later ones) in B, once per
    # instruction.
    rot_merges: Dict[Instruction, Phi] = {}

    def rot_merge(inst: Instruction) -> Phi:
        if inst not in rot_merges:
            merge = Phi(inst.type, f"{inst.name}.rot" if inst.name else "")
            body_entry.insert(0, merge)
            merge.add_incoming(guard_map[inst], preheader)
            merge.add_incoming(inst, header)
            rot_merges[inst] = merge
        return rot_merges[inst]

    def header_local_latch(phi: Phi) -> Value:
        """Backedge value as seen *inside* H after rotation.

        When the latch merely forwards a value H computes itself,
        substituting that instruction into H's own uses would be a
        self-reference (H recomputes it each run); the previous
        iteration's copy lives in the ``.rot`` merge instead.
        """
        value = latch_value[phi]
        if isinstance(value, Instruction) and value.parent is header:
            return rot_merge(value)
        return resolved_latch(phi)

    # Out-of-loop scalar uses observe the loop's final value: merge the
    # guard-skip (initial) and loop-exit (latch) values in E, once per phi.
    exit_merge: Dict[Phi, Phi] = {}

    def lcssa_merge(phi: Phi) -> Phi:
        if phi not in exit_merge:
            merge = Phi(phi.type, f"{phi.name}.lcssa" if phi.name else "")
            exit_block.insert(0, merge)
            merge.add_incoming(initial[phi], preheader)
            merge.add_incoming(resolved_latch(phi), header)
            exit_merge[phi] = merge
        return exit_merge[phi]

    # --- Redirect uses of the old header phis.
    for phi in header_phis:
        for user in list(phi.users):
            if user is phi or user in new_phis.values():
                continue
            if isinstance(user, Phi) and user not in exit_merge.values():
                for i in range(0, len(user.operands), 2):
                    if user.operands[i] is not phi:
                        continue
                    pred = user.operands[i + 1]
                    if pred is header:
                        user.set_operand(i, resolved_latch(phi))
                    elif pred in loop.blocks:
                        user.set_operand(i, new_phis[phi])
                    elif pred is preheader:
                        user.set_operand(i, initial[phi])
                    else:
                        # Edge from some other out-of-loop block: the value
                        # must have left the loop through E.
                        user.set_operand(i, lcssa_merge(phi))
                continue
            if user in exit_merge.values():
                continue
            if user.parent is header:
                user.replace_uses_of_with(phi, header_local_latch(phi))
            elif user.parent in loop.blocks:
                user.replace_uses_of_with(phi, new_phis[phi])
            elif user.parent is preheader:
                user.replace_uses_of_with(phi, initial[phi])
            else:
                user.replace_uses_of_with(phi, lcssa_merge(phi))

    # --- Wire the new phis.
    for phi in header_phis:
        new_phi = new_phis[phi]
        new_phi.add_incoming(initial[phi], preheader)
        new_phi.add_incoming(resolved_latch(phi), header)
        if new_phi.debug_variable is not None:
            body_entry.insert(body_entry.first_non_phi_index(),
                              DbgValue(new_phi, new_phi.debug_variable))

    # --- Non-phi header instructions used elsewhere need merges too.
    for inst in header_insts:
        if isinstance(inst, DbgValue):
            continue
        inside_users = [u for u in inst.users
                        if u.parent in loop.blocks and u.parent is not header
                        and u not in new_phis.values()
                        and u not in rot_merges.values()]
        outside_users = [u for u in inst.users
                         if u.parent not in loop.blocks
                         and u.parent is not preheader
                         and u is not guard_map.get(inst)
                         and u not in guard_map.values()]
        if inside_users:
            merge = rot_merge(inst)
            for user in inside_users:
                user.replace_uses_of_with(inst, merge)
        for user in outside_users:
            merge = Phi(inst.type, f"{inst.name}.lcssa" if inst.name else "")
            exit_block.insert(0, merge)
            merge.add_incoming(guard_map[inst], preheader)
            merge.add_incoming(inst, header)
            user.replace_uses_of_with(inst, merge)

    # --- Drop the old header phis (every use was redirected).
    for phi in header_phis:
        phi.drop_operands()
        phi.erase()

    # --- Existing phis in the exit block gain the guard-false edge.
    for phi in exit_block.phis():
        if phi.incoming_for(preheader) is not None:
            continue
        value = phi.incoming_for(header)
        from_pre = initial.get(value, None)
        if from_pre is None:
            from_pre = guard_map.get(value, value)
        if isinstance(from_pre, Instruction) and from_pre.parent in loop.blocks:
            from_pre = UndefValue(phi.type)
        phi.add_incoming(from_pre, preheader)
    return True


def rotate_function(function: Function,
                    am: "AnalysisManager" = None) -> int:
    """Rotate every rotatable loop in the function; returns count."""
    if function.is_declaration:
        return 0
    rotated = 0
    progress = True
    failed_headers = set()
    while progress:
        progress = False
        info = get_loop_info(function, am)
        for loop in info.all_loops():
            if loop.header in failed_headers:
                continue
            if rotate_loop(loop):
                rotated += 1
                progress = True
                # The rotation rewrote the CFG: drop cached analyses
                # before the loop forest is recomputed next round.
                if am is not None:
                    am.invalidate(function)
                break
            failed_headers.add(loop.header)
    return rotated


def run(module: Module, am: "AnalysisManager" = None) -> int:
    return sum(rotate_function(f, am) for f in module.defined_functions())
