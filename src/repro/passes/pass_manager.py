"""A tiny pass manager with verification between passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..ir.module import Module
from ..ir.verifier import verify_module

PassFn = Callable[[Module], object]


@dataclass
class PassRecord:
    name: str
    result: object


class PassManager:
    """Runs a sequence of module passes, optionally verifying after each.

    >>> pm = PassManager(verify_each=True)
    >>> pm.add("mem2reg", mem2reg.run)      # doctest: +SKIP
    >>> pm.run(module)                      # doctest: +SKIP
    """

    def __init__(self, verify_each: bool = True):
        self.verify_each = verify_each
        self._passes: List[tuple] = []
        self.history: List[PassRecord] = []

    def add(self, name: str, fn: PassFn) -> "PassManager":
        self._passes.append((name, fn))
        return self

    def run(self, module: Module) -> List[PassRecord]:
        self.history = []
        for name, fn in self._passes:
            result = fn(module)
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:  # pragma: no cover - diagnostics
                    raise RuntimeError(
                        f"IR verification failed after pass '{name}': {exc}"
                    ) from exc
            self.history.append(PassRecord(name, result))
        return self.history
