"""New-PM-style pass manager: preserved-analysis contracts, cached
analyses, verification between passes, and pass instrumentation.

Each pass is registered with the :class:`~repro.analysis.manager
.PreservedAnalyses` contract it honors *when it changes the IR*; a pass
that reports "no change" (a falsy result) implicitly preserves
everything, so back-to-back cleanup passes stop recomputing dominator
trees the IR never stopped being valid for.  The verifier that runs
between passes draws its dominator trees from the same cache, which is
where most of the duplicated-analysis hot path used to live.

Instrumentation (:class:`PassInstrumentation`) records per-pass wall
time, analysis cache hit/miss deltas, and IR size deltas; the report is
what ``repro decompile --time-passes`` prints and what the lint and
eval pipelines attach programmatically.
"""

from __future__ import annotations

import inspect
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..analysis.manager import AnalysisManager, PreservedAnalyses
from ..ir.module import Function, Module

LOG = logging.getLogger("repro.passes")

PassFn = Callable[..., object]


@dataclass
class PassRecord:
    name: str
    result: object


@dataclass
class PassTiming:
    """Instrumentation record for one pass execution."""

    name: str
    seconds: float
    verify_seconds: float
    changed: bool
    cache_hits: int
    cache_misses: int
    invalidations: int
    blocks_before: int
    blocks_after: int
    instructions_before: int
    instructions_after: int

    @property
    def delta_blocks(self) -> int:
        return self.blocks_after - self.blocks_before

    @property
    def delta_instructions(self) -> int:
        return self.instructions_after - self.instructions_before

    def to_dict(self) -> dict:
        return {
            "pass": self.name,
            "seconds": self.seconds,
            "verify_seconds": self.verify_seconds,
            "changed": self.changed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "invalidations": self.invalidations,
            "delta_blocks": self.delta_blocks,
            "delta_instructions": self.delta_instructions,
        }


class PassTimingReport:
    """Per-pass timing/cache/IR-delta table with text and JSON renderers."""

    def __init__(self):
        self.entries: List[PassTiming] = []

    def add(self, entry: PassTiming) -> None:
        self.entries.append(entry)

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds + e.verify_seconds for e in self.entries)

    @property
    def cache_hits(self) -> int:
        return sum(e.cache_hits for e in self.entries)

    @property
    def cache_misses(self) -> int:
        return sum(e.cache_misses for e in self.entries)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render_text(self) -> str:
        """A ``-ftime-report``-style table, slowest pass first."""
        header = (f"{'pass':<16} {'time(ms)':>9} {'verify(ms)':>10} "
                  f"{'hit/miss':>9} {'Δblocks':>8} {'Δinsts':>7}  changed")
        lines = ["=== pass timing report ===", header, "-" * len(header)]
        for e in sorted(self.entries, key=lambda e: -e.seconds):
            lines.append(
                f"{e.name:<16} {e.seconds * 1e3:>9.3f} "
                f"{e.verify_seconds * 1e3:>10.3f} "
                f"{f'{e.cache_hits}/{e.cache_misses}':>9} "
                f"{e.delta_blocks:>+8} {e.delta_instructions:>+7}  "
                f"{'yes' if e.changed else 'no'}")
        lines.append("-" * len(header))
        lines.append(
            f"total: {self.total_seconds * 1e3:.3f} ms over "
            f"{len(self.entries)} passes; analysis cache "
            f"{self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%} hit rate)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "passes": [e.to_dict() for e in self.entries],
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)


class PassInstrumentation:
    """Programmatic instrumentation hook shared across pipelines.

    One instance may be threaded through several :class:`PassManager`
    runs (the eval pipeline's compile step, the lint pipeline's re-run,
    ...); all of them append to the same report.  ``on_pass`` is called
    with each fresh :class:`PassTiming` as it is recorded.
    """

    def __init__(self,
                 on_pass: Optional[Callable[[PassTiming], None]] = None):
        self.report = PassTimingReport()
        self.on_pass = on_pass

    def record(self, entry: PassTiming) -> None:
        self.report.add(entry)
        if self.on_pass is not None:
            self.on_pass(entry)


class PassPipelineError(RuntimeError):
    """IR verification failed between passes.

    Carries the failing pass, the pipeline history run so far, and (when
    the verifier identified one) the offending function.
    """

    def __init__(self, message: str, pass_name: str,
                 history: List[PassRecord],
                 function: Optional[Function] = None):
        super().__init__(message)
        self.pass_name = pass_name
        self.history = list(history)
        self.function = function


@dataclass
class _Pass:
    name: str
    fn: PassFn
    preserves: PreservedAnalyses
    wants_manager: bool
    self_invalidating: bool = False


def _accepts_manager(fn: Callable) -> bool:
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "am" in params or "analysis_manager" in params


def _ir_size(module: Module) -> tuple:
    blocks = instructions = 0
    for function in module.defined_functions():
        blocks += len(function.blocks)
        for block in function.blocks:
            instructions += len(block.instructions)
    return blocks, instructions


class FunctionPassAdaptor:
    """Adapts a function-level pass to the module level.

    Runs ``fn`` over every defined function and applies the pass's
    preserved-analyses contract *per function*: analyses of functions
    the pass did not touch stay cached.  Integer results are summed,
    boolean results or-ed (matching the conventions of the passes in
    this package).
    """

    def __init__(self, name: str, fn: PassFn, preserves: PreservedAnalyses):
        self.name = name
        self.fn = fn
        self.preserves = preserves
        self.wants_manager = _accepts_manager(fn)

    def __call__(self, module: Module, am: AnalysisManager):
        total = None
        for function in list(module.defined_functions()):
            result = (self.fn(function, am=am) if self.wants_manager
                      else self.fn(function))
            if result:
                am.invalidate(function, self.preserves)
            if isinstance(result, bool):
                total = bool(total) | result
            elif isinstance(result, int):
                total = (total or 0) + result
            elif result is not None:
                total = result
        return total


class PassManager:
    """Runs a sequence of module passes over a shared analysis cache.

    >>> pm = PassManager(verify_each=True)
    >>> pm.add("mem2reg", mem2reg.run)                  # doctest: +SKIP
    >>> pm.add_function_pass("dce", dce.run_function,   # doctest: +SKIP
    ...                      preserves=PreservedAnalyses.cfg())
    >>> pm.run(module)                                  # doctest: +SKIP
    """

    def __init__(self, verify_each: bool = True,
                 analysis_manager: Optional[AnalysisManager] = None,
                 instrumentation: Optional[PassInstrumentation] = None):
        self.verify_each = verify_each
        self.analysis_manager = analysis_manager or AnalysisManager()
        self.instrumentation = instrumentation
        self._passes: List[_Pass] = []
        self.history: List[PassRecord] = []

    def add(self, name: str, fn: PassFn,
            preserves: Optional[PreservedAnalyses] = None) -> "PassManager":
        """Register a module pass.  ``preserves`` is the contract applied
        when the pass reports a change; passes reporting no change
        implicitly preserve everything."""
        self._passes.append(_Pass(
            name, fn, preserves or PreservedAnalyses.none(),
            _accepts_manager(fn)))
        return self

    def add_function_pass(self, name: str, fn: PassFn,
                          preserves: Optional[PreservedAnalyses] = None
                          ) -> "PassManager":
        """Register a function-level pass through the adaptor (analyses
        invalidated per changed function, not per module)."""
        adaptor = FunctionPassAdaptor(
            name, fn, preserves or PreservedAnalyses.none())
        self._passes.append(_Pass(
            name, adaptor, PreservedAnalyses.all(), wants_manager=True,
            self_invalidating=True))
        return self

    def run(self, module: Module) -> List[PassRecord]:
        am = self.analysis_manager
        self.history = []
        for pass_ in self._passes:
            instrument = self.instrumentation is not None
            if instrument:
                blocks_before, insts_before = _ir_size(module)
                stats_before = am.stats.snapshot()
            started = time.perf_counter()
            result = (pass_.fn(module, am) if pass_.wants_manager
                      else pass_.fn(module))
            changed = bool(result)
            if not pass_.self_invalidating:
                am.invalidate_module(
                    module,
                    PreservedAnalyses.all() if not changed
                    else pass_.preserves)
            elapsed = time.perf_counter() - started
            self.history.append(PassRecord(pass_.name, result))
            verify_elapsed = 0.0
            if self.verify_each:
                verify_started = time.perf_counter()
                self._verify(module, pass_.name)
                verify_elapsed = time.perf_counter() - verify_started
            if instrument:
                blocks_after, insts_after = _ir_size(module)
                delta = am.stats.since(stats_before)
                self.instrumentation.record(PassTiming(
                    name=pass_.name, seconds=elapsed,
                    verify_seconds=verify_elapsed, changed=changed,
                    cache_hits=delta.hits, cache_misses=delta.misses,
                    invalidations=delta.invalidations,
                    blocks_before=blocks_before, blocks_after=blocks_after,
                    instructions_before=insts_before,
                    instructions_after=insts_after))
        return self.history

    def _verify(self, module: Module, pass_name: str) -> None:
        from ..ir.verifier import (VerificationError, verify_function,
                                   verify_kmpc_protocol)
        try:
            for function in module.defined_functions():
                verify_function(function,
                                analysis_manager=self.analysis_manager)
            verify_kmpc_protocol(module)
        except VerificationError as exc:
            failing = getattr(exc, "function", None)
            if failing is not None and LOG.isEnabledFor(logging.DEBUG):
                from ..ir.printer import print_function
                LOG.debug("IR of failing function @%s after pass '%s':\n%s",
                          failing.name, pass_name, print_function(failing))
            pipeline = " -> ".join(rec.name for rec in self.history)
            where = f" in function '@{failing.name}'" if failing else ""
            raise PassPipelineError(
                f"IR verification failed after pass '{pass_name}'{where} "
                f"(pipeline run so far: {pipeline}): {exc}",
                pass_name, self.history, failing) from exc
