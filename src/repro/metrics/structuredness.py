"""Structuredness metrics for decompiled output.

A decompiler can always fall back to gotos, so "it recompiles" says
nothing about readability.  This module quantifies how *structured* the
emitted C is: how many gotos/labels survived structuring, how deeply
control flow nests, and how complex the recovered branch conditions
are (boolean connectives per condition — the price of condition
refinement folding short-circuit chains back into one expression).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..minic import c_ast as ast


@dataclass
class StructurednessReport:
    """Per-unit structure quality counters."""

    functions: int = 0
    statements: int = 0
    gotos: int = 0
    labels: int = 0
    max_nesting_depth: int = 0
    conditions: int = 0
    max_condition_ops: int = 0
    total_condition_ops: int = 0
    loops: int = 0
    branches: int = 0
    switches: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)  # gotos

    @property
    def goto_free(self) -> bool:
        return self.gotos == 0

    @property
    def avg_condition_ops(self) -> float:
        return self.total_condition_ops / self.conditions \
            if self.conditions else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "statements": self.statements,
            "gotos": self.gotos,
            "labels": self.labels,
            "goto_free": self.goto_free,
            "max_nesting_depth": self.max_nesting_depth,
            "conditions": self.conditions,
            "max_condition_ops": self.max_condition_ops,
            "avg_condition_ops": round(self.avg_condition_ops, 3),
            "loops": self.loops,
            "branches": self.branches,
            "switches": self.switches,
        }


def _condition_ops(expr: ast.Expr) -> int:
    """Boolean connectives (&&, ||, !) in one condition expression."""
    if isinstance(expr, ast.Unary):
        return (1 if expr.op == "!" else 0) + _condition_ops(expr.operand)
    if isinstance(expr, ast.Binary):
        own = 1 if expr.op in ("&&", "||") else 0
        return own + _condition_ops(expr.lhs) + _condition_ops(expr.rhs)
    if isinstance(expr, ast.Conditional):
        return (_condition_ops(expr.condition) + _condition_ops(expr.if_true)
                + _condition_ops(expr.if_false))
    return 0


def measure_structuredness(
        unit_or_text: Union[str, ast.TranslationUnit]) -> StructurednessReport:
    """Measure structure quality of decompiled C (text or parsed unit)."""
    if isinstance(unit_or_text, str):
        from ..minic.parser import parse
        unit = parse(unit_or_text)
    else:
        unit = unit_or_text
    report = StructurednessReport()
    for function in unit.functions:
        if function.is_declaration or function.body is None:
            continue
        report.functions += 1
        before = report.gotos
        _measure_stmt(function.body, 0, report)
        report.per_function[function.name] = report.gotos - before
    return report


def _note_condition(expr: ast.Expr, report: StructurednessReport) -> None:
    ops = _condition_ops(expr)
    report.conditions += 1
    report.total_condition_ops += ops
    report.max_condition_ops = max(report.max_condition_ops, ops)


def _measure_stmt(stmt: ast.Stmt, depth: int,
                  report: StructurednessReport) -> None:
    report.statements += 1
    report.max_nesting_depth = max(report.max_nesting_depth, depth)
    if isinstance(stmt, ast.Compound):
        # A compound introduces no nesting of its own: its parent
        # construct already counted the level.
        for child in stmt.body:
            _measure_stmt(child, depth, report)
    elif isinstance(stmt, ast.If):
        report.branches += 1
        _note_condition(stmt.condition, report)
        _measure_stmt(stmt.then_body, depth + 1, report)
        if stmt.else_body is not None:
            _measure_stmt(stmt.else_body, depth + 1, report)
    elif isinstance(stmt, ast.For):
        report.loops += 1
        if stmt.condition is not None:
            _note_condition(stmt.condition, report)
        _measure_stmt(stmt.body, depth + 1, report)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        report.loops += 1
        _note_condition(stmt.condition, report)
        _measure_stmt(stmt.body, depth + 1, report)
    elif isinstance(stmt, ast.Switch):
        report.switches += 1
        for case in stmt.cases:
            for child in case.body:
                _measure_stmt(child, depth + 1, report)
    elif isinstance(stmt, ast.Goto):
        report.gotos += 1
    elif isinstance(stmt, ast.Label):
        report.labels += 1
