"""repro.metrics — naturalness metrics: BLEU-4, LoC, structuredness,
variable restoration."""

from .bleu import BleuReport, bleu, bleu_score, bleu_tokens, modified_precision, ngrams
from .loc import count_loc, parallel_representation_loc
from .structuredness import StructurednessReport, measure_structuredness
from .tokenize_c import tokenize_c

__all__ = [
    "BleuReport", "bleu", "bleu_score", "bleu_tokens",
    "modified_precision", "ngrams",
    "count_loc", "parallel_representation_loc",
    "StructurednessReport", "measure_structuredness",
    "tokenize_c",
]
