"""Tokenizer for naturalness metrics.

BLEU for formal languages operates on lexer token sequences (Appendix
A: "a phrase is a sequence of tokens as detected by the language
lexer").  This standalone regex tokenizer accepts any C-ish text the
decompilers emit (including goto labels, casts, and ``#pragma`` lines,
whose words are tokenized individually so pragma similarity counts).
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"""
    [A-Za-z_][A-Za-z0-9_]*            # identifier / keyword
  | 0[xX][0-9a-fA-F]+                 # hex literal
  | \d+\.\d*(?:[eE][+-]?\d+)?[fF]?    # float
  | \.\d+(?:[eE][+-]?\d+)?[fF]?
  | \d+(?:[eE][+-]?\d+)[fF]?
  | \d+[uUlL]*                        # int
  | "(?:[^"\\]|\\.)*"                 # string
  | '(?:[^'\\]|\\.)'                  # char
  | <<=|>>=|\.\.\.
  | ==|!=|<=|>=|&&|\|\||<<|>>|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|->
  | \#
  | [-+*/%=<>!&|^~?:;,.()\[\]{}]
""", re.VERBOSE)

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def tokenize_c(text: str) -> List[str]:
    """Lex C source text into a flat token sequence (comments dropped)."""
    text = _COMMENT_RE.sub(" ", text)
    return _TOKEN_RE.findall(text)
