"""BLEU-4 for formal languages (paper Appendix A).

The score for a candidate token sequence against a reference is the
geometric mean of the clipped n-gram precisions for n = 1..4, times a
brevity penalty applied when the candidate is shorter than the
reference.  A light smoothing floor keeps near-zero-overlap candidates
(like raw Rellic output vs. hand-written OpenMP) at tiny non-zero
scores, matching the paper's 0.0035-style values.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .tokenize_c import tokenize_c


def ngrams(tokens: Sequence[str], order: int) -> Counter:
    """Multiset of n-grams of the given order."""
    return Counter(tuple(tokens[i:i + order])
                   for i in range(len(tokens) - order + 1))


@dataclass
class BleuReport:
    score: float                   # in [0, 1]
    precisions: List[float]
    brevity_penalty: float
    candidate_length: int
    reference_length: int

    @property
    def percent(self) -> float:
        return self.score * 100.0


def modified_precision(candidate: Sequence[str], reference: Sequence[str],
                       order: int) -> tuple:
    """(clipped matches, total candidate n-grams) — Appendix A eq. (1)."""
    cand = ngrams(candidate, order)
    ref = ngrams(reference, order)
    total = sum(cand.values())
    matches = sum(min(count, ref.get(gram, 0))
                  for gram, count in cand.items())
    return matches, total


def bleu_tokens(candidate: Sequence[str], reference: Sequence[str],
                max_order: int = 4, smooth: bool = True) -> BleuReport:
    precisions: List[float] = []
    effective: List[float] = []
    for order in range(1, max_order + 1):
        matches, total = modified_precision(candidate, reference, order)
        if total == 0:
            # Candidate shorter than the n-gram order: the order carries
            # no information; exclude it from the geometric mean.
            precisions.append(0.0)
            continue
        if matches == 0:
            if order == 1 or not smooth:
                # No unigram overlap at all: not a translation of the
                # reference in any sense — the score collapses to zero.
                precisions.append(0.0)
                effective.append(0.0)
            else:
                floor = 1.0 / (2.0 * total)
                precisions.append(floor)
                effective.append(floor)
        else:
            precisions.append(matches / total)
            effective.append(matches / total)

    if not effective or any(p == 0.0 for p in effective):
        geo_mean = 0.0
    else:
        geo_mean = math.exp(sum(math.log(p) for p in effective)
                            / len(effective))

    cand_len, ref_len = len(candidate), len(reference)
    if cand_len == 0:
        brevity = 0.0
    elif cand_len >= ref_len:
        brevity = 1.0
    else:
        brevity = math.exp(1.0 - ref_len / cand_len)

    return BleuReport(score=brevity * geo_mean, precisions=precisions,
                      brevity_penalty=brevity, candidate_length=cand_len,
                      reference_length=ref_len)


def bleu(candidate_source: str, reference_source: str,
         max_order: int = 4, smooth: bool = True) -> BleuReport:
    """BLEU-4 between two C source texts (token-level)."""
    return bleu_tokens(tokenize_c(candidate_source),
                       tokenize_c(reference_source), max_order, smooth)


def bleu_score(candidate_source: str, reference_source: str) -> float:
    """Convenience: the BLEU-4 score in [0, 1]."""
    return bleu(candidate_source, reference_source).score
