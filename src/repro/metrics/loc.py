"""Lines-of-code metrics (paper Table 4).

``count_loc`` counts non-blank source lines.  ``parallel_representation_loc``
counts the lines a reader must wade through to understand how
parallelism is expressed: for SPLENDID that is a handful of pragma
lines (plus region braces); for the baselines it is entire outlined
microtask functions full of runtime setup plus the fork-call lines.
"""

from __future__ import annotations

import re
from typing import List

_FUNC_HEADER_RE = re.compile(r"^\s*\w[\w\s*\[\]]*\b(\w+)\s*\([^;]*\)\s*\{")


def count_loc(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


def _function_line_spans(source: str) -> List[tuple]:
    """(name, start, end) line spans of top-level function definitions."""
    lines = source.splitlines()
    spans = []
    index = 0
    while index < len(lines):
        match = _FUNC_HEADER_RE.match(lines[index])
        if match and "=" not in lines[index].split("(")[0]:
            name = match.group(1)
            depth = lines[index].count("{") - lines[index].count("}")
            start = index
            index += 1
            while index < len(lines) and depth > 0:
                depth += lines[index].count("{") - lines[index].count("}")
                index += 1
            spans.append((name, start, index))
        else:
            index += 1
    return spans


def parallel_representation_loc(source: str) -> int:
    """Lines spent on expressing parallelism.

    * every line of an outlined microtask function (``omp_outlined`` in
      the name) — runtime setup the reader must decode;
    * every line mentioning a ``__kmpc_`` runtime call (fork sites);
    * every ``#pragma omp`` line plus the braces of the parallel region
      compound that follows a ``parallel`` pragma.
    """
    lines = source.splitlines()
    counted = [False] * len(lines)

    for name, start, end in _function_line_spans(source):
        if "omp_outlined" in name:
            for i in range(start, end):
                if lines[i].strip():
                    counted[i] = True

    for i, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        if "__kmpc_" in text:
            counted[i] = True
        if text.startswith("#pragma omp"):
            counted[i] = True
            if "parallel" in text and "for" not in text:
                # Count the braces of the region compound.
                j = i + 1
                if j < len(lines) and lines[j].strip() == "{":
                    counted[j] = True
                    depth = 1
                    k = j + 1
                    while k < len(lines) and depth > 0:
                        depth += lines[k].count("{") - lines[k].count("}")
                        if depth == 0:
                            counted[k] = True
                        k += 1

    return sum(1 for flag in counted if flag)
