"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the paper's workflow:

* ``compile FILE.c``      — mini-C -> (-O2) IR, printed as textual IR;
* ``parallelize FILE.c``  — additionally run the Polly-style
  parallelizer and print the parallel IR;
* ``decompile FILE``      — decompile a C file (compiled+parallelized
  first) or a textual-IR file (``.ll``) with the chosen tool/variant;
* ``lint FILE``           — verify OpenMP pragma legality: a ``.ll``
  module or plain C file runs the full pipeline and lints both the
  parallel IR and the decompiled output; a C file that already carries
  ``#pragma omp`` is parsed and linted as-is;
* ``run FILE.c``          — execute ``main`` in the interpreter and
  print the program output plus modeled cycles;
* ``serve``               — run the asyncio HTTP/JSON gateway
  (interactive sessions, request coalescing, quotas, ``/v1/stats``);
* ``report``              — regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _load_module(path: str, defines, optimize: bool, parallelize: bool,
                 enable_reductions: bool = False, instrumentation=None):
    from .analysis.manager import AnalysisManager
    from .frontend import compile_source
    from .ir import parse_ir, verify_module
    from .passes import optimize_o2
    from .polly import parallelize_module

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    am = AnalysisManager()
    polly = None
    if path.endswith(".ll"):
        module = parse_ir(text)
    else:
        module = compile_source(text, defines, module_name=path)
        if optimize:
            optimize_o2(module, analysis_manager=am,
                        instrumentation=instrumentation)
        if parallelize:
            polly = parallelize_module(module,
                                       enable_reductions=enable_reductions,
                                       analysis_manager=am,
                                       instrumentation=instrumentation)
    verify_module(module, analysis_manager=am)
    return module, polly


def _instrumentation_for(args):
    if not getattr(args, "time_passes", False):
        return None
    from .passes import PassInstrumentation
    return PassInstrumentation()


def _print_timing(instrumentation) -> None:
    if instrumentation is not None:
        print(instrumentation.report.render_text(), file=sys.stderr)


def _print_fission(polly, args, refused: int = 0) -> None:
    if not getattr(args, "time_passes", False) or polly is None:
        return
    stats = polly.fission
    if refused:
        stats.refused += refused
    print(f"[fission: {stats.considered} mixed loops considered, "
          f"{stats.split} split into {stats.subloops} sub-loops "
          f"({stats.parallelized} parallelized), "
          f"{stats.vetoed_cost} cost vetoes, "
          f"{stats.vetoed_legality} legality vetoes, "
          f"{stats.expanded} scalars expanded, "
          f"{stats.refused} seams re-fused, "
          f"{stats.seconds * 1000:.2f} ms]", file=sys.stderr)


def _print_structuring(splendid, args) -> None:
    if not getattr(args, "time_passes", False):
        return
    stats = splendid.structuring_stats()
    if stats is None:
        return
    matched = ", ".join(f"{key}={count}"
                        for key, count in sorted(stats.schemas.items())
                        if count)
    print(f"[structuring: {stats.functions} functions "
          f"({stats.fallback_functions} goto fallbacks), "
          f"{stats.schemas_matched} schemas matched "
          f"[{matched or 'none'}], {stats.gotos} gotos, "
          f"{stats.refinements} condition refinements, "
          f"{stats.irreducible} irreducible components, "
          f"{stats.seconds * 1000:.2f} ms]", file=sys.stderr)


def _parse_defines(items: Optional[List[str]]):
    defines = {}
    for item in items or []:
        name, _, value = item.partition("=")
        defines[name] = value or "1"
    return defines


def cmd_compile(args) -> int:
    from .ir import print_module
    instrumentation = _instrumentation_for(args)
    module, _ = _load_module(args.file, _parse_defines(args.define),
                             optimize=not args.O0, parallelize=False,
                             instrumentation=instrumentation)
    print(print_module(module))
    _print_timing(instrumentation)
    return 0


def cmd_parallelize(args) -> int:
    from .ir import print_module
    instrumentation = _instrumentation_for(args)
    module, polly = _load_module(args.file, _parse_defines(args.define),
                                 optimize=True, parallelize=True,
                                 enable_reductions=args.reductions,
                                 instrumentation=instrumentation)
    print(print_module(module))
    _print_timing(instrumentation)
    _print_fission(polly, args)
    return 0


def cmd_decompile(args) -> int:
    if args.verify_pragmas and args.tool != "splendid":
        print("error: --verify-pragmas only applies to --tool splendid",
              file=sys.stderr)
        return 2
    instrumentation = _instrumentation_for(args)
    module, polly = _load_module(args.file, _parse_defines(args.define),
                                 optimize=True,
                                 parallelize=not args.sequential,
                                 enable_reductions=args.reductions,
                                 instrumentation=instrumentation)
    if args.tool == "splendid":
        from .core import Splendid
        splendid = Splendid(module, args.variant, type_source=args.types,
                            structurer=args.structurer)
        if args.verify_pragmas:
            from .lint import render_text
            result = splendid.decompile_checked()
            print(result.text)
            print(render_text(result.diagnostics), file=sys.stderr)
            _print_timing(instrumentation)
            _print_structuring(splendid, args)
            _print_fission(polly, args, refused=splendid.refused_loops())
            return 0 if result.ok else 3
        print(splendid.decompile_text())
        _print_structuring(splendid, args)
        _print_fission(polly, args, refused=splendid.refused_loops())
    else:
        from .decompilers import cbackend, ghidra, rellic
        tool = {"rellic": rellic, "ghidra": ghidra,
                "cbackend": cbackend}[args.tool]
        print(tool.decompile(module))
    _print_timing(instrumentation)
    return 0


def cmd_lint(args) -> int:
    from .lint import render_json, render_text
    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()

    if not args.file.endswith(".ll") and "#pragma omp" in text:
        # Already-annotated C (hand-written OpenMP, or SPLENDID output
        # fed back): parse and lint the pragmas as written.
        from .lint import lint_translation_unit
        from .minic import parse
        unit = parse(text, _parse_defines(args.define))
        report = lint_translation_unit(unit)
    else:
        # Run the pipeline and verify what it produces, both in IR form
        # and (for parallel variants) in the decompiled source.
        from .core import Splendid
        if args.file.endswith(".ll"):
            from .ir import parse_ir
            module = parse_ir(text)
        else:
            from .frontend import compile_source
            from .passes import optimize_o2
            from .polly import parallelize_module
            module = compile_source(text, _parse_defines(args.define),
                                    module_name=args.file)
            optimize_o2(module)
            parallelize_module(module, enable_reductions=args.reductions)
        report = Splendid(module, args.variant,
                          type_source=args.types).decompile_checked() \
            .diagnostics

    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


def cmd_run(args) -> int:
    from .runtime import Interpreter, MachineModel
    module, _ = _load_module(args.file, _parse_defines(args.define),
                             optimize=not args.O0,
                             parallelize=args.parallelize)
    machine = MachineModel(num_threads=args.threads)
    with Interpreter(module, machine, engine=args.engine,
                     memory=args.memory, measure=args.measure,
                     measure_workers=args.measure_workers) as interp:
        result = interp.run(args.entry)
    for line in result.output:
        print(line)
    print(f"[exit value: {result.value}; "
          f"{result.cost.dynamic_instructions} instructions; "
          f"{result.wall_time:.0f} modeled cycles]", file=sys.stderr)
    if args.measure:
        m = result.measured
        print(f"[measured: {m.regions} parallel regions in "
              f"{m.seconds:.3f}s real on {m.processes} processes; "
              f"{m.fallbacks} fallbacks]", file=sys.stderr)
    return 0


def cmd_batch(args) -> int:
    import glob as globmod
    import os
    from .service import ArtifactCache, BatchService, Job, JobConfig

    paths: List[str] = []
    for pattern in args.files:
        matches = sorted(globmod.glob(pattern, recursive=True))
        paths.extend(matches if matches else [pattern])
    seen = set()
    paths = [p for p in paths if not (p in seen or seen.add(p))]
    if not paths:
        print("error: no input files", file=sys.stderr)
        return 2

    config = JobConfig(optimize=True, parallelize=not args.sequential,
                       reductions=args.reductions, variant=args.variant,
                       lint=args.lint, engine=args.engine,
                       memory=args.memory, structurer=args.structurer)
    defines = _parse_defines(args.define)
    try:
        jobs = [Job.from_file(path, defines, config) for path in paths]
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # Same-stem files in different directories must not overwrite each
    # other's outputs (or each other's rows in the report).
    names = {}
    for job in jobs:
        count = names[job.name] = names.get(job.name, 0) + 1
        if count > 1:
            job.name = f"{job.name}.{count}"

    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    service = BatchService(max_workers=args.jobs, cache=cache,
                           timeout=args.timeout, max_retries=args.retries)
    try:
        batch = service.run(jobs)
    finally:
        service.close()

    for result in batch.results:
        if result.status.value == "failed":
            print(f"error: {result.name}: {result.error}", file=sys.stderr)
        elif args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            out_path = os.path.join(args.out_dir, f"{result.name}.dec.c")
            with open(out_path, "w", encoding="utf-8") as handle:
                handle.write(result.text)
        else:
            print(f"// === {result.name} [{result.status.value}, "
                  f"cache: {result.cache}] ===")
            print(result.text)
    print(batch.report.render_text(), file=sys.stderr)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            handle.write(batch.report.render_json())
    return 0 if batch.ok else 1


def cmd_serve(args) -> int:
    import asyncio
    from .gateway import Gateway, GatewayConfig

    config = GatewayConfig(
        host=args.host, port=args.port,
        workers=args.jobs, cache_dir=args.cache_dir,
        job_timeout=args.timeout,
        max_sessions=args.max_sessions, session_ttl=args.session_ttl,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        max_queue_depth=args.max_queue_depth)
    gateway = Gateway(config)

    async def _serve() -> None:
        await gateway.start()
        print(f"repro gateway listening on {gateway.base_url} "
              f"(pool={gateway.service.max_workers}, "
              f"cache={'disk+memory' if config.cache_dir else 'memory'}, "
              f"sessions<={config.max_sessions})", file=sys.stderr)
        try:
            await gateway._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print(gateway.render_stats_text(), file=sys.stderr)
    if args.report_json:
        import json as jsonmod
        with open(args.report_json, "w", encoding="utf-8") as handle:
            jsonmod.dump(gateway.stats_payload(), handle, indent=2,
                         sort_keys=True)
    return 0


REPORTS = {
    "table1": ("benchmarks table 1 (feature matrix)", None),
    "table3": ("loops parallelizable", "table3"),
    "table4": ("LoC similarity", "table4"),
    "fig6": ("portability speedups", "fig6"),
    "fig7": ("BLEU naturalness", "fig7"),
    "fig8": ("variable restoration", "fig8"),
    "fig9": ("collaborative parallelization", "fig9"),
    "structure": ("structure quality: legacy vs region structurer",
                  "structure"),
    "fission": ("partial parallelization of mixed loops", "fission"),
}


def cmd_report(args) -> int:
    from .eval import (figure6_speedups, figure7_bleu, figure8_restoration,
                       figure9_collaboration, fission_report, render_figure6,
                       render_figure7, render_figure8, render_figure9,
                       render_fission, render_structure, render_table3,
                       render_table4, structure_quality, table3_loops,
                       table4_loc)
    name = args.name
    benchmarks = args.benchmark or None
    if args.engine is not None:
        from .runtime import set_default_engine
        set_default_engine(args.engine)
    if args.memory is not None:
        from .runtime import set_default_memory
        set_default_memory(args.memory)
    if args.jobs is not None or args.cache_dir:
        # Fan artifact construction across cores (and the persistent
        # cache) before the single-threaded rendering walks them.
        from .eval import prewarm_artifacts
        from .polybench import all_benchmarks, get
        from .service import ArtifactCache, BatchService
        benches = ([get(b) for b in benchmarks] if benchmarks
                   else all_benchmarks())
        cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
        with BatchService(max_workers=args.jobs, cache=cache) as service:
            prewarm_artifacts(benches, service=service)
    if name == "fig6":
        print(render_figure6(figure6_speedups(benchmarks)))
    elif name == "fig7":
        print(render_figure7(figure7_bleu(benchmarks)))
    elif name == "fig8":
        print(render_figure8(figure8_restoration(benchmarks)))
    elif name == "fig9":
        print(render_figure9(figure9_collaboration()))
    elif name == "table3":
        print(render_table3(table3_loops(benchmarks)))
    elif name == "table4":
        print(render_table4(table4_loc(benchmarks)))
    elif name == "structure":
        print(render_structure(structure_quality(benchmarks)))
    elif name == "fission":
        print(render_fission(fission_report(benchmarks,
                                            measure=args.measure)))
    else:
        print(f"unknown report {name!r}; choose from "
              f"{sorted(k for k in REPORTS if k != 'table1')}",
              file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPLENDID reproduction: parallel IR decompilation")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="mini-C source (.c) or textual IR (.ll)")
        p.add_argument("-D", "--define", action="append", metavar="NAME=VAL",
                       help="macro definition (repeatable)")

    def add_time_passes(p):
        p.add_argument("--time-passes", action="store_true",
                       help="report per-pass wall time, analysis-cache "
                            "hit/miss counters, and IR deltas to stderr")

    def add_types(p):
        p.add_argument("--types", default="debug",
                       choices=("debug", "recovered", "none"),
                       help="where declaration types come from: 'debug' "
                            "trusts IR/debug metadata (default); "
                            "'recovered' re-derives every type from "
                            "usage via the storage/typeinfer analyses "
                            "and demotes debug info to a cross-check; "
                            "'none' ignores all metadata (ablation)")

    def add_engine(p):
        p.add_argument("--engine", default=None,
                       choices=("trace", "compiled", "walk"),
                       help="interpreter execution engine: 'trace' fuses "
                            "single-predecessor block chains into "
                            "generated-source superblocks (default), "
                            "'compiled' lowers functions to slot-indexed "
                            "closures, 'walk' is the tree-walking "
                            "reference")
        p.add_argument("--memory", default=None,
                       choices=("flat", "dict"),
                       help="memory model: 'flat' packs cells into typed "
                            "byte arrays (default), 'dict' is the "
                            "cell-dictionary reference")

    p_compile = sub.add_parser("compile", help="compile to (optimized) IR")
    add_common(p_compile)
    p_compile.add_argument("--O0", action="store_true",
                           help="skip the -O2 pipeline")
    add_time_passes(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_par = sub.add_parser("parallelize", help="compile + auto-parallelize")
    add_common(p_par)
    p_par.add_argument("--reductions", action="store_true",
                       help="enable the reduction extension")
    add_time_passes(p_par)
    p_par.set_defaults(func=cmd_parallelize)

    p_dec = sub.add_parser("decompile", help="decompile with a chosen tool")
    add_common(p_dec)
    p_dec.add_argument("--tool", default="splendid",
                       choices=("splendid", "rellic", "ghidra", "cbackend"))
    p_dec.add_argument("--variant", default="full",
                       choices=("v1", "v2", "portable", "full"),
                       help="SPLENDID variant (ignored for other tools)")
    p_dec.add_argument("--sequential", action="store_true",
                       help="skip the parallelizer (decompile -O2 IR)")
    p_dec.add_argument("--reductions", action="store_true")
    p_dec.add_argument("--verify-pragmas", action="store_true",
                       help="lint every emitted pragma; report to stderr "
                            "and exit 3 on errors")
    p_dec.add_argument("--structurer", default="legacy",
                       choices=("legacy", "region"),
                       help="control-flow structuring engine: the legacy "
                            "pattern matcher or the region/schema engine "
                            "(handles arbitrary, even irreducible, CFGs)")
    add_types(p_dec)
    add_time_passes(p_dec)
    p_dec.set_defaults(func=cmd_decompile)

    p_lint = sub.add_parser(
        "lint", help="verify OpenMP pragma legality (see repro.lint)")
    add_common(p_lint)
    p_lint.add_argument("--variant", default="full",
                        choices=("v1", "v2", "portable", "full"),
                        help="SPLENDID variant used for pipeline linting")
    p_lint.add_argument("--reductions", action="store_true",
                        help="enable the reduction extension when the "
                             "pipeline runs")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    add_types(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_run = sub.add_parser("run", help="execute in the interpreter")
    add_common(p_run)
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--threads", type=int, default=28)
    p_run.add_argument("--O0", action="store_true")
    p_run.add_argument("--parallelize", action="store_true")
    p_run.add_argument("--measure", action="store_true",
                       help="additionally execute parallel regions on a "
                            "real process pool (requires the flat memory "
                            "model) and report measured wall time next "
                            "to the modeled cycles")
    p_run.add_argument("--measure-workers", type=int, default=None,
                       metavar="N",
                       help="process-pool size for --measure "
                            "(default: CPU count, min 2)")
    add_engine(p_run)
    p_run.set_defaults(func=cmd_run)

    p_batch = sub.add_parser(
        "batch", help="decompile many files through the batch service")
    p_batch.add_argument("files", nargs="+", metavar="FILE",
                         help="mini-C / .ll files or glob patterns")
    p_batch.add_argument("-D", "--define", action="append",
                         metavar="NAME=VAL",
                         help="macro definition applied to every job")
    p_batch.add_argument("-j", "--jobs", type=int, default=None,
                         help="worker processes (default: CPU count; "
                              "0 runs jobs inline)")
    p_batch.add_argument("--cache-dir", default=None,
                         help="persistent artifact cache directory")
    p_batch.add_argument("--timeout", type=float, default=60.0,
                         help="per-job seconds before the worker is "
                              "killed and the job retried")
    p_batch.add_argument("--retries", type=int, default=2,
                         help="full-config retries before degrading")
    p_batch.add_argument("--variant", default="full",
                         choices=("v1", "v2", "portable", "full"))
    p_batch.add_argument("--sequential", action="store_true",
                         help="skip the parallelizer")
    p_batch.add_argument("--reductions", action="store_true")
    p_batch.add_argument("--structurer", default="legacy",
                         choices=("legacy", "region"),
                         help="control-flow structuring engine")
    p_batch.add_argument("--lint", action="store_true",
                         help="verify every emitted pragma per job")
    p_batch.add_argument("-o", "--out-dir", default=None,
                         help="write <name>.dec.c files here instead of "
                              "printing")
    p_batch.add_argument("--report-json", default=None, metavar="FILE",
                         help="write the service report as JSON")
    add_engine(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="run the async decompilation gateway (HTTP/JSON)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8753,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("-j", "--jobs", type=int, default=0,
                         help="BatchService worker processes behind the "
                              "dispatcher (default: 0 = inline)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent artifact cache directory "
                              "(default: memory tier only)")
    p_serve.add_argument("--timeout", type=float, default=60.0,
                         help="per-job pipeline timeout in seconds")
    p_serve.add_argument("--max-sessions", type=int, default=2048,
                         help="bound on concurrently-live sessions")
    p_serve.add_argument("--session-ttl", type=float, default=300.0,
                         help="idle seconds before a session is expired")
    p_serve.add_argument("--quota-rate", type=float, default=500.0,
                         help="per-tenant requests/second (token refill)")
    p_serve.add_argument("--quota-burst", type=float, default=1000.0,
                         help="per-tenant burst capacity")
    p_serve.add_argument("--max-queue-depth", type=int, default=256,
                         help="pipeline jobs queued before shedding 503s")
    p_serve.add_argument("--report-json", default=None, metavar="FILE",
                         help="write the final /v1/stats payload as JSON "
                              "on shutdown")
    p_serve.set_defaults(func=cmd_serve)

    p_report = sub.add_parser("report", help="regenerate a paper table/figure")
    p_report.add_argument("name", choices=sorted(
        k for k in REPORTS if k != "table1"))
    p_report.add_argument("-b", "--benchmark", action="append",
                          help="restrict to named benchmarks (repeatable)")
    p_report.add_argument("-j", "--jobs", type=int, default=None,
                          help="prewarm artifacts through the batch "
                               "service with this many workers")
    p_report.add_argument("--cache-dir", default=None,
                          help="persistent artifact cache directory for "
                               "the prewarm")
    p_report.add_argument("--measure", action="store_true",
                          help="fission report only: also run parallel "
                               "regions on a real process pool and report "
                               "measured speedup")
    add_engine(p_report)
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
