"""OpenMP lowering for the mini-C front end (the 'any host compiler' half).

The paper's portability claim is that SPLENDID's output recompiles with
any OpenMP compiler (GCC/libgomp, Clang/libomp).  This module is our
host compiler's OpenMP support: it lowers ``#pragma omp parallel`` /
``omp for`` regions to the same ``__kmpc_*`` runtime protocol the
Polly-style parallelizer emits, which the interpreter's simulated
runtime then executes with the fork/join time model.

Supported shapes (the subset SPLENDID emits plus reference-code usage):

* ``#pragma omp parallel { #pragma omp for ... for(...){} ... }`` —
  one fork per worksharing loop in the region;
* ``#pragma omp parallel for ...`` directly on a loop;
* ``schedule(static[, chunk])``, ``nowait``, ``private(...)`` clauses;
* canonical loop forms ``for (iv = e0; iv REL e1; iv += C)`` with
  constant step (including ``iv++``/``iv--``/``iv = iv + C``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import types as ir_ty
from ..ir.builder import IRBuilder
from ..ir.metadata import DILocalVariable
from ..ir.module import Function
from ..ir.values import Value, const_int
from ..minic import c_ast as ast
from ..polly.runtime_decls import (declare_fork_call, declare_static_fini,
                                   declare_static_init)

_region_ids = itertools.count()


class OmpLoweringError(Exception):
    pass


class CanonicalLoop:
    """Decomposed ``for (iv = start; iv REL bound; iv += step)``."""

    def __init__(self, iv_name: str, declares_iv: bool,
                 iv_ctype: Optional[ast.CType], start: ast.Expr,
                 relation: str, bound: ast.Expr, step: int, body: ast.Stmt):
        self.iv_name = iv_name
        self.declares_iv = declares_iv
        self.iv_ctype = iv_ctype
        self.start = start
        self.relation = relation
        self.bound = bound
        self.step = step
        self.body = body


def canonicalize_for(stmt: ast.For) -> CanonicalLoop:
    """Check OpenMP's canonical-loop-form rules and decompose the loop."""
    # init
    declares_iv, iv_ctype = False, None
    if isinstance(stmt.init, ast.Declaration):
        iv_name = stmt.init.name
        start = stmt.init.init
        declares_iv, iv_ctype = True, stmt.init.ctype
        if start is None:
            raise OmpLoweringError("canonical loop needs an initialized IV")
    elif isinstance(stmt.init, ast.ExprStmt) \
            and isinstance(stmt.init.expr, ast.Assign) \
            and stmt.init.expr.op == "=" \
            and isinstance(stmt.init.expr.target, ast.Ident):
        iv_name = stmt.init.expr.target.name
        start = stmt.init.expr.value
    else:
        raise OmpLoweringError("omp for requires 'iv = start' initialization")

    # condition
    condition = stmt.condition
    if not (isinstance(condition, ast.Binary)
            and condition.op in ("<", "<=", ">", ">=")):
        raise OmpLoweringError("omp for requires a relational loop test")
    if isinstance(condition.lhs, ast.Ident) and condition.lhs.name == iv_name:
        relation, bound = condition.op, condition.rhs
    elif isinstance(condition.rhs, ast.Ident) \
            and condition.rhs.name == iv_name:
        swap = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        relation, bound = swap[condition.op], condition.lhs
    else:
        raise OmpLoweringError("loop test must compare the induction variable")

    # step
    step = _match_step(stmt.step, iv_name)
    if step is None:
        raise OmpLoweringError("omp for requires a constant-step increment")
    if step > 0 and relation in (">", ">="):
        raise OmpLoweringError("increment sign contradicts the loop test")
    if step < 0 and relation in ("<", "<="):
        raise OmpLoweringError("decrement sign contradicts the loop test")

    return CanonicalLoop(iv_name, declares_iv, iv_ctype, start, relation,
                         bound, step, stmt.body)


def _match_step(step: Optional[ast.Expr], iv_name: str) -> Optional[int]:
    if step is None:
        return None
    if isinstance(step, ast.Unary) and step.op in ("++", "--") \
            and isinstance(step.operand, ast.Ident) \
            and step.operand.name == iv_name:
        return 1 if step.op == "++" else -1
    if isinstance(step, ast.Assign) and isinstance(step.target, ast.Ident) \
            and step.target.name == iv_name:
        if step.op == "+=" and isinstance(step.value, ast.IntLit):
            return step.value.value
        if step.op == "-=" and isinstance(step.value, ast.IntLit):
            return -step.value.value
        if step.op == "=" and isinstance(step.value, ast.Binary) \
                and isinstance(step.value.lhs, ast.Ident) \
                and step.value.lhs.name == iv_name \
                and isinstance(step.value.rhs, ast.IntLit):
            if step.value.op == "+":
                return step.value.rhs.value
            if step.value.op == "-":
                return -step.value.rhs.value
    return None


def _free_identifiers(node, bound_names) -> List[str]:
    """Identifiers referenced under ``node`` that are not locally bound."""
    free: List[str] = []
    bound = set(bound_names)

    def visit_stmt(stmt, scope):
        if isinstance(stmt, ast.Compound):
            inner = set(scope)
            for child in stmt.body:
                visit_stmt(child, inner)
                if isinstance(child, ast.Declaration):
                    inner.add(child.name)
        elif isinstance(stmt, ast.Declaration):
            if stmt.init is not None:
                visit_expr(stmt.init, scope)
            scope.add(stmt.name)
        elif isinstance(stmt, ast.ExprStmt):
            visit_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.condition, scope)
            visit_stmt(stmt.then_body, set(scope))
            if stmt.else_body is not None:
                visit_stmt(stmt.else_body, set(scope))
        elif isinstance(stmt, ast.For):
            inner = set(scope)
            if stmt.init is not None:
                visit_stmt(stmt.init, inner)
            if stmt.condition is not None:
                visit_expr(stmt.condition, inner)
            if stmt.step is not None:
                visit_expr(stmt.step, inner)
            visit_stmt(stmt.body, inner)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            visit_expr(stmt.condition, scope)
            visit_stmt(stmt.body, set(scope))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            visit_expr(stmt.value, scope)

    def visit_expr(expr, scope):
        for node_ in ast.walk_exprs(expr):
            if isinstance(node_, ast.Ident) and node_.name not in scope \
                    and node_.name not in free:
                free.append(node_.name)

    if isinstance(node, ast.Stmt):
        visit_stmt(node, bound)
    else:
        visit_expr(node, bound)
    return free


def _assigned_identifiers(body: ast.Stmt) -> set:
    """Names assigned (or ++/--'d) anywhere in a statement subtree."""
    assigned = set()
    for expr in ast.walk_exprs(body):
        target = None
        if isinstance(expr, ast.Assign):
            target = expr.target
        elif isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            target = expr.operand
        if isinstance(target, ast.Ident):
            assigned.add(target.name)
    return assigned


def lower_parallel_region(lowering, region: ast.Compound) -> None:
    """Lower ``#pragma omp parallel { ... }``: each worksharing loop in
    the region forks; declarations become per-thread privates; other
    statements are rejected (sequential code in a parallel region would
    run once per thread — SPLENDID never emits that, and reference code
    doesn't use it)."""
    privates: List[ast.Declaration] = []
    for stmt in region.body:
        if isinstance(stmt, ast.Declaration):
            privates.append(stmt)
        elif isinstance(stmt, ast.Compound) and stmt.transparent and all(
                isinstance(s, ast.Declaration) for s in stmt.body):
            privates.extend(stmt.body)
        elif isinstance(stmt, ast.For):
            lower_worksharing_loop(lowering, stmt, privates)
        elif isinstance(stmt, ast.PragmaStmt) \
                and stmt.pragma.directive == "barrier":
            continue  # fork joins already synchronize in the model
        elif isinstance(stmt, ast.Compound) and not stmt.body:
            continue
        else:
            raise OmpLoweringError(
                "only worksharing for-loops and private declarations are "
                "supported inside '#pragma omp parallel'")


def lower_worksharing_loop(lowering, stmt: ast.For,
                           privates: Optional[List[ast.Declaration]] = None
                           ) -> None:
    """Lower one pragma-annotated for loop to fork + microtask."""
    pragma = None
    for candidate in stmt.pragmas:
        if "for" in candidate.directive:
            pragma = candidate
    loop = canonicalize_for(stmt)
    builder: IRBuilder = lowering.builder
    module = lowering.module

    # Sequential bounds in the caller.
    start64 = lowering._convert(lowering.lower_expr(loop.start), ir_ty.I64)
    bound64 = lowering._convert(lowering.lower_expr(loop.bound), ir_ty.I64)
    if loop.relation == "<":
        ub64 = builder.sub(bound64, const_int(1), "omp.ub")
    elif loop.relation == "<=":
        ub64 = bound64
    elif loop.relation == ">":
        ub64 = builder.add(bound64, const_int(1), "omp.lb.last")
    else:
        ub64 = bound64

    # Shared values: free identifiers of the body/bound, resolved in the
    # enclosing scope (globals resolve directly inside the microtask).
    privates = privates or []
    private = set(pragma.private) if pragma is not None else set()
    private |= {decl.name for decl in privates}
    reduction_names = set()
    if pragma is not None and pragma.reduction is not None:
        reduction_names = set(pragma.reduction[1])
    bound_names = {loop.iv_name} | private
    shared_names: List[str] = []
    for name in _free_identifiers(loop.body, bound_names):
        if name in lowering.locals and name not in shared_names:
            shared_names.append(name)

    # Scalars written in the region must be reduction (or private): a
    # by-value copy would silently drop the updates.
    written = _assigned_identifiers(loop.body)
    for name in shared_names:
        _, ctype = lowering.locals[name]
        if name in written and name not in reduction_names \
                and not isinstance(ctype, (ast.CPointer, ast.CArray)):
            raise OmpLoweringError(
                f"shared scalar '{name}' is written inside the parallel "
                f"region; declare it private or in a reduction clause")

    shared_values: List[Value] = []
    shared_info: List[Tuple[str, object, ir_ty.Type, bool]] = []
    for name in shared_names:
        slot, ctype = lowering.locals[name]
        if isinstance(ctype, ast.CArray):
            raise OmpLoweringError(
                f"sharing local array '{name}' across a parallel region is "
                "not supported; use a global or a pointer")
        if name in reduction_names:
            # Reduction variables are shared by reference: every thread
            # accumulates into the caller's slot (exact under the
            # runtime's sequential thread emulation).
            shared_values.append(slot)
            shared_info.append((name, ctype, slot.type, True))
        else:
            value = builder.load(slot, name)
            shared_values.append(value)
            shared_info.append((name, ctype, value.type, False))

    microtask = _build_microtask(lowering, loop, pragma, shared_info,
                                 privates)

    fork = declare_fork_call(module, microtask, len(shared_values))
    builder.call(fork, [microtask, start64, ub64, *shared_values])


def _build_microtask(lowering, loop: CanonicalLoop, pragma,
                     shared_info, privates=None) -> Function:
    from .codegen import FunctionLowering, lower_type

    module = lowering.module
    caller_name = lowering.function.name
    name = f"{caller_name}.omp_outlined.{next(_region_ids)}"
    param_types = [ir_ty.I32, ir_ty.I32, ir_ty.I64, ir_ty.I64]
    param_names = ["tid", "ntid", "lb", "ub"]
    for shared_name, _, ir_type, _by_ref in shared_info:
        param_types.append(ir_type)
        param_names.append(shared_name)
    microtask = Function(name, ir_ty.function(ir_ty.VOID, param_types),
                         param_names)
    microtask.is_outlined_parallel_region = True
    module.add_function(microtask)

    sub = FunctionLowering.__new__(FunctionLowering)
    sub.module = module
    sub.unit_cg = lowering.unit_cg
    sub.fn_ast = lowering.fn_ast
    sub.function = microtask
    sub.builder = IRBuilder()
    sub.locals = {}
    sub.scopes = [[]]
    sub.loop_stack = []
    sub.block_counter = 0

    entry = microtask.append_block("entry")
    sub.builder.position_at_end(entry)
    tid, ntid, lb_param, ub_param = microtask.arguments[:4]

    # Shared parameters become local slots, with debug metadata so the
    # decompiler round trip keeps their names.  By-reference shareds
    # (reduction variables) bind directly to the incoming pointer.
    for (shared_name, ctype, _, by_ref), arg in zip(shared_info,
                                                    microtask.arguments[4:]):
        if by_ref:
            sub._declare(shared_name, arg, ctype)
            continue
        slot = sub.builder.alloca(arg.type, f"{shared_name}.addr")
        slot.debug_variable = DILocalVariable(shared_name, scope=name)
        sub.builder.store(arg, slot)
        sub._declare(shared_name, slot, ctype)

    # Per-thread privates declared in the enclosing parallel region (plus
    # anything named in a private(...) clause that is visible outside).
    for decl in (privates or []):
        sub.lower_stmt(ast.Declaration(decl.ctype, decl.name, None,
                                       decl.array_dims))
    if pragma is not None:
        for pname in pragma.private:
            if pname not in sub.locals and pname in lowering.locals:
                _, pctype = lowering.locals[pname]
                sub.lower_stmt(ast.Declaration(pctype, pname))

    # Worksharing protocol.
    lb_slot = sub.builder.alloca(ir_ty.I64, "lb.addr")
    ub_slot = sub.builder.alloca(ir_ty.I64, "ub.addr")
    stride_slot = sub.builder.alloca(ir_ty.I64, "stride.addr")
    sub.builder.store(lb_param, lb_slot)
    sub.builder.store(ub_param, ub_slot)
    sub.builder.store(const_int(loop.step, ir_ty.I64), stride_slot)
    schedtype = 34
    chunk = 1
    if pragma is not None and pragma.schedule == "static" \
            and pragma.chunk is not None:
        schedtype, chunk = 33, pragma.chunk
    elif pragma is not None and pragma.schedule == "dynamic":
        schedtype = 35
        chunk = pragma.chunk if pragma.chunk is not None else 1
    init_fn = declare_static_init(module)
    sub.builder.call(init_fn, [tid, ntid, const_int(schedtype, ir_ty.I32),
                               lb_slot, ub_slot, stride_slot,
                               const_int(loop.step, ir_ty.I64),
                               const_int(chunk, ir_ty.I64)])
    my_lb = sub.builder.load(lb_slot, "mylb")
    my_ub = sub.builder.load(ub_slot, "myub")

    # The induction variable, thread-local.
    iv_ctype = loop.iv_ctype
    if iv_ctype is None:
        resolved = lowering.locals.get(loop.iv_name)
        iv_ctype = resolved[1] if resolved is not None else ast.LONG
    iv_ir_type = lower_type(iv_ctype)
    iv_slot = sub.builder.alloca(iv_ir_type, loop.iv_name)
    iv_slot.debug_variable = DILocalVariable(loop.iv_name, scope=name)
    sub._declare(loop.iv_name, iv_slot, iv_ctype)
    init_value = my_lb if iv_ir_type == ir_ty.I64 \
        else sub.builder.trunc(my_lb, iv_ir_type)
    sub.builder.store(init_value, iv_slot)

    cond_block = sub.new_block("omp.cond")
    body_block = sub.new_block("omp.body")
    inc_block = sub.new_block("omp.inc")
    finish = sub.new_block("omp.finish")
    sub.builder.br(cond_block)

    sub.builder.position_at_end(cond_block)
    iv = sub.builder.load(iv_slot, loop.iv_name)
    iv64 = iv if iv.type == ir_ty.I64 else sub.builder.sext(iv, ir_ty.I64)
    predicate = "sle" if loop.step > 0 else "sge"
    keep_going = sub.builder.icmp(predicate, iv64, my_ub)
    sub.builder.cond_br(keep_going, body_block, finish)

    sub.builder.position_at_end(body_block)
    sub.lower_stmt(loop.body)
    if not sub._terminated():
        sub.builder.br(inc_block)

    sub.builder.position_at_end(inc_block)
    iv = sub.builder.load(iv_slot, loop.iv_name)
    if loop.step >= 0:
        nxt = sub.builder.add(iv, const_int(loop.step, iv.type))
    else:
        nxt = sub.builder.sub(iv, const_int(-loop.step, iv.type))
    sub.builder.store(nxt, iv_slot)
    sub.builder.br(cond_block)

    sub.builder.position_at_end(finish)
    fini = declare_static_fini(module)
    sub.builder.call(fini, [tid])
    sub.builder.ret()
    microtask.assign_names()
    return microtask
