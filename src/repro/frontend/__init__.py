"""repro.frontend — mini-C AST to IR lowering (clang -O0 analogue)."""

from .codegen import Codegen, CodegenError, compile_source, lower_type, lower_unit

__all__ = ["Codegen", "CodegenError", "compile_source", "lower_type",
           "lower_unit"]
