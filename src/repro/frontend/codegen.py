"""Lowering mini-C ASTs to repro IR (clang -O0 style).

Every local variable and parameter gets a stack slot (``alloca``) tagged
with a :class:`DILocalVariable`; reads load it, writes store it.  The
mem2reg pass later promotes these slots to SSA values and materializes
``llvm.dbg.value`` intrinsics — exactly the metadata trail SPLENDID's
variable renamer consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import types as ir_ty
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.instructions import Alloca, Instruction
from ..ir.metadata import DILocalVariable
from ..ir.module import Function, Module
from ..ir.values import (Argument, ConstantFloat, ConstantInt, GlobalVariable,
                         Value, const_bool, const_float, const_int)
from ..minic import c_ast as ast
from ..minic.sema import BUILTIN_SIGNATURES, Sema


class CodegenError(Exception):
    pass


def lower_type(ctype: ast.CType) -> ir_ty.Type:
    if isinstance(ctype, ast.CVoid):
        return ir_ty.VOID
    if isinstance(ctype, ast.CInt):
        return ir_ty.I64 if ctype.bits == 64 else ir_ty.I32
    if isinstance(ctype, ast.CDouble):
        return ir_ty.DOUBLE
    if isinstance(ctype, ast.CPointer):
        return ir_ty.pointer(lower_type(ctype.pointee))
    if isinstance(ctype, ast.CArray):
        if ctype.size is None:
            # Unsized arrays only appear behind pointers; decay to pointer.
            return ir_ty.pointer(lower_type(ctype.element))
        return ir_ty.array(lower_type(ctype.element), ctype.size)
    raise CodegenError(f"cannot lower type {ctype!r}")


def _decl_ctype(decl: ast.Declaration) -> ast.CType:
    ctype = decl.ctype
    for dim in reversed(decl.array_dims):
        ctype = ast.CArray(ctype, dim if dim >= 0 else None)
    return ctype


class _LoopContext:
    """A `break` target plus (for loops, not switches) a `continue`
    target.  A switch pushes a context with ``continue_block=None`` so
    `break` binds to it while `continue` keeps reaching the loop."""

    def __init__(self, break_block: BasicBlock,
                 continue_block: Optional[BasicBlock]):
        self.break_block = break_block
        self.continue_block = continue_block


class FunctionLowering:
    """Lowers one function definition."""

    def __init__(self, module: Module, unit_cg: "Codegen",
                 fn_ast: ast.FunctionDef):
        self.module = module
        self.unit_cg = unit_cg
        self.fn_ast = fn_ast
        self.function: Optional[Function] = None
        self.builder = IRBuilder()
        self.locals: Dict[str, Tuple[Value, ast.CType]] = {}
        self.scopes: List[List[str]] = []
        self.loop_stack: List[_LoopContext] = []
        self.block_counter = 0
        self.label_blocks: Dict[str, BasicBlock] = {}
        self.defined_labels: set = set()

    # Block helpers ----------------------------------------------------------

    def new_block(self, hint: str) -> BasicBlock:
        self.block_counter += 1
        return self.function.append_block(f"{hint}{self.block_counter}")

    def _terminated(self) -> bool:
        block = self.builder.block
        return block is not None and block.terminator is not None

    # Entry ---------------------------------------------------------------------

    def run(self) -> Function:
        ftype = ir_ty.function(
            lower_type(self.fn_ast.return_type),
            [lower_type(p.ctype) for p in self.fn_ast.params])
        existing = self.module.functions.get(self.fn_ast.name)
        if existing is not None and existing.is_declaration \
                and existing.function_type == ftype:
            # A prior prototype: fill in the body behind the same object
            # so existing call sites keep resolving.
            self.function = existing
            for arg, param in zip(existing.arguments, self.fn_ast.params):
                arg.name = param.name
        else:
            self.function = Function(
                self.fn_ast.name, ftype, [p.name for p in self.fn_ast.params])
            self.module.add_function(self.function)
        entry = self.function.append_block("entry")
        self.builder.position_at_end(entry)

        self.scopes.append([])
        for param, arg in zip(self.fn_ast.params, self.function.arguments):
            slot = self.builder.alloca(arg.type, f"{param.name}.addr")
            slot.debug_variable = DILocalVariable(
                param.name, arg_index=arg.index, scope=self.fn_ast.name)
            self.builder.store(arg, slot)
            self._declare(param.name, slot, param.ctype)

        self.lower_stmt(self.fn_ast.body)

        for name in self.label_blocks:
            if name not in self.defined_labels:
                raise CodegenError(f"goto to undefined label '{name}'")
        if not self._terminated():
            if self.function.return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(_zero_of(self.function.return_type))
        self._prune_unreachable_blocks()
        self.function.assign_names()
        return self.function

    def _prune_unreachable_blocks(self) -> None:
        """Drop blocks unreachable from the entry.

        break/goto/return lowering parks the builder in fresh "dead"
        blocks; any branch later emitted from one would add a CFG edge
        that pruned-SSA construction never fills in, so the whole dead
        region goes away before the function is handed out.
        """
        reachable = set()
        work = [self.function.entry]
        while work:
            block = work.pop()
            if block in reachable:
                continue
            reachable.add(block)
            work.extend(block.successors)
        for block in list(self.function.blocks):
            if block not in reachable:
                for inst in list(block.instructions):
                    inst.erase()
                self.function.remove_block(block)

    # Scopes ------------------------------------------------------------------------

    def _declare(self, name: str, slot: Value, ctype: ast.CType) -> None:
        # C block scoping with shadowing is handled by saving/restoring in
        # lower_stmt(Compound); redeclaration in the same scope is a sema
        # error before we ever get here.
        self.locals[name] = (slot, ctype)
        self.scopes[-1].append(name)

    def _lookup(self, name: str) -> Tuple[Value, ast.CType]:
        if name in self.locals:
            return self.locals[name]
        if name in self.unit_cg.global_slots:
            return self.unit_cg.global_slots[name]
        raise CodegenError(f"unknown identifier '{name}'")

    # Statements ----------------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if self._terminated() \
                and not isinstance(stmt, (ast.Compound, ast.Label)):
            # Unreachable code after return/break: drop it, like clang -O0
            # does after trivial CFG cleanup.  Labels stay: a goto can
            # reach them from anywhere.
            return
        if isinstance(stmt, ast.Compound):
            if any(p.directive == "parallel" for p in stmt.pragmas):
                from .omp_lowering import lower_parallel_region
                lower_parallel_region(self, stmt)
                return
            if stmt.transparent:
                for child in stmt.body:
                    self.lower_stmt(child)
                return
            saved = dict(self.locals)
            self.scopes.append([])
            for child in stmt.body:
                self.lower_stmt(child)
            self.scopes.pop()
            self.locals = saved
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.For):
            if any("for" in p.directive or p.directive == "parallel"
                   for p in stmt.pragmas):
                from .omp_lowering import lower_worksharing_loop
                lower_worksharing_loop(self, stmt)
            else:
                self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.lower_expr(stmt.value)
                value = self._convert(value, self.function.return_type)
                self.builder.ret(value)
            else:
                self.builder.ret()
            self.builder.position_at_end(self.new_block("dead"))
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CodegenError("'break' outside of a loop")
            self.builder.br(self.loop_stack[-1].break_block)
            self.builder.position_at_end(self.new_block("dead"))
        elif isinstance(stmt, ast.Continue):
            target = None
            for ctx in reversed(self.loop_stack):
                if ctx.continue_block is not None:
                    target = ctx.continue_block
                    break
            if target is None:
                raise CodegenError("'continue' outside of a loop")
            self.builder.br(target)
            self.builder.position_at_end(self.new_block("dead"))
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Goto):
            self.builder.br(self._label_block(stmt.label))
            self.builder.position_at_end(self.new_block("dead"))
        elif isinstance(stmt, ast.Label):
            if stmt.name in self.defined_labels:
                raise CodegenError(f"duplicate label '{stmt.name}'")
            self.defined_labels.add(stmt.name)
            block = self._label_block(stmt.name)
            if not self._terminated():
                self.builder.br(block)
            self.builder.position_at_end(block)
        elif isinstance(stmt, ast.PragmaStmt):
            # Source-level pragmas (e.g. omp barrier in reference code) are
            # lowered by the OpenMP lowering driver, not here.
            pass
        else:
            raise CodegenError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_declaration(self, decl: ast.Declaration) -> None:
        ctype = _decl_ctype(decl)
        ir_type = lower_type(ctype)
        slot = self.builder.alloca(ir_type, decl.name)
        slot.debug_variable = DILocalVariable(decl.name, scope=self.fn_ast.name)
        self._declare(decl.name, slot, ctype)
        if decl.init is not None:
            value = self.lower_expr(decl.init)
            value = self._convert(value, ir_type)
            self.builder.store(value, slot)

    def _lower_if(self, stmt: ast.If) -> None:
        condition = self._lower_condition(stmt.condition)
        then_block = self.new_block("if.then")
        end_block = self.new_block("if.end")
        else_block = self.new_block("if.else") if stmt.else_body else end_block
        self.builder.cond_br(condition, then_block, else_block)

        self.builder.position_at_end(then_block)
        self.lower_stmt(stmt.then_body)
        if not self._terminated():
            self.builder.br(end_block)

        if stmt.else_body is not None:
            self.builder.position_at_end(else_block)
            self.lower_stmt(stmt.else_body)
            if not self._terminated():
                self.builder.br(end_block)

        self.builder.position_at_end(end_block)

    def _lower_for(self, stmt: ast.For) -> None:
        saved = dict(self.locals)
        self.scopes.append([])
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self.new_block("for.cond")
        body_block = self.new_block("for.body")
        inc_block = self.new_block("for.inc")
        end_block = self.new_block("for.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        if stmt.condition is not None:
            condition = self._lower_condition(stmt.condition)
            self.builder.cond_br(condition, body_block, end_block)
        else:
            self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, inc_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self._terminated():
            self.builder.br(inc_block)

        self.builder.position_at_end(inc_block)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(end_block)
        self.scopes.pop()
        self.locals = saved

    def _lower_while(self, stmt: ast.While) -> None:
        cond_block = self.new_block("while.cond")
        body_block = self.new_block("while.body")
        end_block = self.new_block("while.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        condition = self._lower_condition(stmt.condition)
        self.builder.cond_br(condition, body_block, end_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, cond_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self._terminated():
            self.builder.br(cond_block)

        self.builder.position_at_end(end_block)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self.new_block("do.body")
        cond_block = self.new_block("do.cond")
        end_block = self.new_block("do.end")
        self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(end_block, cond_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self._terminated():
            self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        condition = self._lower_condition(stmt.condition)
        self.builder.cond_br(condition, body_block, end_block)

        self.builder.position_at_end(end_block)

    def _label_block(self, name: str) -> BasicBlock:
        block = self.label_blocks.get(name)
        if block is None:
            self.block_counter += 1
            block = self.function.append_block(
                f"label.{name}{self.block_counter}")
            self.label_blocks[name] = block
        return block

    def _lower_switch(self, stmt: ast.Switch) -> None:
        control = self.lower_expr(stmt.control)
        end_block = self.new_block("switch.end")
        body_blocks = [self.new_block("switch.case") for _ in stmt.cases]
        default_target = end_block
        for case, body in zip(stmt.cases, body_blocks):
            if case.value is None:
                default_target = body

        # Dispatch: an eq-compare chain, one test per value label.
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                continue
            compare = self.builder.icmp(
                "eq", control, const_int(case.value, control.type), "swcmp")
            next_test = self.new_block("switch.next")
            self.builder.cond_br(compare, body_blocks[index], next_test)
            self.builder.position_at_end(next_test)
        self.builder.br(default_target)

        saved = dict(self.locals)
        self.scopes.append([])
        self.loop_stack.append(_LoopContext(end_block, None))
        for index, case in enumerate(stmt.cases):
            self.builder.position_at_end(body_blocks[index])
            for child in case.body:
                self.lower_stmt(child)
            if not self._terminated():
                if self.builder.block is not body_blocks[index] \
                        and not self.builder.block.predecessors:
                    # Dead continuation after a break/return inside the
                    # case; a branch from it would add a bogus edge that
                    # pruned-SSA phi construction never fills in.
                    self.builder.unreachable()
                else:
                    # C fallthrough into the next case body (or out).
                    following = (body_blocks[index + 1]
                                 if index + 1 < len(body_blocks) else end_block)
                    self.builder.br(following)
        self.loop_stack.pop()
        self.scopes.pop()
        self.locals = saved
        self.builder.position_at_end(end_block)

    # Expressions ----------------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            vtype = ir_ty.I32 if -(2**31) <= expr.value < 2**31 else ir_ty.I64
            return const_int(expr.value, vtype)
        if isinstance(expr, ast.FloatLit):
            return const_float(expr.value)
        if isinstance(expr, ast.Ident):
            slot, ctype = self._lookup(expr.name)
            if isinstance(ctype, ast.CArray):
                return slot  # array decays to pointer-to-array storage
            return self.builder.load(slot, expr.name)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.Index):
            address = self.lower_address(expr)
            if address.type.pointee.is_array:
                return address  # partial indexing decays to a row pointer
            return self.builder.load(address)
        if isinstance(expr, ast.CastExpr):
            value = self.lower_expr(expr.operand)
            return self._convert(value, lower_type(expr.ctype))
        if isinstance(expr, ast.SizeofExpr):
            return const_int(ir_ty.sizeof(lower_type(expr.ctype)), ir_ty.I64)
        if isinstance(expr, ast.Comma):
            result: Optional[Value] = None
            for part in expr.parts:
                result = self.lower_expr(part)
            return result
        if isinstance(expr, ast.StrLit):
            raise CodegenError("string literals are not supported in kernels")
        raise CodegenError(f"cannot lower expression {type(expr).__name__}")

    def lower_address(self, expr: ast.Expr) -> Value:
        """Address of an lvalue expression."""
        if isinstance(expr, ast.Ident):
            slot, _ = self._lookup(expr.name)
            return slot
        if isinstance(expr, ast.Index):
            # Collect the full subscript chain: A[i][j] -> base A, [i, j].
            indices: List[ast.Expr] = []
            base = expr
            while isinstance(base, ast.Index):
                indices.insert(0, base.index)
                base = base.base
            if not isinstance(base, ast.Ident):
                raise CodegenError("unsupported array base expression")
            slot, ctype = self._lookup(base.name)
            index_values = [self._to_i64(self.lower_expr(i)) for i in indices]
            if isinstance(ctype, ast.CArray):
                # Local/global array: slot is [N x ...]*; prepend 0.
                return self.builder.gep(
                    slot, [const_int(0, ir_ty.I64), *index_values],
                    f"{base.name}.idx")
            pointer = self.builder.load(slot, base.name)
            first, rest = index_values[0], index_values[1:]
            return self.builder.gep(pointer, [first, *rest], f"{base.name}.idx")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.lower_expr(expr.operand)
        raise CodegenError(f"expression is not addressable: {expr}")

    def _lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op in ("++", "--"):
            address = self.lower_address(expr.operand)
            old = self.builder.load(address)
            one = (const_float(1.0) if old.type.is_float
                   else const_int(1, old.type))
            opcode = ("fadd" if old.type.is_float else "add") \
                if expr.op == "++" else ("fsub" if old.type.is_float else "sub")
            new = self.builder.binop(opcode, old, one)
            self.builder.store(new, address)
            self._emit_dbg_for_slot(address, new)
            return old if expr.postfix else new
        if expr.op == "-":
            value = self.lower_expr(expr.operand)
            if value.type.is_float:
                return self.builder.fsub(const_float(0.0), value)
            return self.builder.sub(const_int(0, value.type), value)
        if expr.op == "!":
            value = self.lower_expr(expr.operand)
            condition = self._truthy(value)
            result = self.builder.icmp("eq", condition, const_bool(False))
            return self.builder.cast("zext", result, ir_ty.I32)
        if expr.op == "~":
            value = self.lower_expr(expr.operand)
            return self.builder.binop(
                "xor", value, const_int(-1, value.type))
        if expr.op == "*":
            address = self.lower_expr(expr.operand)
            return self.builder.load(address)
        if expr.op == "&":
            return self.lower_address(expr.operand)
        raise CodegenError(f"cannot lower unary '{expr.op}'")

    def _lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self._lower_logical(expr)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            lhs, rhs = self._unify(lhs, rhs)
            predicate = {"==": "eq", "!=": "ne", "<": "slt", ">": "sgt",
                         "<=": "sle", ">=": "sge"}[expr.op]
            if lhs.type.is_float:
                predicate = {"eq": "oeq", "ne": "one", "slt": "olt",
                             "sgt": "ogt", "sle": "ole", "sge": "oge"}[predicate]
                cmp = self.builder.fcmp(predicate, lhs, rhs)
            else:
                cmp = self.builder.icmp(predicate, lhs, rhs)
            return cmp
        if lhs.type.is_pointer or rhs.type.is_pointer:
            # Pointer arithmetic: ptr + int  /  ptr - int.
            pointer, offset = (lhs, rhs) if lhs.type.is_pointer else (rhs, lhs)
            if pointer.type.pointee.is_array:
                # Array decays to a pointer to its first element.
                zero = const_int(0, ir_ty.I64)
                pointer = self.builder.gep(pointer, [zero, zero])
            offset = self._to_i64(offset)
            if expr.op == "-":
                offset = self.builder.sub(const_int(0, ir_ty.I64), offset)
            elif expr.op != "+":
                raise CodegenError(f"invalid pointer arithmetic '{expr.op}'")
            return self.builder.gep(pointer, [offset])
        lhs, rhs = self._unify(lhs, rhs)
        if lhs.type.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul",
                      "/": "fdiv"}.get(expr.op)
        else:
            opcode = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                      "%": "srem", "&": "and", "|": "or", "^": "xor",
                      "<<": "shl", ">>": "ashr"}.get(expr.op)
        if opcode is None:
            raise CodegenError(f"cannot lower binary '{expr.op}'")
        return self.builder.binop(opcode, lhs, rhs)

    def _lower_logical(self, expr: ast.Binary) -> Value:
        lhs_cond = self._lower_condition(expr.lhs)
        lhs_block = self.builder.block
        rhs_block = self.new_block("land.rhs" if expr.op == "&&" else "lor.rhs")
        end_block = self.new_block("land.end" if expr.op == "&&" else "lor.end")
        if expr.op == "&&":
            self.builder.cond_br(lhs_cond, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs_cond, end_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs_cond = self._lower_condition(expr.rhs)
        rhs_end = self.builder.block
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        phi = self.builder.phi(ir_ty.I1)
        phi.add_incoming(const_bool(expr.op == "||"), lhs_block)
        phi.add_incoming(rhs_cond, rhs_end)
        return phi

    def _lower_conditional(self, expr: ast.Conditional) -> Value:
        condition = self._lower_condition(expr.condition)
        true_block = self.new_block("cond.true")
        false_block = self.new_block("cond.false")
        end_block = self.new_block("cond.end")
        self.builder.cond_br(condition, true_block, false_block)

        self.builder.position_at_end(true_block)
        true_value = self.lower_expr(expr.if_true)
        true_end = self.builder.block
        self.builder.br(end_block)

        self.builder.position_at_end(false_block)
        false_value = self.lower_expr(expr.if_false)
        if true_value.type != false_value.type:
            false_value = self._convert(false_value, true_value.type)
        false_end = self.builder.block
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        phi = self.builder.phi(true_value.type)
        phi.add_incoming(true_value, true_end)
        phi.add_incoming(false_value, false_end)
        return phi

    def _lower_assign(self, expr: ast.Assign) -> Value:
        address = self.lower_address(expr.target)
        target_type = address.type.pointee
        if expr.op == "=":
            value = self.lower_expr(expr.value)
            value = self._convert(value, target_type)
        else:
            old = self.builder.load(address)
            rhs = self.lower_expr(expr.value)
            old2, rhs = self._unify(old, rhs)
            base_op = expr.op[0]
            if old2.type.is_float:
                opcode = {"+": "fadd", "-": "fsub", "*": "fmul",
                          "/": "fdiv"}[base_op]
            else:
                opcode = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                          "%": "srem"}[base_op]
            value = self.builder.binop(opcode, old2, rhs)
            value = self._convert(value, target_type)
        self.builder.store(value, address)
        self._emit_dbg_for_slot(address, value)
        return value

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        callee = self.unit_cg.resolve_callee(expr.callee, expr.args, self)
        arg_values = []
        param_types = callee.function_type.params
        for i, arg in enumerate(expr.args):
            value = self.lower_expr(arg)
            if i < len(param_types):
                value = self._convert(value, param_types[i])
            arg_values.append(value)
        name = "" if callee.return_type.is_void else f"call.{expr.callee}"
        return self.builder.call(callee, arg_values, name)

    # Conversions ---------------------------------------------------------------------

    def _truthy(self, value: Value) -> Value:
        if value.type == ir_ty.I1:
            return value
        if value.type.is_float:
            return self.builder.fcmp("one", value, const_float(0.0))
        if value.type.is_integer:
            return self.builder.icmp("ne", value, const_int(0, value.type))
        raise CodegenError(f"cannot branch on type {value.type}")

    def _lower_condition(self, expr: ast.Expr) -> Value:
        return self._truthy(self.lower_expr(expr))

    def _to_i64(self, value: Value) -> Value:
        return self._convert(value, ir_ty.I64)

    def _convert(self, value: Value, target: ir_ty.Type) -> Value:
        source = value.type
        if source == target:
            return value
        if isinstance(value, ConstantInt) and target.is_integer:
            return const_int(value.value, target)
        if isinstance(value, ConstantInt) and target.is_float:
            return const_float(float(value.value))
        if source.is_integer and target.is_integer:
            if source.bits < target.bits:
                return self.builder.sext(value, target)
            return self.builder.trunc(value, target)
        if source.is_integer and target.is_float:
            return self.builder.sitofp(value, target)
        if source.is_float and target.is_integer:
            return self.builder.fptosi(value, target)
        if source.is_pointer and target.is_pointer:
            return self.builder.cast("bitcast", value, target)
        raise CodegenError(f"cannot convert {source} to {target}")

    def _unify(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        if lhs.type == rhs.type:
            return lhs, rhs
        if lhs.type.is_float or rhs.type.is_float:
            return (self._convert(lhs, ir_ty.DOUBLE),
                    self._convert(rhs, ir_ty.DOUBLE))
        if lhs.type.is_integer and rhs.type.is_integer:
            if lhs.type == ir_ty.I1:
                lhs = self.builder.cast("zext", lhs, rhs.type)
                return lhs, rhs
            if rhs.type == ir_ty.I1:
                rhs = self.builder.cast("zext", rhs, lhs.type)
                return lhs, rhs
            target = lhs.type if lhs.type.bits >= rhs.type.bits else rhs.type
            return self._convert(lhs, target), self._convert(rhs, target)
        if lhs.type.is_pointer:
            return lhs, rhs
        raise CodegenError(f"cannot unify {lhs.type} and {rhs.type}")

    def _emit_dbg_for_slot(self, address: Value, value: Value) -> None:
        """No-op at -O0: dbg.value intrinsics appear when mem2reg promotes
        the slot.  Kept as an explicit hook so the contract is visible."""


def _zero_of(vtype: ir_ty.Type) -> Value:
    if vtype.is_float:
        return const_float(0.0)
    if vtype.is_integer:
        return const_int(0, vtype)
    raise CodegenError(f"no zero value for {vtype}")


class Codegen:
    """Lowers a checked translation unit to an IR module."""

    def __init__(self, unit: ast.TranslationUnit, sema: Optional[Sema] = None,
                 module_name: str = "module"):
        self.unit = unit
        self.sema = sema
        self.module = Module(module_name)
        self.global_slots: Dict[str, Tuple[Value, ast.CType]] = {}

    def run(self) -> Module:
        for decl in self.unit.globals:
            ctype = _decl_ctype(decl)
            var = GlobalVariable(lower_type(ctype), decl.name)
            self.module.add_global(var)
            self.global_slots[decl.name] = (var, ctype)
        for fn_ast in self.unit.functions:
            if fn_ast.is_declaration:
                self._declare_function(fn_ast)
        for fn_ast in self.unit.functions:
            if not fn_ast.is_declaration:
                FunctionLowering(self.module, self, fn_ast).run()
        return self.module

    def _declare_function(self, fn_ast: ast.FunctionDef) -> Function:
        ftype = ir_ty.function(
            lower_type(fn_ast.return_type),
            [lower_type(p.ctype) for p in fn_ast.params])
        return self.module.get_or_declare(fn_ast.name, ftype)

    def resolve_callee(self, name: str, args: List[ast.Expr],
                       lowering: FunctionLowering) -> Function:
        if name in self.module.functions:
            return self.module.functions[name]
        if name in BUILTIN_SIGNATURES:
            return_ctype, param_ctypes = BUILTIN_SIGNATURES[name]
            if param_ctypes is None:
                param_ctypes = tuple(ast.DOUBLE for _ in args)
            ftype = ir_ty.function(
                lower_type(return_ctype),
                [lower_type(p) for p in param_ctypes])
            return self.module.get_or_declare(name, ftype)
        raise CodegenError(f"call to unknown function '{name}'")


def lower_unit(unit: ast.TranslationUnit,
               module_name: str = "module") -> Module:
    """Type-check and lower a translation unit to IR."""
    from ..minic.sema import check
    sema = check(unit)
    return Codegen(unit, sema, module_name).run()


def compile_source(source: str, defines: Optional[Dict[str, str]] = None,
                   module_name: str = "module") -> Module:
    """Parse, check, and lower mini-C source text."""
    from ..minic.parser import parse
    return lower_unit(parse(source, defines), module_name)
