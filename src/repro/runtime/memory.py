"""Runtime memory model: byte-addressed buffers and fat pointers.

Each allocation (alloca, global, malloc) owns one :class:`Buffer`; a
pointer is a (buffer, byte-offset) pair.  Scalar cells live in a dict
keyed by byte offset — reads of uninitialized memory default to zero,
matching the zero-initialized arrays PolyBench setup code relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir import types as ir_ty

_buffer_ids = itertools.count(1)


class TrapError(Exception):
    """Runtime fault: bad pointer arithmetic, use-after-free, div by zero."""


class Buffer:
    def __init__(self, size: int, label: str = ""):
        self.id = next(_buffer_ids)
        self.size = size
        self.label = label
        self.cells: Dict[int, object] = {}
        self.freed = False

    def check(self, offset: int, size: int) -> None:
        if self.freed:
            raise TrapError(f"use after free of buffer '{self.label}'")
        if offset < 0 or offset + size > self.size:
            raise TrapError(
                f"out-of-bounds access at offset {offset} (+{size}) in "
                f"buffer '{self.label}' of size {self.size}")

    def load(self, offset: int, vtype: ir_ty.Type):
        size = ir_ty.sizeof(vtype)
        self.check(offset, size)
        value = self.cells.get(offset)
        if value is None:
            if vtype.is_float:
                return 0.0
            if vtype.is_pointer:
                return NULL
            return 0
        return value

    def store(self, offset: int, value, vtype: ir_ty.Type) -> None:
        size = ir_ty.sizeof(vtype)
        self.check(offset, size)
        self.cells[offset] = value

    def __repr__(self) -> str:
        return f"<Buffer #{self.id} '{self.label}' {self.size}B>"


@dataclass(frozen=True)
class Pointer:
    buffer: Optional[Buffer]
    offset: int = 0

    def add(self, delta: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + delta)

    @property
    def is_null(self) -> bool:
        return self.buffer is None

    def __repr__(self) -> str:
        if self.is_null:
            return "<null>"
        return f"<ptr #{self.buffer.id}+{self.offset}>"


NULL = Pointer(None, 0)
