"""Runtime memory models: byte-addressed buffers and fat pointers.

Each allocation (alloca, global, malloc) owns one buffer; a pointer is
a (buffer, byte-offset) pair.  Two interchangeable models implement the
same ``load``/``store``/``check`` contract (plus the width-specialized
accessors the trace engine emits calls to):

* ``flat`` (the default) — :class:`FlatBuffer` stores a real
  ``bytearray`` and ``struct``-packs every access, so a GEP chain is
  integer arithmetic into flat storage, narrow-store/wide-load aliasing
  has genuine little-endian byte semantics, and zero-initialized reads
  fall out of the zeroed backing store.  Non-scalar values (pointers,
  functions — e.g. through ``ptrtoint`` round trips) live in a small
  per-buffer side table keyed by offset, evicted by any overlapping
  byte store.
* ``dict`` — :class:`Buffer` keeps scalar cells in a ``Dict[int,
  object]`` keyed by byte offset.  This is the original model, kept as
  the semantics reference behind ``memory="dict"`` exactly the way the
  tree walker backs ``engine="walk"``.

Both models trap identically: out-of-bounds, use-after-free and null
dereferences raise :class:`TrapError` with byte-identical messages (the
differential trap-contract tests enforce this).

Buffers are only ever constructed here (grep-enforced, like the
AnalysisManager and walker choke points): the runtime allocates through
a per-interpreter :class:`MemorySpace`, which also owns buffer-id
numbering — ids are deterministic per interpreter instead of drifting
with a process-global counter (the same determinism fix PR 3 applied to
outlined-function ids).  Direct construction (unit tests) draws
negative ids from a fallback counter so it can never collide with a
space's positive ids in pointer comparisons.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from ..ir import types as ir_ty

#: The two memory models.  ``flat`` is typed flat storage (the default);
#: ``dict`` is the original cell-dict model, kept as the reference.
MEMORY_MODELS = ("flat", "dict")

_DEFAULT_MEMORY = "flat"

#: Test-only ids for directly-constructed buffers (see module docstring).
_fallback_ids = itertools.count(-1, -1)

_pack_f64 = struct.Struct("<d").pack_into
_unpack_f64 = struct.Struct("<d").unpack_from
_pack_i64 = struct.Struct("<q").pack_into
_unpack_i64 = struct.Struct("<q").unpack_from
_pack_i32 = struct.Struct("<i").pack_into
_unpack_i32 = struct.Struct("<i").unpack_from
_pack_i8 = struct.Struct("<b").pack_into
_unpack_i8 = struct.Struct("<b").unpack_from

_ZEROS8 = bytes(8)


def default_memory() -> str:
    """The model used when :class:`MemorySpace` is given ``model=None``."""
    return _DEFAULT_MEMORY


def set_default_memory(model: str) -> str:
    """Set the process-wide default memory model; returns the previous."""
    global _DEFAULT_MEMORY
    if model not in MEMORY_MODELS:
        raise ValueError(
            f"unknown memory model {model!r}; expected one of {MEMORY_MODELS}")
    previous = _DEFAULT_MEMORY
    _DEFAULT_MEMORY = model
    return previous


class TrapError(Exception):
    """Runtime fault: bad pointer arithmetic, use-after-free, div by zero."""


class Buffer:
    """The ``dict`` memory model: scalar cells keyed by byte offset.

    Reads of uninitialized memory default to zero, matching the
    zero-initialized arrays PolyBench setup code relies on.
    """

    def __init__(self, size: int, label: str = "",
                 buffer_id: Optional[int] = None):
        self.id = next(_fallback_ids) if buffer_id is None else buffer_id
        self.size = size
        self.label = label
        self.cells: Dict[int, object] = {}
        self.freed = False
        self.track = False
        self.dirty_lo = size
        self.dirty_hi = 0

    def check(self, offset: int, size: int) -> None:
        if self.freed:
            raise TrapError(f"use after free of buffer '{self.label}'")
        if offset < 0 or offset + size > self.size:
            raise TrapError(
                f"out-of-bounds access at offset {offset} (+{size}) in "
                f"buffer '{self.label}' of size {self.size}")

    def load(self, offset: int, vtype: ir_ty.Type):
        size = ir_ty.sizeof(vtype)
        self.check(offset, size)
        value = self.cells.get(offset)
        if value is None:
            if vtype.is_float:
                return 0.0
            if vtype.is_pointer:
                return NULL
            return 0
        return value

    def store(self, offset: int, value, vtype: ir_ty.Type) -> None:
        size = ir_ty.sizeof(vtype)
        self.check(offset, size)
        self.cells[offset] = value
        if self.track:
            if offset < self.dirty_lo:
                self.dirty_lo = offset
            if offset + size > self.dirty_hi:
                self.dirty_hi = offset + size

    # Width-specialized accessors (the trace engine emits these) --------------

    def load_f64(self, offset: int):
        return self.load(offset, ir_ty.DOUBLE)

    def load_i64(self, offset: int):
        return self.load(offset, ir_ty.I64)

    def load_i32(self, offset: int):
        return self.load(offset, ir_ty.I32)

    def load_i8(self, offset: int):
        return self.load(offset, ir_ty.I8)

    def load_i1(self, offset: int):
        return self.load(offset, ir_ty.I1)

    def load_ptr(self, offset: int):
        return self.load(offset, _PTR_TYPE)

    def store_f64(self, offset: int, value) -> None:
        self.store(offset, value, ir_ty.DOUBLE)

    def store_i64(self, offset: int, value) -> None:
        self.store(offset, value, ir_ty.I64)

    def store_i32(self, offset: int, value) -> None:
        self.store(offset, value, ir_ty.I32)

    def store_i8(self, offset: int, value) -> None:
        self.store(offset, value, ir_ty.I8)

    def store_i1(self, offset: int, value) -> None:
        self.store(offset, value, ir_ty.I1)

    def store_ptr(self, offset: int, value) -> None:
        self.store(offset, value, _PTR_TYPE)

    # Measured-parallel support ----------------------------------------------

    def reset_dirty(self) -> None:
        self.dirty_lo, self.dirty_hi = self.size, 0

    def __repr__(self) -> str:
        return f"<Buffer #{self.id} '{self.label}' {self.size}B>"


class FlatBuffer:
    """The ``flat`` memory model: typed accesses over a ``bytearray``.

    Integers are stored two's-complement little-endian at their natural
    width (an ``i1`` occupies one byte holding 0 or 1); doubles are
    IEEE-754 packed; pointers (and any other non-scalar object, e.g. a
    ``ptrtoint``-laundered :class:`Pointer`) live in the ``ptrs`` side
    table, evicted by overlapping byte stores.  Uninitialized reads are
    zero because the backing store starts zeroed.

    ``track``/``dirty_lo``/``dirty_hi`` implement the write watermark
    the measured parallel executor uses to merge per-process views of a
    buffer back into the parent on region join.
    """

    __slots__ = ("id", "size", "label", "data", "ptrs", "freed",
                 "track", "dirty_lo", "dirty_hi")

    def __init__(self, size: int, label: str = "",
                 buffer_id: Optional[int] = None):
        self.id = next(_fallback_ids) if buffer_id is None else buffer_id
        self.size = size
        self.label = label
        self.data = bytearray(size)
        self.ptrs: Dict[int, object] = {}
        self.freed = False
        self.track = False
        self.dirty_lo = size
        self.dirty_hi = 0

    def check(self, offset: int, size: int) -> None:
        if self.freed:
            raise TrapError(f"use after free of buffer '{self.label}'")
        if offset < 0 or offset + size > self.size:
            raise TrapError(
                f"out-of-bounds access at offset {offset} (+{size}) in "
                f"buffer '{self.label}' of size {self.size}")

    # Generic API (walker, closures, OpenMP runtime) --------------------------

    def load(self, offset: int, vtype: ir_ty.Type):
        if vtype.is_float:
            return self.load_f64(offset)
        if vtype.is_integer:
            bits = vtype.bits
            if bits == 64:
                return self.load_i64(offset)
            if bits == 32:
                return self.load_i32(offset)
            if bits == 8:
                return self.load_i8(offset)
            if bits == 1:
                return self.load_i1(offset)
            return self._load_int(offset, max(1, bits // 8))
        if vtype.is_pointer:
            return self.load_ptr(offset)
        raise TrapError(f"cannot load value of type {vtype}")

    def store(self, offset: int, value, vtype: ir_ty.Type) -> None:
        if vtype.is_float:
            self.store_f64(offset, value)
        elif vtype.is_integer:
            bits = vtype.bits
            if bits == 64:
                self.store_i64(offset, value)
            elif bits == 32:
                self.store_i32(offset, value)
            elif bits == 8:
                self.store_i8(offset, value)
            elif bits == 1:
                self.store_i1(offset, value)
            else:
                self._store_int(offset, value, max(1, bits // 8))
        elif vtype.is_pointer:
            self.store_ptr(offset, value)
        else:
            raise TrapError(f"cannot store value of type {vtype}")

    # Side-table helpers ------------------------------------------------------

    def _evict_ptrs(self, offset: int, size: int) -> None:
        dead = [k for k in self.ptrs
                if k < offset + size and k + 8 > offset]
        for k in dead:
            del self.ptrs[k]

    def _store_obj(self, offset: int, value) -> None:
        if self.ptrs:
            self._evict_ptrs(offset, 8)
        self.ptrs[offset] = value
        self.data[offset:offset + 8] = _ZEROS8

    def _mark(self, offset: int, size: int) -> None:
        if offset < self.dirty_lo:
            self.dirty_lo = offset
        if offset + size > self.dirty_hi:
            self.dirty_hi = offset + size

    # Width-specialized accessors --------------------------------------------

    def load_f64(self, offset: int):
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return _unpack_f64(self.data, offset)[0]

    def load_i64(self, offset: int):
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return _unpack_i64(self.data, offset)[0]

    def load_i32(self, offset: int):
        if self.freed or offset < 0 or offset + 4 > self.size:
            self.check(offset, 4)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return _unpack_i32(self.data, offset)[0]

    def load_i8(self, offset: int):
        if self.freed or offset < 0 or offset + 1 > self.size:
            self.check(offset, 1)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return _unpack_i8(self.data, offset)[0]

    def load_i1(self, offset: int):
        if self.freed or offset < 0 or offset + 1 > self.size:
            self.check(offset, 1)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return self.data[offset] & 1

    def load_ptr(self, offset: int):
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        raw = _unpack_i64(self.data, offset)[0]
        return NULL if raw == 0 else raw

    def _load_int(self, offset: int, size: int):
        self.check(offset, size)
        if self.ptrs:
            obj = self.ptrs.get(offset)
            if obj is not None:
                return obj
        return int.from_bytes(self.data[offset:offset + size], "little",
                              signed=True)

    def store_f64(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if self.ptrs:
            self._evict_ptrs(offset, 8)
        if isinstance(value, float):
            _pack_f64(self.data, offset, value)
        elif isinstance(value, int):
            _pack_f64(self.data, offset, float(value))
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 8)

    def store_i64(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if self.ptrs:
            self._evict_ptrs(offset, 8)
        if isinstance(value, int):
            _pack_i64(self.data, offset, value)
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 8)

    def store_i32(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 4 > self.size:
            self.check(offset, 4)
        if self.ptrs:
            self._evict_ptrs(offset, 4)
        if isinstance(value, int):
            _pack_i32(self.data, offset, value)
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 4)

    def store_i8(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 1 > self.size:
            self.check(offset, 1)
        if self.ptrs:
            self._evict_ptrs(offset, 1)
        if isinstance(value, int):
            _pack_i8(self.data, offset, value)
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 1)

    def store_i1(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 1 > self.size:
            self.check(offset, 1)
        if self.ptrs:
            self._evict_ptrs(offset, 1)
        if isinstance(value, int):
            self.data[offset] = value & 1
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 1)

    def store_ptr(self, offset: int, value) -> None:
        if self.freed or offset < 0 or offset + 8 > self.size:
            self.check(offset, 8)
        if isinstance(value, Pointer):
            if value.buffer is None:
                if self.ptrs:
                    self._evict_ptrs(offset, 8)
                self.data[offset:offset + 8] = _ZEROS8
            else:
                self._store_obj(offset, value)
        elif isinstance(value, int):
            if self.ptrs:
                self._evict_ptrs(offset, 8)
            _pack_i64(self.data, offset, value)
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, 8)

    def _store_int(self, offset: int, value, size: int) -> None:
        self.check(offset, size)
        if self.ptrs:
            self._evict_ptrs(offset, size)
        if isinstance(value, int):
            self.data[offset:offset + size] = \
                (value % (1 << (8 * size))).to_bytes(size, "little")
        else:
            self._store_obj(offset, value)
        if self.track:
            self._mark(offset, size)

    # Measured-parallel support ----------------------------------------------

    def reset_dirty(self) -> None:
        self.dirty_lo, self.dirty_hi = self.size, 0

    def dirty_slice(self):
        """``(lo, bytes)`` of everything stored since ``reset_dirty``."""
        if self.dirty_hi <= self.dirty_lo:
            return None
        return self.dirty_lo, bytes(self.data[self.dirty_lo:self.dirty_hi])

    def __repr__(self) -> str:
        return f"<Buffer #{self.id} '{self.label}' {self.size}B>"


_PTR_TYPE = ir_ty.pointer(ir_ty.I8)


class MemorySpace:
    """Per-interpreter buffer allocator and memory-model selector.

    Owns buffer-id numbering: every interpreter counts its own buffers
    from 1, so ids (and the ``repr`` strings that reach traps and
    telemetry) are identical run to run regardless of what else the
    process executed before — the process-global counter the dict model
    originally used drifted across runs.
    """

    def __init__(self, model: Optional[str] = None):
        if model is None:
            model = _DEFAULT_MEMORY
        if model not in MEMORY_MODELS:
            raise ValueError(
                f"unknown memory model {model!r}; "
                f"expected one of {MEMORY_MODELS}")
        self.model = model
        self._buffer_cls = FlatBuffer if model == "flat" else Buffer
        self._next_id = 1

    def alloc(self, size: int, label: str = ""):
        buffer = self._buffer_cls(size, label, self._next_id)
        self._next_id += 1
        return buffer


@dataclass(frozen=True)
class Pointer:
    buffer: Optional[object]
    offset: int = 0

    def add(self, delta: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + delta)

    @property
    def is_null(self) -> bool:
        return self.buffer is None

    def __repr__(self) -> str:
        if self.is_null:
            return "<null>"
        return f"<ptr #{self.buffer.id}+{self.offset}>"


NULL = Pointer(None, 0)
