"""IR interpreter with an analytic performance model.

Executes repro IR directly.  Serves three roles:

1. *Correctness oracle* — every transformation (mem2reg, rotation,
   parallelization, decompile→recompile round trips) is validated by
   comparing program output before and after.
2. *Performance substrate* — stands in for the paper's 28-core Xeon:
   each dynamic instruction charges compute/memory cycles, and OpenMP
   runtime calls (``__kmpc_*``) are simulated with a fork/join time
   model (see :mod:`repro.runtime.machine`).
3. *Semantics reference* for the OpenMP runtime protocol emitted by the
   Polly-style parallelizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir import types as ir_ty
from ..ir.block import BasicBlock
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast,
                               CondBranch, DbgValue, FCmp, GetElementPtr,
                               ICmp, Instruction, Load, Phi, Ret, Select,
                               Store, Unreachable)
from ..ir.module import Function, Module
from ..ir.values import (Argument, ConstantFloat, ConstantInt,
                         ConstantPointerNull, GlobalVariable, UndefValue,
                         Value)
from .machine import (COMPUTE_COST, DEFAULT_COST, MATH_CALL_COST,
                      MEMORY_CYCLES_PER_ACCESS, CostAccumulator, MachineModel,
                      MeasuredStats)
from .memory import NULL, MemorySpace, Pointer, TrapError


class InterpreterError(Exception):
    pass


class StepLimitExceeded(InterpreterError):
    pass


#: The three execution engines.  ``trace`` fuses single-predecessor
#: block chains into generated-source superblock functions (see
#: :mod:`repro.runtime.trace`); ``compiled`` lowers each function once
#: to slot-indexed closures (see :mod:`repro.runtime.compile`);
#: ``walk`` is the original tree-walking dispatch, kept as the
#: semantics reference.
ENGINES = ("trace", "compiled", "walk")

_DEFAULT_ENGINE = "trace"


def default_engine() -> str:
    """The engine used when :class:`Interpreter` is given ``engine=None``."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@dataclass
class ExecutionResult:
    value: object
    output: List[str]
    cost: CostAccumulator
    wall_time: float
    #: Real (process-pool) parallel-region timing; all-zero unless the
    #: interpreter ran with ``measure=True``.
    measured: MeasuredStats = field(default_factory=MeasuredStats)

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


_ICMP_FN = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: (a % (1 << 64)) < (b % (1 << 64)),
    "ule": lambda a, b: (a % (1 << 64)) <= (b % (1 << 64)),
    "ugt": lambda a, b: (a % (1 << 64)) > (b % (1 << 64)),
    "uge": lambda a, b: (a % (1 << 64)) >= (b % (1 << 64)),
}

# LLVM float comparison semantics: ordered predicates are false when
# either operand is NaN, unordered predicates true.  Every NaN
# comparison in Python is false, so ordered forms are direct and each
# unordered form is the negation of its inverted ordered form.
_FCMP_FN = {
    "oeq": lambda a, b: a == b, "one": lambda a, b: a < b or a > b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: not (a < b or a > b),
    "une": lambda a, b: a != b,
    "ult": lambda a, b: not a >= b, "ule": lambda a, b: not a > b,
    "ugt": lambda a, b: not a <= b, "uge": lambda a, b: not a < b,
}

_MATH_FN: Dict[str, Callable] = {
    "exp": math.exp, "log": math.log, "sqrt": math.sqrt, "pow": math.pow,
    "fabs": abs, "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "floor": math.floor, "ceil": math.ceil, "fmax": max, "fmin": min,
}

ExternalHandler = Callable[["Interpreter", Call, List[object]], object]


class Interpreter:
    def __init__(self, module: Module, machine: Optional[MachineModel] = None,
                 max_steps: int = 200_000_000,
                 engine: Optional[str] = None,
                 memory: Optional[str] = None,
                 analysis_manager: Optional[object] = None,
                 measure: bool = False,
                 measure_workers: Optional[int] = None):
        self.module = module
        self.machine = machine or MachineModel()
        self.max_steps = max_steps
        if engine is None:
            engine = _DEFAULT_ENGINE
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self.memory = MemorySpace(memory)
        if measure and self.memory.model != "flat":
            raise ValueError(
                "measured parallel execution requires memory='flat' "
                "(per-process views are merged as byte ranges)")
        self.measure = measure
        self.measure_workers = measure_workers
        self.measured = MeasuredStats()
        self._pool = None            # lazy measured-parallel process pool
        self.analysis_manager = analysis_manager
        # Per-interpreter compiled-code memo: one cache-validation round
        # trip per function per interpreter, then a plain dict hit.
        self._code: Dict[int, object] = {}
        self.cost = CostAccumulator()
        self.wall_time = 0.0
        self.output: List[str] = []
        self.globals: Dict[GlobalVariable, Pointer] = {}
        self.externals: Dict[str, ExternalHandler] = {}
        self._fork_depth = 0
        self._current_tid = 0
        self._current_nthreads = 1
        self._install_default_externals()
        for var in module.globals.values():
            buffer = self.memory.alloc(ir_ty.sizeof(var.value_type), var.name)
            self.globals[var] = Pointer(buffer, 0)
        from .omp import install_omp_runtime
        install_omp_runtime(self)

    def close(self) -> None:
        """Release the measured-parallel process pool (if one started)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # External function registry ------------------------------------------------

    def register_external(self, name: str, handler: ExternalHandler) -> None:
        self.externals[name] = handler

    def _install_default_externals(self) -> None:
        for name, fn in _MATH_FN.items():
            def make(f):
                return lambda interp, call, args: float(f(*args))
            self.register_external(name, make(fn))
        self.register_external("malloc", self._malloc)
        self.register_external("calloc", self._calloc)
        self.register_external("free", self._free)
        self.register_external("print_double", self._print_double)
        self.register_external("print_int", self._print_int)
        self.register_external("printf", self._printf)

    def _malloc(self, interp, call, args):
        return Pointer(self.memory.alloc(int(args[0]), "malloc"), 0)

    def _calloc(self, interp, call, args):
        return Pointer(self.memory.alloc(int(args[0]) * int(args[1]),
                                         "calloc"), 0)

    def _free(self, interp, call, args):
        pointer: Pointer = args[0]
        if pointer.buffer is not None:
            pointer.buffer.freed = True
        return None

    def _print_double(self, interp, call, args):
        self.output.append(f"{args[0]:.6f}")
        return None

    def _print_int(self, interp, call, args):
        self.output.append(str(int(args[0])))
        return None

    def _printf(self, interp, call, args):
        self.output.append(" ".join(str(a) for a in args))
        return 0

    # Cost --------------------------------------------------------------------------

    def charge(self, opcode: str, callee: str = "") -> None:
        self.cost.charge(opcode, callee)
        if self.cost.dynamic_instructions > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} dynamic instructions")
        if self._fork_depth == 0:
            if opcode == "call" and callee in MATH_CALL_COST:
                self.wall_time += MATH_CALL_COST[callee]
            else:
                self.wall_time += COMPUTE_COST.get(opcode, DEFAULT_COST)
                if opcode in ("load", "store"):
                    self.wall_time += MEMORY_CYCLES_PER_ACCESS

    # Entry points ----------------------------------------------------------------

    def run(self, entry: str = "main",
            args: Sequence[object] = ()) -> ExecutionResult:
        function = self.module.get_function(entry)
        value = self.call_function(function, list(args))
        return ExecutionResult(value, list(self.output),
                               self.cost.snapshot(), self.wall_time,
                               self.measured.snapshot())

    def call_function(self, function: Function, args: List[object]) -> object:
        if function.is_declaration:
            raise InterpreterError(
                f"call to undefined function @{function.name}")
        if len(args) != len(function.arguments):
            raise InterpreterError(
                f"@{function.name} expects {len(function.arguments)} args, "
                f"got {len(args)}")
        if self.engine != "walk":
            code = self._code.get(id(function))
            if code is None:
                from .compile import code_for
                code = code_for(function, self.analysis_manager,
                                engine=self.engine)
                self._code[id(function)] = code
            return code.execute(self, args)
        return self._walk_function(function, args)

    def _walk_function(self, function: Function, args: List[object]) -> object:
        """The tree-walking engine (the reference semantics)."""
        frame: Dict[Value, object] = {}
        for formal, actual in zip(function.arguments, args):
            frame[formal] = actual

        block = function.entry
        prev: Optional[BasicBlock] = None
        while True:
            # Phis evaluate atomically against the incoming edge.
            phis = []
            index = 0
            instructions = block.instructions
            while index < len(instructions) and isinstance(
                    instructions[index], Phi):
                phi: Phi = instructions[index]
                incoming = phi.incoming_for(prev)
                if incoming is None:
                    raise InterpreterError(
                        f"phi {phi} has no incoming value from "
                        f"{prev.name if prev else '<entry>'}")
                phis.append((phi, self.value_of(frame, incoming)))
                self.charge("phi")
                index += 1
            for phi, value in phis:
                frame[phi] = value

            next_block: Optional[BasicBlock] = None
            for inst in instructions[index:]:
                result = self._execute(frame, inst)
                if isinstance(inst, Ret):
                    return result
                if isinstance(result, BasicBlock):
                    next_block = result
                    break
                if not inst.type.is_void:
                    frame[inst] = result
            if next_block is None:
                raise InterpreterError(
                    f"block {block.name} fell through without a terminator")
            prev, block = block, next_block

    # Values -------------------------------------------------------------------------

    def value_of(self, frame: Dict[Value, object], value: Value) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, ConstantPointerNull):
            return NULL
        if isinstance(value, UndefValue):
            if value.type.is_float:
                return 0.0
            if value.type.is_pointer:
                return NULL
            return 0
        if isinstance(value, GlobalVariable):
            return self.globals[value]
        if isinstance(value, Function):
            return value
        if value in frame:
            return frame[value]
        raise InterpreterError(f"use of undefined value {value}")

    # Instruction dispatch --------------------------------------------------------------

    def _execute(self, frame: Dict[Value, object], inst: Instruction):
        opcode = inst.opcode
        if isinstance(inst, DbgValue):
            self.charge("dbg.value")
            return None
        if isinstance(inst, BinaryOp):
            self.charge(opcode)
            return self._binop(inst, frame)
        if isinstance(inst, ICmp):
            self.charge("icmp")
            a = self.value_of(frame, inst.lhs)
            b = self.value_of(frame, inst.rhs)
            if isinstance(a, Pointer) or isinstance(b, Pointer):
                return 1 if self._pointer_compare(inst.predicate, a, b) else 0
            return 1 if _ICMP_FN[inst.predicate](a, b) else 0
        if isinstance(inst, FCmp):
            self.charge("fcmp")
            a = self.value_of(frame, inst.lhs)
            b = self.value_of(frame, inst.rhs)
            return 1 if _FCMP_FN[inst.predicate](a, b) else 0
        if isinstance(inst, Alloca):
            self.charge("alloca")
            buffer = self.memory.alloc(ir_ty.sizeof(inst.allocated_type),
                                       inst.name or "alloca")
            return Pointer(buffer, 0)
        if isinstance(inst, Load):
            self.charge("load")
            pointer: Pointer = self.value_of(frame, inst.pointer)
            if pointer.is_null:
                raise TrapError("load from null pointer")
            return pointer.buffer.load(pointer.offset, inst.type)
        if isinstance(inst, Store):
            self.charge("store")
            pointer = self.value_of(frame, inst.pointer)
            if pointer.is_null:
                raise TrapError("store to null pointer")
            pointer.buffer.store(pointer.offset,
                                 self.value_of(frame, inst.value),
                                 inst.value.type)
            return None
        if isinstance(inst, GetElementPtr):
            self.charge("getelementptr")
            return self._gep(inst, frame)
        if isinstance(inst, Cast):
            self.charge(opcode)
            return self._cast(inst, frame)
        if isinstance(inst, CondBranch):
            self.charge("br")
            condition = self.value_of(frame, inst.condition)
            return inst.if_true if condition else inst.if_false
        if isinstance(inst, Branch):
            self.charge("br")
            return inst.target
        if isinstance(inst, Ret):
            self.charge("ret")
            if inst.value is not None:
                return self.value_of(frame, inst.value)
            return None
        if isinstance(inst, Select):
            self.charge("select")
            condition = self.value_of(frame, inst.condition)
            return self.value_of(frame,
                                 inst.if_true if condition else inst.if_false)
        if isinstance(inst, Phi):
            raise InterpreterError("phi reached instruction dispatch")
        if isinstance(inst, Call):
            return self._call(inst, frame)
        if isinstance(inst, Unreachable):
            raise TrapError("executed 'unreachable'")
        raise InterpreterError(f"cannot interpret opcode {opcode!r}")

    def _binop(self, inst: BinaryOp, frame) -> object:
        a = self.value_of(frame, inst.lhs)
        b = self.value_of(frame, inst.rhs)
        op = inst.opcode
        if op.startswith("f"):
            if op == "fadd":
                return a + b
            if op == "fsub":
                return a - b
            if op == "fmul":
                return a * b
            if op == "fdiv":
                if b == 0.0:
                    return math.inf if a > 0 else (-math.inf if a < 0
                                                   else math.nan)
                return a / b
            if op == "frem":
                return math.fmod(a, b)
        vtype: ir_ty.IntType = inst.type
        if op == "add":
            return vtype.wrap(a + b)
        if op == "sub":
            return vtype.wrap(a - b)
        if op == "mul":
            return vtype.wrap(a * b)
        if op == "sdiv":
            if b == 0:
                raise TrapError("integer division by zero")
            return vtype.wrap(int(a / b))
        if op == "srem":
            if b == 0:
                raise TrapError("integer remainder by zero")
            return vtype.wrap(a - int(a / b) * b)
        if op in ("udiv", "urem"):
            if b == 0:
                raise TrapError("integer division by zero")
            ua, ub = a % (1 << vtype.bits), b % (1 << vtype.bits)
            return vtype.wrap(ua // ub if op == "udiv" else ua % ub)
        if op == "and":
            return vtype.wrap(a & b)
        if op == "or":
            return vtype.wrap(a | b)
        if op == "xor":
            return vtype.wrap(a ^ b)
        if op == "shl":
            return vtype.wrap(a << (b % vtype.bits))
        if op == "ashr":
            return vtype.wrap(a >> (b % vtype.bits))
        if op == "lshr":
            return vtype.wrap((a % (1 << vtype.bits)) >> (b % vtype.bits))
        raise InterpreterError(f"unknown binop {op}")

    def _pointer_compare(self, predicate: str, a, b) -> bool:
        return pointer_compare(predicate, a, b)

    def _gep(self, inst: GetElementPtr, frame) -> Pointer:
        pointer: Pointer = self.value_of(frame, inst.pointer)
        current = inst.pointer.type.pointee
        indices = [self.value_of(frame, i) for i in inst.indices]
        offset = pointer.offset + int(indices[0]) * ir_ty.sizeof(current)
        for idx in indices[1:]:
            current = ir_ty.element_type(current)
            offset += int(idx) * ir_ty.sizeof(current)
        return Pointer(pointer.buffer, offset)

    def _cast(self, inst: Cast, frame) -> object:
        value = self.value_of(frame, inst.value)
        op = inst.opcode
        if op == "sext":
            return value
        if op == "zext":
            source: ir_ty.IntType = inst.value.type
            return value % (1 << source.bits)
        if op == "trunc":
            return inst.type.wrap(int(value))
        if op == "sitofp":
            return float(value)
        if op == "fptosi":
            return inst.type.wrap(int(value))
        if op in ("bitcast", "inttoptr", "ptrtoint"):
            return value
        raise InterpreterError(f"unknown cast {op}")

    def _call(self, inst: Call, frame) -> object:
        callee = inst.callee
        args = [self.value_of(frame, a) for a in inst.args]
        name = getattr(callee, "name", "")
        self.charge("call", name)
        if isinstance(callee, Function) and not callee.is_declaration:
            return self.call_function(callee, args)
        if name in self.externals:
            return self.externals[name](self, inst, args)
        raise InterpreterError(f"call to unknown external '{name}'")


def pointer_compare(predicate: str, a, b) -> bool:
    """Compare pointers (or pointer/int mixes) by (buffer id, offset)."""
    def key(p):
        if isinstance(p, Pointer):
            return ((p.buffer.id if p.buffer else 0), p.offset)
        return (0, int(p))
    ka, kb = key(a), key(b)
    return {
        "eq": ka == kb, "ne": ka != kb,
        "slt": ka < kb, "sle": ka <= kb, "sgt": ka > kb, "sge": ka >= kb,
        "ult": ka < kb, "ule": ka <= kb, "ugt": ka > kb, "uge": ka >= kb,
    }[predicate]


def run_module(module: Module, entry: str = "main",
               args: Sequence[object] = (),
               machine: Optional[MachineModel] = None,
               max_steps: int = 200_000_000,
               engine: Optional[str] = None,
               memory: Optional[str] = None) -> ExecutionResult:
    """Convenience wrapper: interpret ``entry`` in a fresh interpreter."""
    return Interpreter(module, machine, max_steps, engine=engine,
                       memory=memory).run(entry, args)
