"""Simulated LLVM/OpenMP runtime (the ``__kmpc_*`` entry points).

The Polly-style parallelizer lowers parallel loops to the same runtime
protocol the LLVM OpenMP runtime (libomp) uses; this module implements
that protocol inside the interpreter:

* ``__kmpc_fork_call(microtask, shared...)`` — runs the outlined
  *microtask* once per simulated thread.  The real API passes an ident
  struct and variadic shareds; we pass the outlined function first and
  the shared values directly (documented substitution — the *pattern*
  SPLENDID matches on is identical: fork call → outlined region).
* ``__kmpc_for_static_init_8(tid, nthreads, schedtype, plb, pub,
  pstride, incr, chunk)`` — rewrites the lb/ub slots with this thread's
  chunk of the iteration space (inclusive upper bound, like libomp).
* ``__kmpc_for_static_fini(tid)`` — end of worksharing region.
* ``__kmpc_barrier(tid)`` — charges barrier latency.

Timing: each thread's work is interpreted serially while the fork
handler records per-thread compute and total memory cycles; the modeled
wall time for the region is ``max(compute) + memory/mem_parallelism +
fork overhead`` (see :class:`repro.runtime.machine.MachineModel`).
"""

from __future__ import annotations

from typing import List

from ..ir.module import Function
from .memory import Pointer, TrapError

# libomp schedule kinds (subset).
KMP_SCH_STATIC_CHUNKED = 33
KMP_SCH_STATIC = 34
KMP_SCH_DYNAMIC_CHUNKED = 35

#: Modeled cycles per dynamic-schedule chunk request.
DYNAMIC_DISPATCH_COST = 25.0


def install_omp_runtime(interp) -> None:
    interp.register_external("__kmpc_fork_call", _fork_call)
    interp.register_external("__kmpc_for_static_init_8", _for_static_init_8)
    interp.register_external("__kmpc_for_static_fini", _for_static_fini)
    interp.register_external("__kmpc_barrier", _barrier)
    interp.register_external("omp_get_thread_num", _get_thread_num)
    interp.register_external("omp_get_num_threads", _get_num_threads)


def _fork_call(interp, call, args):
    microtask = args[0]
    if not isinstance(microtask, Function):
        raise TrapError("__kmpc_fork_call: first argument must be a function")
    shared = list(args[1:])
    nthreads = interp.machine.num_threads

    if interp.measure:
        # Measured path: run the region on a real process pool.  The
        # workers return the same per-thread cost deltas the simulated
        # loop below would have produced, so the modeled charge is
        # identical; what's new is MeasuredStats (real wall seconds,
        # process count).  Undispatchable regions fall back to the
        # simulated loop and are counted.
        from .parallel import try_measured_region
        region = try_measured_region(interp, microtask, shared, nthreads)
        if region is not None:
            thread_compute, memory_total = region
            if interp._fork_depth == 0:
                interp.wall_time += interp.machine.parallel_region_time(
                    thread_compute, memory_total)
            return None
        interp.measured.fallbacks += 1

    interp._fork_depth += 1
    interp._current_nthreads = nthreads
    thread_compute: List[float] = []
    memory_total = 0.0
    try:
        for tid in range(nthreads):
            interp._current_tid = tid
            snapshot = interp.cost.snapshot()
            interp.call_function(microtask, [tid, nthreads, *shared])
            delta = interp.cost.delta_since(snapshot)
            thread_compute.append(delta.compute)
            memory_total += delta.memory
    finally:
        interp._fork_depth -= 1
        interp._current_tid = 0
    if interp._fork_depth == 0:
        interp.wall_time += interp.machine.parallel_region_time(
            thread_compute, memory_total)
    return None


def _for_static_init_8(interp, call, args):
    tid, nthreads, schedtype = int(args[0]), int(args[1]), int(args[2])
    plb: Pointer = args[3]
    pub: Pointer = args[4]
    pstride: Pointer = args[5]
    incr = int(args[6])
    chunk = int(args[7])
    from ..ir import types as ir_ty

    lb = int(plb.buffer.load(plb.offset, ir_ty.I64))
    ub = int(pub.buffer.load(pub.offset, ir_ty.I64))
    if incr == 0:
        raise TrapError("__kmpc_for_static_init_8: zero increment")

    # Trip count with inclusive bounds.
    if incr > 0:
        total = max(0, (ub - lb) // incr + 1)
    else:
        total = max(0, (lb - ub) // (-incr) + 1)

    # Every schedule kind is modeled as one contiguous block per thread.
    # (Real libomp interleaves chunked/dynamic schedules via strides and
    # dispatch loops; with threads emulated sequentially, any exact
    # partition of the iteration space is observationally equivalent, and
    # the microtasks this repo generates iterate [my_lb, my_ub] directly.
    # Dynamic scheduling differs only in its modeled cost: each chunk a
    # thread would have requested charges a dispatch fee below.)
    per = (total + nthreads - 1) // nthreads if total else 0
    my_lb = lb + tid * per * incr
    my_ub = my_lb + (per - 1) * incr
    stride = total * incr if total else incr
    if incr > 0:
        my_ub = min(my_ub, ub)
    else:
        my_ub = max(my_ub, ub)
    if tid * per >= total:
        # No work for this thread: empty range.
        my_lb, my_ub = lb + total * incr, lb + total * incr - incr

    plb.buffer.store(plb.offset, my_lb, ir_ty.I64)
    pub.buffer.store(pub.offset, my_ub, ir_ty.I64)
    pstride.buffer.store(pstride.offset, stride, ir_ty.I64)

    if schedtype == KMP_SCH_DYNAMIC_CHUNKED:
        # Dynamic dispatch cost: one queue round-trip per chunk the
        # thread would have pulled.  Charged as this thread's compute so
        # it flows into the fork handler's max-over-threads timing.
        my_trips = max(0, per if tid * per < total else 0)
        chunk_size = max(1, chunk)
        dispatches = (my_trips + chunk_size - 1) // chunk_size
        interp.cost.compute += dispatches * DYNAMIC_DISPATCH_COST
    return None


def _for_static_fini(interp, call, args):
    return None


def _barrier(interp, call, args):
    if interp._fork_depth == 0:
        interp.wall_time += interp.machine.barrier_overhead
    return None


def _get_thread_num(interp, call, args):
    return getattr(interp, "_current_tid", 0)


def _get_num_threads(interp, call, args):
    if interp._fork_depth > 0:
        return getattr(interp, "_current_nthreads", 1)
    return 1
