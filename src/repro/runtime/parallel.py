"""Measured parallel regions: a real process pool for fork/join.

The analytic :class:`~repro.runtime.machine.MachineModel` remains the
source of truth for *modeled* wall time; this module adds the paper's
missing empirical leg.  When an interpreter runs with ``measure=True``,
``__kmpc_fork_call`` hands each top-level parallel region to a
persistent pool of worker processes (:class:`MeasuredPool`):

* each worker holds its own interpreter over the same module (the IR
  is shipped as text once and parsed on first use);
* the parent ships the bytes of every global flat buffer plus any
  buffer a shared argument points into, and a spec for the shared
  argument list (scalars by value, pointers as buffer-key/offset);
* the simulated thread ids are partitioned contiguously across the
  workers; each worker interprets its tids sequentially at fork depth
  one, exactly like the simulated path, and returns per-tid cost
  deltas, appended output, and the exact byte runs its execution
  changed (write-watermark narrowed, then byte-diffed against the
  entry snapshot);
* the parent merges byte runs in tid order — for the race-free
  regions the parallelizer emits the runs are disjoint, so the merged
  state matches sequential simulation bit for bit — then merges cost
  and output, and charges the *modeled* region time from the merged
  per-thread costs so measured runs stay cost-identical to simulated
  runs.

Anything that cannot round-trip this protocol (nested forks, function
or laundered-pointer arguments, buffers holding pointer objects, a
worker crash) raises :class:`RegionUnsupported` / :class:`RegionFailed`
and the caller falls back to the simulated path, counting the region
in ``MeasuredStats.fallbacks``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional, Tuple

from .memory import NULL, FlatBuffer, Pointer

#: Hard floor for terminate->kill escalation when reaping a worker
#: (mirrors the batch scheduler's pool).
_REAP_GRACE = 2.0

#: Exact-diff scan granularity: chunks whose bytes are unchanged are
#: skipped wholesale; differing chunks are refined to exact byte runs.
_DIFF_CHUNK = 512


class RegionUnsupported(Exception):
    """The region's arguments or memory cannot be shipped to the pool."""


class RegionFailed(Exception):
    """The pool accepted the region but could not complete it."""


def _diff_runs(old: bytes, new, lo: int, hi: int) -> List[Tuple[int, bytes]]:
    """Exact changed-byte runs of ``new`` vs ``old`` within [lo, hi).

    Byte-exact so that runs from different workers writing disjoint
    ranges never overlap, keeping the merge order-independent.
    """
    runs: List[Tuple[int, bytes]] = []
    for base in range(lo, hi, _DIFF_CHUNK):
        end = min(base + _DIFF_CHUNK, hi)
        if old[base:end] == new[base:end]:
            continue
        index = base
        while index < end:
            if old[index] == new[index]:
                index += 1
                continue
            start = index
            while index < end and old[index] != new[index]:
                index += 1
            runs.append((start, bytes(new[start:index])))
    return runs


# Worker side -----------------------------------------------------------------


def _run_region(interp, spec: dict) -> dict:
    """Execute this worker's share of one parallel region."""
    function = interp.module.get_function(spec["microtask"])
    global_buffers = {var.name: pointer.buffer
                      for var, pointer in interp.globals.items()}

    local: Dict[str, FlatBuffer] = {}
    snapshots: Dict[str, bytes] = {}
    for key, data in spec["buffers"].items():
        if key.startswith("g:"):
            buffer = global_buffers[key[2:]]
        else:
            buffer = interp.memory.alloc(len(data), key)
        buffer.data[:] = data
        buffer.ptrs.clear()
        buffer.freed = False
        buffer.track = True
        buffer.reset_dirty()
        local[key] = buffer
        snapshots[key] = bytes(data)

    shared = []
    for kind, a, b in spec["shared"]:
        if kind == "v":
            shared.append(a)
        elif kind == "n":
            shared.append(NULL)
        else:
            shared.append(Pointer(local[a], b))

    # The budget is shipped as *remaining* steps: this worker's own
    # accumulator has consumed steps on previous regions.
    interp.max_steps = interp.cost.dynamic_instructions + spec["step_budget"]
    nthreads = spec["nthreads"]
    output_mark = len(interp.output)
    region_snapshot = interp.cost.snapshot()
    thread_compute: List[float] = []
    thread_memory: List[float] = []
    interp._fork_depth += 1
    interp._current_nthreads = nthreads
    try:
        for tid in spec["tids"]:
            interp._current_tid = tid
            snapshot = interp.cost.snapshot()
            interp.call_function(function, [tid, nthreads, *shared])
            delta = interp.cost.delta_since(snapshot)
            thread_compute.append(delta.compute)
            thread_memory.append(delta.memory)
    finally:
        interp._fork_depth -= 1
        interp._current_tid = 0

    dirty: Dict[str, List[Tuple[int, bytes]]] = {}
    for key, buffer in local.items():
        buffer.track = False
        if buffer.ptrs:
            raise RegionUnsupported(
                "microtask stored a pointer into a shared buffer")
        if buffer.dirty_hi > buffer.dirty_lo:
            runs = _diff_runs(snapshots[key], buffer.data,
                              buffer.dirty_lo, buffer.dirty_hi)
            if runs:
                dirty[key] = runs

    total = interp.cost.delta_since(region_snapshot)
    return {
        "thread_compute": thread_compute,
        "thread_memory": thread_memory,
        "cost": (total.compute, total.memory, total.dynamic_instructions,
                 total.opcode_counts),
        "output": interp.output[output_mark:],
        "dirty": dirty,
    }


def _worker_main(conn) -> None:
    """Pool worker loop: parse the module once, then serve regions."""
    interp = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "module":
                from ..ir.parser import parse_ir
                from .interp import Interpreter
                module = parse_ir(message[1])
                interp = Interpreter(module, memory="flat")
                conn.send(("ok", None))
            elif kind == "region":
                try:
                    conn.send(("ok", _run_region(interp, message[1])))
                except Exception as exc:  # noqa: BLE001 — shipped to parent
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass


# Parent side -----------------------------------------------------------------


class _PoolWorker:
    """One pool slot: a process, its duplex pipe, its loaded module."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child_conn,),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.module_key: Optional[int] = None

    def reap(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(_REAP_GRACE)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(_REAP_GRACE)

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(0.5)
        self.reap()


class MeasuredPool:
    """Persistent worker-process pool for measured parallel regions.

    ``processes=None`` sizes the pool to ``cpu_count`` but never below
    two, so the mechanism (real fork, real merge) is exercised even on
    a single-core host — measured *speedup* is only meaningful with
    two or more cores, which is why the benchmarks gate on that.
    """

    def __init__(self, processes: Optional[int] = None):
        if processes is None:
            processes = max(2, mp.cpu_count())
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        start_method = ("fork" if "fork" in mp.get_all_start_methods()
                        else None)
        self._ctx = mp.get_context(start_method)
        self._workers: List[_PoolWorker] = []

    def close(self) -> None:
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def __enter__(self) -> "MeasuredPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Dispatch -----------------------------------------------------------------

    def run_region(self, interp, microtask, shared, nthreads: int):
        """Run one fork region on the pool; merge effects into ``interp``.

        Returns ``(thread_compute, memory_total)`` for the machine
        model.  Raises :class:`RegionUnsupported` before any side
        effect when the region cannot be shipped, :class:`RegionFailed`
        (also side-effect free: nothing merges unless every worker
        succeeded) when the pool breaks mid-flight.
        """
        buffers: Dict[str, bytes] = {}
        key_of: Dict[int, str] = {}
        parent_of: Dict[str, FlatBuffer] = {}
        global_names = {pointer.buffer.id: var.name
                        for var, pointer in interp.globals.items()}

        def ship(buffer) -> str:
            key = key_of.get(buffer.id)
            if key is not None:
                return key
            if not isinstance(buffer, FlatBuffer):
                raise RegionUnsupported("measured regions require the "
                                        "flat memory model")
            if buffer.freed:
                raise RegionUnsupported("shared buffer was freed")
            if buffer.ptrs:
                raise RegionUnsupported("shared buffer holds pointer "
                                        "objects")
            key = (f"g:{global_names[buffer.id]}"
                   if buffer.id in global_names else f"b:{buffer.id}")
            key_of[buffer.id] = key
            buffers[key] = bytes(buffer.data)
            parent_of[key] = buffer
            return key

        for pointer in interp.globals.values():
            ship(pointer.buffer)
        shared_spec = []
        for value in shared:
            if isinstance(value, Pointer):
                if value.buffer is None:
                    shared_spec.append(("n", 0, 0))
                else:
                    shared_spec.append(("p", ship(value.buffer),
                                        value.offset))
            elif isinstance(value, (bool, int, float)):
                shared_spec.append(("v", value, 0))
            else:
                raise RegionUnsupported(
                    f"cannot ship shared argument {value!r}")

        count = min(self.processes, max(1, nthreads))
        per = (nthreads + count - 1) // count
        assignments = [list(range(low, min(low + per, nthreads)))
                       for low in range(0, nthreads, per)]

        workers = self._lease(interp, len(assignments))
        spec = {
            "microtask": microtask.name,
            "nthreads": nthreads,
            "buffers": buffers,
            "shared": shared_spec,
            "step_budget": max(0, interp.max_steps
                               - interp.cost.dynamic_instructions),
        }
        started = time.perf_counter()
        replies = []
        try:
            for worker, tids in zip(workers, assignments):
                worker.conn.send(("region", {**spec, "tids": tids}))
            for worker in workers:
                kind, body = worker.conn.recv()
                if kind != "ok":
                    raise RegionFailed(body)
                replies.append(body)
        except (EOFError, BrokenPipeError, OSError) as exc:
            self.close()     # a broken pipe poisons the whole pool
            raise RegionFailed(f"measured-pool worker died: {exc}") from exc
        elapsed = time.perf_counter() - started

        # All workers succeeded: merge memory (disjoint byte runs, tid
        # order), output, and cost into the parent.
        thread_compute: List[float] = []
        memory_total = 0.0
        cost = interp.cost
        for body in replies:
            thread_compute.extend(body["thread_compute"])
            memory_total += sum(body["thread_memory"])
            compute, memory, steps, counts = body["cost"]
            cost.compute += compute
            cost.memory += memory
            cost.dynamic_instructions += steps
            for opcode, n in counts.items():
                cost.opcode_counts[opcode] = \
                    cost.opcode_counts.get(opcode, 0) + n
            interp.output.extend(body["output"])
            for key, runs in body["dirty"].items():
                data = parent_of[key].data
                for offset, payload in runs:
                    data[offset:offset + len(payload)] = payload

        interp.measured.regions += 1
        interp.measured.seconds += elapsed
        interp.measured.processes = max(interp.measured.processes,
                                        len(workers))
        if cost.dynamic_instructions > interp.max_steps:
            from .interp import StepLimitExceeded
            raise StepLimitExceeded(
                f"exceeded {interp.max_steps} dynamic instructions")
        return thread_compute, memory_total

    def _lease(self, interp, count: int) -> List[_PoolWorker]:
        """Spawn/prime ``count`` workers holding ``interp``'s module."""
        while len(self._workers) < count:
            self._workers.append(_PoolWorker(self._ctx))
        workers = self._workers[:count]
        module_key = id(interp.module)
        stale = [w for w in workers if w.module_key != module_key]
        if stale:
            from ..ir.printer import print_module
            text = print_module(interp.module)
            try:
                for worker in stale:
                    worker.conn.send(("module", text))
                for worker in stale:
                    kind, body = worker.conn.recv()
                    if kind != "ok":
                        raise RegionFailed(body)
                    worker.module_key = module_key
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.close()
                raise RegionFailed(
                    f"measured-pool worker died while loading module: "
                    f"{exc}") from exc
        return workers


def try_measured_region(interp, microtask, shared,
                        nthreads: int) -> Optional[Tuple[List[float], float]]:
    """Dispatch one fork region to ``interp``'s pool if possible.

    Returns ``(thread_compute, memory_total)`` on success — the caller
    charges the modeled region time from these, exactly as the
    simulated path would — or None when the region must fall back to
    simulation (nested fork, unshippable state, pool failure).  On
    None, no side effect has been applied to ``interp``.
    """
    if interp._fork_depth != 0:
        return None
    pool = interp._pool
    if pool is None:
        pool = interp._pool = MeasuredPool(interp.measure_workers)
    try:
        return pool.run_region(interp, microtask, shared, nthreads)
    except (RegionUnsupported, RegionFailed):
        return None
