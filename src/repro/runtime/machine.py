"""Machine and cost model (substitute for the paper's 28-core Xeon).

The paper measures wall-clock speedups of recompiled decompiler output
on a 2x14-core E5-2697v3.  This repo replaces the hardware with an
analytic model layered on the IR interpreter:

* every dynamic instruction contributes compute cycles (table below);
* loads/stores additionally contribute memory cycles;
* a parallel region's time is ``max over threads of compute time`` plus
  the region's total memory cycles divided by the machine's effective
  memory parallelism, plus a fork/join overhead;
* compiler back ends (clang/gcc) are modeled as small deterministic
  per-kernel scalar-efficiency factors.

The model preserves the *shape* of Figure 6/9 — memory-bound kernels
scale to single digits, compute-dense ones into the twenties, geomean
around 10x on 28 threads — without pretending to reproduce GHz numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict

# Compute cost (cycles) per opcode; anything missing costs DEFAULT_COST.
COMPUTE_COST: Dict[str, float] = {
    "add": 1, "sub": 1, "mul": 3, "sdiv": 20, "srem": 20,
    "udiv": 20, "urem": 20,
    "and": 1, "or": 1, "xor": 1, "shl": 1, "ashr": 1, "lshr": 1,
    "fadd": 2, "fsub": 2, "fmul": 3, "fdiv": 15, "frem": 20,
    "icmp": 1, "fcmp": 2,
    "br": 1, "ret": 1, "phi": 0, "select": 1,
    "sext": 0.5, "zext": 0.5, "trunc": 0.5, "sitofp": 3, "fptosi": 3,
    "bitcast": 0, "ptrtoint": 0, "inttoptr": 0,
    "getelementptr": 1, "alloca": 1,
    "load": 0, "store": 0,      # memory traffic accounted separately
    "call": 4,
    "dbg.value": 0,
    "unreachable": 0,
}
DEFAULT_COST = 1.0
MATH_CALL_COST = {"exp": 30, "log": 30, "sqrt": 15, "pow": 45, "fabs": 2,
                  "sin": 30, "cos": 30, "tan": 35, "floor": 3, "ceil": 3,
                  "fmax": 2, "fmin": 2}
MEMORY_CYCLES_PER_ACCESS = 4.0


@dataclass
class MachineModel:
    """Parameters of the simulated shared-memory machine."""

    num_threads: int = 28
    # Overheads are scaled to the miniaturized PolyBench datasets this
    # repo interprets (paper-size arrays would take hours in a Python
    # interpreter); the ratio overhead/kernel-work is what matters for
    # the speedup *shape*, and these values put it in the same regime as
    # the paper's 28-core runs on full-size inputs.
    fork_overhead: float = 500.0           # cycles per parallel region launch
    barrier_overhead: float = 100.0        # implicit barrier at omp-for end
    memory_parallelism: float = 14.0       # effective concurrent mem channels
    name: str = "sim-xeon-2x14"

    def parallel_region_time(self, compute_per_thread, memory_total: float,
                             with_barrier: bool = True) -> float:
        """Cycles consumed by one fork/join region.

        The achievable memory-level parallelism is capped by the number
        of threads actually issuing requests: one thread cannot saturate
        fourteen channels, so a single-thread region pays (almost) the
        sequential memory time plus the fork overhead.
        """
        busiest = max(compute_per_thread) if compute_per_thread else 0.0
        channels = min(float(self.num_threads), self.memory_parallelism)
        bandwidth_bound = memory_total / max(channels, 1.0)
        time = busiest + bandwidth_bound + self.fork_overhead
        if with_barrier:
            time += self.barrier_overhead
        return time


@dataclass
class CostAccumulator:
    """Accumulates compute and memory cycles during interpretation.

    ``opcode_counts`` breaks ``dynamic_instructions`` down per opcode;
    both execution engines (the tree walker and the closure-compiled
    engine) maintain it, which is what the differential parity tests
    compare.
    """

    compute: float = 0.0
    memory: float = 0.0
    dynamic_instructions: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, opcode: str, callee: str = "") -> None:
        self.dynamic_instructions += 1
        counts = self.opcode_counts
        counts[opcode] = counts.get(opcode, 0) + 1
        if opcode == "call" and callee in MATH_CALL_COST:
            self.compute += MATH_CALL_COST[callee]
            return
        self.compute += COMPUTE_COST.get(opcode, DEFAULT_COST)
        if opcode in ("load", "store"):
            self.memory += MEMORY_CYCLES_PER_ACCESS

    @property
    def sequential_time(self) -> float:
        return self.compute + self.memory

    def snapshot(self) -> "CostAccumulator":
        return CostAccumulator(self.compute, self.memory,
                               self.dynamic_instructions,
                               dict(self.opcode_counts))

    def delta_since(self, snap: "CostAccumulator") -> "CostAccumulator":
        counts: Dict[str, int] = {}
        for opcode, count in self.opcode_counts.items():
            delta = count - snap.opcode_counts.get(opcode, 0)
            if delta:
                counts[opcode] = delta
        return CostAccumulator(self.compute - snap.compute,
                               self.memory - snap.memory,
                               self.dynamic_instructions
                               - snap.dynamic_instructions,
                               counts)


@dataclass
class MeasuredStats:
    """Real (wall-clock) statistics for measured parallel execution.

    The analytic :class:`MachineModel` stays the source of truth for the
    *modeled* numbers; when the interpreter runs with ``measure=True``
    the ``__kmpc_fork_call`` microtasks additionally execute on a real
    process pool and this record accumulates what actually happened, so
    measured wall time can be reported next to modeled wall time.
    ``fallbacks`` counts regions that could not be dispatched to the
    pool (nested forks, unsupported argument kinds) and ran in the
    simulated path only.
    """

    regions: int = 0         # parallel regions dispatched to the pool
    seconds: float = 0.0     # summed real wall time of those regions
    processes: int = 0       # max worker processes used by any region
    fallbacks: int = 0       # regions that fell back to simulation

    def snapshot(self) -> "MeasuredStats":
        return MeasuredStats(self.regions, self.seconds,
                             self.processes, self.fallbacks)


def compiler_factor(compiler: str, kernel: str) -> float:
    """Deterministic per-(compiler, kernel) scalar-efficiency factor.

    Substitutes for real back-end differences between clang and gcc in
    Figure 6: factors are drawn from a hash in [0.92, 1.08], so neither
    compiler systematically wins but individual kernels differ (e.g. the
    paper notes GCC beats Clang on mvt).
    """
    if compiler in ("polly", "reference"):
        return 1.0
    digest = hashlib.sha256(f"{compiler}:{kernel}".encode()).digest()
    fraction = digest[0] / 255.0
    return 0.92 + 0.16 * fraction
