"""Superblock/trace compilation: straight-line regions to Python source.

The closure engine (:mod:`repro.runtime.compile`) already removes the
walker's per-instruction dispatch, but it still pays one Python call
per instruction closure plus a ``frame[i] if i >= 0 else const`` fetch
per operand.  This module removes that layer too: it fuses each
maximal straight-line region of a function — a *trace* — into one
generated-source Python function compiled with :func:`compile`, so a
hot block executes as plain bytecode over the flat ``frame`` list with
operand slots and constants spliced directly into the text.

Trace discovery walks the block structure: a trace starts at any block
not claimed by another trace and extends through its terminator while
the followed successor has exactly one predecessor (and is not the
entry).  Unconditional branches fuse unconditionally; a conditional
branch turns into a *side exit* (``if not cond: return ...``) and the
trace continues into its single-predecessor successor, preferring — via
the ``loops``/``induction`` analyses (through the AnalysisManager when
one drives execution, a locally built :class:`LoopInfo` otherwise) —
the successor that stays inside the current loop, so loop bodies fuse
along the back-edge path instead of escaping through an exit edge.

Cost accounting is *per block segment*: entering a segment performs one
pre-aggregated accumulator update — identical floats to the closure
engine's per-block aggregate, which in turn is bit-exact against the
walker's per-instruction charging because every cost-table entry is a
multiple of 0.5 (exact in float addition far below 2**52).  The step
limit is checked per segment, so a :class:`StepLimitExceeded` raise
lands within one block of both other engines.  Phi edges interior to a
trace have a unique predecessor and become tuple parallel-copy
assignments in the source; the trace head's phis stay data-driven
(keyed by the dynamic predecessor index, exactly like the closure
engine).  Anything without an inline template — calls, odd-width
memory, rare binops — executes through the closure engine's compiled
closure for that instruction, so semantics never fork.

Memory accesses emit the width-specialized accessors
(``load_f64``/``store_i32``/…) that both memory models implement, which
is where the flat model's ``struct``-packed storage pays off: a load in
a trace is one method call on a :class:`FlatBuffer`, not a generic
``sizeof``/dispatch path.

Traces are cached in the same token-validated :class:`CodeCache` as
closure code (keyed by engine) and registered as the ``trace-code``
function analysis, mirroring ``compiled-code``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.manager import (INDUCTION, LOOPS, get_loop_info,
                                register_function_analysis)
from ..ir import types as ir_ty
from ..ir.instructions import (Alloca, BinaryOp, Branch, Cast, CondBranch,
                               DbgValue, FCmp, GetElementPtr, ICmp, Load,
                               Phi, Ret, Select, Store, Unreachable)
from ..ir.module import Function
from .compile import _COMPILERS, _CODE_CACHE, _BlockCost, _FunctionLowering
from .interp import InterpreterError, StepLimitExceeded, pointer_compare
from .memory import NULL, Pointer, TrapError

#: AnalysisManager name of the trace-code function analysis.
TRACE_CODE = "trace-code"

_U64 = 1 << 64

_BINOP_SYM = {"fadd": "+", "fsub": "-", "fmul": "*",
              "add": "+", "sub": "-", "mul": "*"}
_ICMP_SYM = {"eq": "==", "ne": "!=",
             "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_UCMP_SYM = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}
# LLVM fcmp → (python operator template); mirrors interp._FCMP_FN.
_FCMP_TMPL = {
    "oeq": "1 if {a} == {b} else 0",
    "une": "1 if {a} != {b} else 0",
    "olt": "1 if {a} < {b} else 0",
    "ole": "1 if {a} <= {b} else 0",
    "ogt": "1 if {a} > {b} else 0",
    "oge": "1 if {a} >= {b} else 0",
    "one": "1 if {a} < {b} or {a} > {b} else 0",
    "ueq": "0 if {a} < {b} or {a} > {b} else 1",
    "ult": "0 if {a} >= {b} else 1",
    "ule": "0 if {a} > {b} else 1",
    "ugt": "0 if {a} <= {b} else 1",
    "uge": "0 if {a} < {b} else 1",
}


def _module_launders_pointers(function: Function) -> bool:
    """True if any function in the module can put a Pointer in an
    int-typed value (``ptrtoint``/``inttoptr``).  When false, integer
    compares in generated source skip the runtime Pointer class check
    the walker performs."""
    module = function.parent
    if module is None:
        return True  # detached function: stay conservative
    for fn in module.defined_functions():
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, Cast) and inst.opcode in ("ptrtoint",
                                                              "inttoptr"):
                    return True
    return False


def _accessor(vtype, kind: str) -> Optional[str]:
    """Width-specialized buffer method name for ``vtype``, or None."""
    if vtype.is_float:
        return f"{kind}_f64"
    if vtype.is_pointer:
        return f"{kind}_ptr"
    if vtype.is_integer:
        return {64: f"{kind}_i64", 32: f"{kind}_i32",
                8: f"{kind}_i8", 1: f"{kind}_i1"}.get(vtype.bits)
    return None


class _TraceEmitter:
    """Builds one trace's Python source and exec namespace."""

    def __init__(self, lowering: _FunctionLowering, laundered: bool,
                 chain_ids: Optional[set] = None):
        self.lowering = lowering
        self.laundered = laundered
        self.chain_ids = chain_ids or set()
        self.lines: List[str] = []
        self.env: Dict[str, object] = {}
        # GEPs consumed only by loads/stores inside this chain skip the
        # Pointer allocation: id(gep) -> (base pointer expr, offset temp).
        self.inline_geps: Dict[int, Tuple[str, str]] = {}
        self.uses_closures = False
        self._n = 0

    # Text helpers ----------------------------------------------------------

    def bind(self, obj, prefix: str = "_k") -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.env[name] = obj
        return name

    def const_expr(self, const) -> str:
        if isinstance(const, float):
            # repr round-trips finite floats; inf/nan are not literals.
            if const == const and const not in (float("inf"), float("-inf")):
                return repr(const)
            return self.bind(const)
        if isinstance(const, int):
            return repr(const)
        if isinstance(const, Pointer) and const.buffer is None:
            return "NULL"
        return self.bind(const)

    def ref(self, value) -> str:
        slot, const = self.lowering.operand(value)
        if slot >= 0:
            return f"frame[{slot}]"
        return self.const_expr(const)

    def out(self, inst) -> str:
        return f"frame[{self.lowering.slots[id(inst)]}]"

    # Instruction emission --------------------------------------------------

    def emit(self, inst, cost: _BlockCost, sink: List[str]) -> None:
        """Append source lines executing ``inst`` (or a closure call)."""
        if isinstance(inst, DbgValue):
            cost.add("dbg.value")
            return
        if isinstance(inst, BinaryOp) and self._emit_binop(inst, cost, sink):
            return
        if isinstance(inst, ICmp):
            self._emit_icmp(inst, cost, sink)
            return
        if isinstance(inst, FCmp):
            cost.add("fcmp")
            a, b = self.ref(inst.lhs), self.ref(inst.rhs)
            sink.append(f"    {self.out(inst)} = "
                        + _FCMP_TMPL[inst.predicate].format(a=a, b=b))
            return
        if isinstance(inst, Load):
            self._emit_load(inst, cost, sink)
            return
        if isinstance(inst, Store):
            self._emit_store(inst, cost, sink)
            return
        if isinstance(inst, GetElementPtr):
            self._emit_gep(inst, cost, sink)
            return
        if isinstance(inst, Cast) and self._emit_cast(inst, cost, sink):
            return
        if isinstance(inst, Select):
            cost.add("select")
            c = self.ref(inst.condition)
            t = self.ref(inst.if_true)
            f = self.ref(inst.if_false)
            sink.append(f"    {self.out(inst)} = ({t}) if ({c}) else ({f})")
            return
        if isinstance(inst, Alloca):
            cost.add("alloca")
            size = ir_ty.sizeof(inst.allocated_type)
            label = inst.name or "alloca"
            sink.append(f"    {self.out(inst)} = Pointer("
                        f"interp.memory.alloc({size}, {label!r}), 0)")
            return
        # Calls, odd binops, anything else: the closure engine's
        # per-instruction closure (it also does its own cost.add).
        self.uses_closures = True
        op = self.lowering._compile_instruction(inst, cost)
        if op is not None:
            sink.append(f"    {self.bind(op, '_op')}(interp, frame)")

    def _emit_binop(self, inst: BinaryOp, cost, sink) -> bool:
        opcode = inst.opcode
        if opcode in ("fadd", "fsub", "fmul"):
            cost.add(opcode)
            sink.append(f"    {self.out(inst)} = {self.ref(inst.lhs)} "
                        f"{_BINOP_SYM[opcode]} {self.ref(inst.rhs)}")
            return True
        if opcode == "fdiv":
            slot, const = self.lowering.operand(inst.rhs)
            if slot < 0 and isinstance(const, float) and const != 0.0:
                cost.add(opcode)
                sink.append(f"    {self.out(inst)} = {self.ref(inst.lhs)} "
                            f"/ {self.const_expr(const)}")
                return True
            return False
        if opcode in ("add", "sub", "mul"):
            cost.add(opcode)
            vtype = inst.type
            mask, top = (1 << vtype.bits) - 1, 1 << vtype.bits
            sink.append(f"    _r = ({self.ref(inst.lhs)} "
                        f"{_BINOP_SYM[opcode]} {self.ref(inst.rhs)}) & {mask}")
            sink.append(f"    {self.out(inst)} = "
                        f"_r - {top} if _r > {vtype.max_value} else _r")
            return True
        if opcode in ("sdiv", "srem"):
            slot, const = self.lowering.operand(inst.rhs)
            if slot >= 0 or not isinstance(const, int) or const == 0:
                return False
            cost.add(opcode)
            vtype = inst.type
            mask, top = (1 << vtype.bits) - 1, 1 << vtype.bits
            a, b = self.ref(inst.lhs), self.const_expr(const)
            sink.append(f"    _a = {a}")
            if opcode == "sdiv":
                sink.append(f"    _r = int(_a / {b}) & {mask}")
            else:
                sink.append(f"    _r = (_a - int(_a / {b}) * {b}) & {mask}")
            sink.append(f"    {self.out(inst)} = "
                        f"_r - {top} if _r > {vtype.max_value} else _r")
            return True
        return False

    def _emit_icmp(self, inst: ICmp, cost, sink) -> None:
        cost.add("icmp")
        out = self.out(inst)
        a, b = self.ref(inst.lhs), self.ref(inst.rhs)
        predicate = inst.predicate
        if inst.lhs.type.is_pointer or inst.rhs.type.is_pointer:
            sink.append(f"    {out} = 1 if pointer_compare("
                        f"{predicate!r}, {a}, {b}) else 0")
            return
        if self.laundered:
            # ptrtoint exists somewhere: an int-typed value may hold a
            # Pointer at run time, exactly as the walker's isinstance
            # check anticipates.
            if predicate in _ICMP_SYM:
                direct = f"1 if _a {_ICMP_SYM[predicate]} _b else 0"
            else:
                direct = (f"1 if _a % {_U64} "
                          f"{_UCMP_SYM[predicate]} _b % {_U64} else 0")
            sink.append(f"    _a = {a}")
            sink.append(f"    _b = {b}")
            sink.append("    if _a.__class__ is Pointer "
                        "or _b.__class__ is Pointer:")
            sink.append(f"        {out} = 1 if pointer_compare("
                        f"{predicate!r}, _a, _b) else 0")
            sink.append("    else:")
            sink.append(f"        {out} = {direct}")
        elif predicate in _ICMP_SYM:
            sink.append(f"    {out} = "
                        f"1 if {a} {_ICMP_SYM[predicate]} {b} else 0")
        else:
            sink.append(f"    {out} = 1 if {a} % {_U64} "
                        f"{_UCMP_SYM[predicate]} {b} % {_U64} else 0")

    def _pointer_of(self, pointer, sink) -> Tuple[str, str]:
        """(buffer expr bound to _b with null check, offset expr)."""
        entry = self.inline_geps.get(id(pointer))
        if entry is not None:
            base_ref, offset_temp = entry
            sink.append(f"    _b = {base_ref}.buffer")
            return "_b", offset_temp
        sink.append(f"    _p = {self.ref(pointer)}")
        sink.append("    _b = _p.buffer")
        return "_b", "_p.offset"

    def _emit_load(self, inst: Load, cost, sink) -> None:
        cost.add("load")
        method = _accessor(inst.type, "load")
        _, offset = self._pointer_of(inst.pointer, sink)
        sink.append("    if _b is None:")
        sink.append("        raise TrapError('load from null pointer')")
        if method is None:
            vt = self.bind(inst.type, "_t")
            sink.append(f"    {self.out(inst)} = _b.load({offset}, {vt})")
        else:
            sink.append(f"    {self.out(inst)} = _b.{method}({offset})")

    def _emit_store(self, inst: Store, cost, sink) -> None:
        cost.add("store")
        method = _accessor(inst.value.type, "store")
        value = self.ref(inst.value)
        _, offset = self._pointer_of(inst.pointer, sink)
        sink.append("    if _b is None:")
        sink.append("        raise TrapError('store to null pointer')")
        if method is None:
            vt = self.bind(inst.value.type, "_t")
            sink.append(f"    _b.store({offset}, {value}, {vt})")
        else:
            sink.append(f"    _b.{method}({offset}, {value})")

    def _gep_feeds_only_chain_memory(self, inst: GetElementPtr) -> bool:
        """True when every use is a load/store address in this chain —
        the Pointer object is then unobservable and never built."""
        for user in inst.users:
            parent = user.parent
            if parent is None or id(parent) not in self.chain_ids:
                return False
            if isinstance(user, Load):
                continue
            if isinstance(user, Store) and user.pointer is inst \
                    and user.value is not inst:
                continue
            return False
        return True

    def _emit_gep(self, inst: GetElementPtr, cost, sink) -> None:
        cost.add("getelementptr")
        current = inst.pointer.type.pointee
        scales = [ir_ty.sizeof(current)]
        for _ in inst.indices[1:]:
            current = ir_ty.element_type(current)
            scales.append(ir_ty.sizeof(current))
        base = 0
        terms: List[str] = []
        for index_value, scale in zip(inst.indices, scales):
            slot, const = self.lowering.operand(index_value)
            if slot < 0:
                base += int(const) * scale
            elif scale == 1:
                terms.append(f"int(frame[{slot}])")
            else:
                terms.append(f"int(frame[{slot}]) * {scale}")
        offset_terms = ([str(base)] if base else []) + terms
        if self._gep_feeds_only_chain_memory(inst):
            base_ref = self.ref(inst.pointer)
            temp = f"_g{self.lowering.slots[id(inst)]}"
            offset = " + ".join([f"{base_ref}.offset"] + offset_terms)
            sink.append(f"    {temp} = {offset}")
            self.inline_geps[id(inst)] = (base_ref, temp)
            return
        offset = " + ".join(["_p.offset"] + offset_terms)
        sink.append(f"    _p = {self.ref(inst.pointer)}")
        sink.append(f"    {self.out(inst)} = Pointer(_p.buffer, {offset})")

    def _emit_cast(self, inst: Cast, cost, sink) -> bool:
        opcode = inst.opcode
        value = self.ref(inst.value)
        if opcode in ("sext", "bitcast", "inttoptr", "ptrtoint"):
            cost.add(opcode)
            sink.append(f"    {self.out(inst)} = {value}")
            return True
        if opcode == "zext":
            cost.add(opcode)
            sink.append(f"    {self.out(inst)} = "
                        f"{value} % {1 << inst.value.type.bits}")
            return True
        if opcode in ("trunc", "fptosi"):
            cost.add(opcode)
            vtype = inst.type
            mask, top = (1 << vtype.bits) - 1, 1 << vtype.bits
            sink.append(f"    _r = int({value}) & {mask}")
            sink.append(f"    {self.out(inst)} = "
                        f"_r - {top} if _r > {vtype.max_value} else _r")
            return True
        if opcode == "sitofp":
            cost.add(opcode)
            sink.append(f"    {self.out(inst)} = float({value})")
            return True
        return False

    # Segment bookkeeping ---------------------------------------------------

    def charge_lines(self, cost: _BlockCost, wall: float) -> List[str]:
        """One pre-aggregated accumulator update for a block segment.

        Emitted *before* the segment's ops, exactly where the closure
        engine charges its block aggregate, so the step-limit raise
        point and wall-time attribution are identical.
        """
        if cost.n == 0:
            return []
        lines = [f"    cost.dynamic_instructions += {cost.n}"]
        if cost.compute:
            lines.append(f"    cost.compute += {cost.compute!r}")
        if cost.memory:
            lines.append(f"    cost.memory += {cost.memory!r}")
        for opcode, n in cost.counts.items():
            lines.append(f"    _cn[{opcode!r}] = _cn.get({opcode!r}, 0) + {n}")
        lines.append("    if cost.dynamic_instructions > _ms:")
        lines.append("        raise StepLimitExceeded("
                     "'exceeded %d dynamic instructions' % _ms)")
        if wall:
            lines.append("    if interp._fork_depth == 0:")
            lines.append(f"        interp.wall_time += {wall!r}")
        return lines

    def exit_expr(self, prev_index: int, next_index: int) -> str:
        """A prebuilt ``(predecessor, successor)`` pair to return."""
        return self.bind((prev_index, next_index), "_x")

    def compile(self, name: str):
        source = "def run(interp, frame):\n" + "\n".join(
            ["    cost = interp.cost",
             "    _cn = cost.opcode_counts",
             "    _ms = interp.max_steps"] + self.lines) + "\n"
        namespace = {
            "Pointer": Pointer, "NULL": NULL, "TrapError": TrapError,
            "InterpreterError": InterpreterError,
            "StepLimitExceeded": StepLimitExceeded,
            "pointer_compare": pointer_compare,
        }
        namespace.update(self.env)
        exec(compile(source, f"<trace:{name}>", "exec"), namespace)
        return namespace["run"], source


class CompiledTrace:
    """One fused straight-line region, executable as generated source."""

    __slots__ = ("phi_moves", "run", "ret", "n_blocks", "source")

    def __init__(self, phi_moves, run, ret, n_blocks: int, source: str):
        self.phi_moves = phi_moves
        self.run = run
        self.ret = ret
        self.n_blocks = n_blocks
        self.source = source


class TraceCompiledFunction:
    """A function lowered to trace-granular generated source."""

    __slots__ = ("function", "traces", "frame_size", "num_args",
                 "global_bindings", "n_traces", "n_fused_blocks",
                 "hot_traces")

    def __init__(self, function, traces, frame_size, num_args,
                 global_bindings, n_traces, n_fused_blocks, hot_traces):
        self.function = function
        self.traces = traces
        self.frame_size = frame_size
        self.num_args = num_args
        self.global_bindings = global_bindings
        self.n_traces = n_traces
        self.n_fused_blocks = n_fused_blocks
        self.hot_traces = hot_traces

    def execute(self, interp, args: List[object]) -> object:
        frame: List[object] = [None] * self.frame_size
        num_args = self.num_args
        if num_args:
            frame[:num_args] = args
        if self.global_bindings:
            interp_globals = interp.globals
            for slot, gvar in self.global_bindings:
                frame[slot] = interp_globals[gvar]

        traces = self.traces
        index = 0
        prev = -1
        while True:
            trace = traces[index]
            moves = trace.phi_moves
            if moves is not None:
                edge = moves.get(prev)
                if type(edge) is not tuple:
                    raise InterpreterError(edge)
                if len(edge) == 1:
                    dst, src, const = edge[0]
                    frame[dst] = frame[src] if src >= 0 else const
                else:
                    values = [frame[src] if src >= 0 else const
                              for _, src, const in edge]
                    for (dst, _, _), value in zip(edge, values):
                        frame[dst] = value
            prev, index = trace.run(interp, frame)
            if index < 0:
                ret = trace.ret
                if ret is None:
                    return None
                slot, const = ret
                return frame[slot] if slot >= 0 else const


# Trace discovery -------------------------------------------------------------

def _discover_chains(function: Function, loop_info) -> List[list]:
    """Partition blocks into maximal straight-line chains.

    Every block belongs to exactly one chain (possibly of length one:
    its own trace head).  A chain extends into a successor only if that
    successor has exactly one predecessor — so at run time the interior
    of a chain can only ever be entered from its head."""
    claimed = set()
    chains: List[list] = []
    for block in function.blocks:
        if id(block) in claimed:
            continue
        chain = [block]
        chain_ids = {id(block)}
        # Heads are claimed too: a later chain must not fuse through an
        # earlier head, or its exits could target that head's interior.
        claimed.add(id(block))
        cursor = block
        while True:
            term = cursor.terminator
            if isinstance(term, Branch):
                succs = [term.target]
            elif isinstance(term, CondBranch):
                succs = [term.if_true, term.if_false]
                if loop_info is not None:
                    loop = loop_info.loop_for(cursor)
                    if loop is not None:
                        # Stay inside the loop: fuse along the
                        # body/back-edge path, not the exit edge.
                        succs.sort(key=lambda s: not loop.contains(s))
            else:
                break
            follow = None
            for succ in succs:
                if succ is function.entry or id(succ) in claimed \
                        or id(succ) in chain_ids:
                    continue
                if len(succ.predecessors) != 1:
                    continue
                follow = succ
                break
            if follow is None:
                break
            chain.append(follow)
            chain_ids.add(id(follow))
            claimed.add(id(follow))
            cursor = follow
        chains.append(chain)
    return chains


# Compilation -----------------------------------------------------------------

def _phi_copy_lines(emitter: _TraceEmitter, phis: List[Phi], pred) -> \
        List[str]:
    """Parallel-copy source for a phi edge with a known predecessor."""
    lowering = emitter.lowering
    lines: List[str] = []
    moves = []
    for phi in phis:
        incoming = phi.incoming_for(pred)
        if incoming is None:
            message = f"phi {phi} has no incoming value from {pred.name}"
            lines.append(
                f"    raise InterpreterError({emitter.bind(message)})")
            return lines
        slot, const = lowering.operand(incoming)
        dst = lowering.slots[id(phi)]
        if slot != dst:
            moves.append((dst, slot, const))
    if moves:
        dsts = ", ".join(f"frame[{dst}]" for dst, _, _ in moves)
        srcs = ", ".join(
            f"frame[{src}]" if src >= 0 else emitter.const_expr(const)
            for _, src, const in moves)
        lines.append(f"    {dsts} = {srcs}")
    return lines


def _batched_loop_lines(emitter: _TraceEmitter, segments) -> List[str]:
    """Fused-loop assembly with deferred accumulator flushing.

    Inside a source-level loop the per-iteration accumulator updates (a
    dict operation per distinct opcode) dominate everything else, so
    each segment instead bumps a local execution counter and the exact
    totals are flushed once in a ``finally``.  The final cost state is
    identical to inline charging on every exit path — return, trap,
    phi-edge error, step limit — because a segment still advances its
    counter and the step budget (and checks the limit) *before* its ops
    run, exactly where the inline version charges, and all charge
    amounts are multiples of 0.5 so the multiply-on-exit total is the
    same float the add-per-iteration total would be.  Requires a body
    with no closure fallbacks: closures charge ``interp.cost`` directly
    and would race the deferred locals.
    """
    lines = ["    _di = cost.dynamic_instructions",
             "    _w = interp._fork_depth == 0"]
    counters = [index for index, (_, cost, _, _) in enumerate(segments)
                if cost.n]
    for index in counters:
        lines.append(f"    _n{index} = 0")
    lines.append("    try:")
    lines.append("        while True:")
    for index, (pre, cost, seg, term) in enumerate(segments):
        body = list(pre)
        if cost.n:
            body.append(f"    _n{index} += 1")
            body.append(f"    _di += {cost.n}")
            body.append("    if _di > _ms:")
            body.append("        raise StepLimitExceeded("
                        "'exceeded %d dynamic instructions' % _ms)")
        body.extend(seg)
        body.extend(term)
        lines.extend("        " + line for line in body)
    lines.append("    finally:")
    lines.append("        cost.dynamic_instructions = _di")
    for attribute in ("compute", "memory"):
        terms = [f"{getattr(segments[i][1], attribute)!r} * _n{i}"
                 for i in counters if getattr(segments[i][1], attribute)]
        if terms:
            lines.append(f"        cost.{attribute} += " + " + ".join(terms))
    per_opcode: Dict[str, List[str]] = {}
    for index in counters:
        for opcode, n in segments[index][1].counts.items():
            per_opcode.setdefault(opcode, []).append(
                f"_n{index}" if n == 1 else f"{n} * _n{index}")
    for opcode, terms in per_opcode.items():
        lines.append(f"        _cn[{opcode!r}] = _cn.get({opcode!r}, 0) + "
                     + " + ".join(terms))
    wall_terms = [f"{segments[i][1].compute + segments[i][1].memory!r} "
                  f"* _n{i}" for i in counters
                  if segments[i][1].compute + segments[i][1].memory]
    if wall_terms:
        lines.append("        if _w:")
        lines.append("            interp.wall_time += "
                     + " + ".join(wall_terms))
    return lines


def _build_trace(chain, lowering: _FunctionLowering, laundered: bool):
    emitter = _TraceEmitter(lowering, laundered,
                            chain_ids={id(b) for b in chain})
    block_index = lowering.block_index
    head = chain[0]
    head_moves = None
    head_phis: List[Phi] = []
    ret_spec = None
    segments = []
    loops_back = False

    for position, block in enumerate(chain):
        instructions = block.instructions
        this_index = block_index[id(block)]
        seg_cost = _BlockCost()
        seg_lines: List[str] = []
        pre_lines: List[str] = []

        # Phis: head edges stay dynamic (resolved by the execute loop,
        # or inline on a fused back edge); interior edges have a unique
        # predecessor and become a tuple parallel copy.  A missing
        # incoming value raises before the segment charge, matching the
        # closure engine.
        index = 0
        phis: List[Phi] = []
        while index < len(instructions) and isinstance(
                instructions[index], Phi):
            phis.append(instructions[index])
            seg_cost.add("phi")
            index += 1
        if position == 0:
            head_phis = phis
            if phis:
                head_moves = lowering._compile_phis(block, phis)
        elif phis:
            pre_lines = _phi_copy_lines(emitter, phis, chain[position - 1])

        # Straight-line body, then the terminator.
        terminator = None
        for inst in instructions[index:]:
            if inst.is_terminator:
                terminator = inst
                break
            emitter.emit(inst, seg_cost, seg_lines)

        is_final = position == len(chain) - 1
        term_lines: List[str] = []
        if terminator is None:
            term_lines.append(
                "    raise InterpreterError("
                + emitter.bind(f"block {block.name} fell through "
                               f"without a terminator") + ")")
        elif isinstance(terminator, Ret):
            seg_cost.add("ret")
            if terminator.value is not None:
                ret_spec = lowering.operand(terminator.value)
            term_lines.append(
                f"    return {emitter.exit_expr(this_index, -1)}")
        elif isinstance(terminator, Unreachable):
            # Not charged: the walker raises before charging.
            term_lines.append("    raise TrapError(\"executed "
                              "'unreachable'\")")
        elif isinstance(terminator, Branch):
            seg_cost.add("br")
            if not is_final:
                pass  # fused fall-through into chain[position + 1]
            elif terminator.target is head:
                # Back edge to our own head: loop inside the source.
                loops_back = True
                term_lines.extend(_phi_copy_lines(emitter, head_phis, block))
                term_lines.append("    continue")
            else:
                target = block_index[id(terminator.target)]
                term_lines.append(
                    f"    return {emitter.exit_expr(this_index, target)}")
        elif isinstance(terminator, CondBranch):
            seg_cost.add("br")
            condition = emitter.ref(terminator.condition)
            true_index = block_index[id(terminator.if_true)]
            false_index = block_index[id(terminator.if_false)]
            if is_final and terminator.if_true is head \
                    and terminator.if_false is head:
                loops_back = True
                term_lines.extend(_phi_copy_lines(emitter, head_phis, block))
                term_lines.append("    continue")
            elif is_final and terminator.if_true is head:
                loops_back = True
                side = emitter.exit_expr(this_index, false_index)
                term_lines.append(f"    if not {condition}: return {side}")
                term_lines.extend(_phi_copy_lines(emitter, head_phis, block))
                term_lines.append("    continue")
            elif is_final and terminator.if_false is head:
                loops_back = True
                side = emitter.exit_expr(this_index, true_index)
                term_lines.append(f"    if {condition}: return {side}")
                term_lines.extend(_phi_copy_lines(emitter, head_phis, block))
                term_lines.append("    continue")
            elif is_final:
                true_exit = emitter.exit_expr(this_index, true_index)
                false_exit = emitter.exit_expr(this_index, false_index)
                term_lines.append(f"    return {true_exit} "
                                  f"if {condition} else {false_exit}")
            elif terminator.if_true is terminator.if_false:
                pass  # both arms fall through into the fused successor
            elif terminator.if_true is chain[position + 1]:
                side = emitter.exit_expr(this_index, false_index)
                term_lines.append(f"    if not {condition}: return {side}")
            else:
                side = emitter.exit_expr(this_index, true_index)
                term_lines.append(f"    if {condition}: return {side}")
        else:
            raise InterpreterError(
                f"cannot compile terminator {terminator.opcode!r}")

        segments.append((pre_lines, seg_cost, seg_lines, term_lines))

    if loops_back and not emitter.uses_closures:
        emitter.lines.extend(_batched_loop_lines(emitter, segments))
    else:
        body: List[str] = []
        for pre_lines, seg_cost, seg_lines, term_lines in segments:
            body.extend(pre_lines)
            body.extend(emitter.charge_lines(
                seg_cost, seg_cost.compute + seg_cost.memory))
            body.extend(seg_lines)
            body.extend(term_lines)
        if loops_back:
            emitter.lines.append("    while True:")
            emitter.lines.extend("    " + line for line in body)
        else:
            emitter.lines.extend(body)

    run, source = emitter.compile(
        f"{lowering.function.name}:{chain[0].name}")
    return CompiledTrace(head_moves, run, ret_spec, len(chain), source)


def compile_traces(function: Function,
                   analysis_manager=None) -> TraceCompiledFunction:
    """Lower ``function`` to trace-granular generated source (uncached)."""
    if function.is_declaration:
        raise InterpreterError(
            f"cannot compile declaration @{function.name}")
    loop_info = None
    counted = None
    if analysis_manager is not None:
        loop_info = analysis_manager.get(LOOPS, function)
        counted = analysis_manager.get(INDUCTION, function)
    else:
        loop_info = get_loop_info(function)
    laundered = _module_launders_pointers(function)
    lowering = _FunctionLowering(function)
    chains = _discover_chains(function, loop_info)

    traces: List[Optional[CompiledTrace]] = [None] * len(function.blocks)
    fused = 0
    hot = 0
    for chain in chains:
        trace = _build_trace(chain, lowering, laundered)
        traces[lowering.block_index[id(chain[0])]] = trace
        fused += len(chain) - 1
        if counted is not None and any(
                loop.header is chain[0] for loop in counted):
            hot += 1
        elif counted is None and loop_info is not None:
            loop = loop_info.loop_with_header(chain[0])
            if loop is not None:
                hot += 1

    return TraceCompiledFunction(
        function, traces, lowering.next_slot, lowering.num_args,
        tuple(lowering.global_slots.values()),
        n_traces=len(chains), n_fused_blocks=fused, hot_traces=hot)


def trace_code_for(function: Function,
                   analysis_manager=None) -> TraceCompiledFunction:
    """Trace code for ``function`` (cached; see compile.code_for)."""
    if analysis_manager is not None:
        return analysis_manager.get(TRACE_CODE, function)
    return _CODE_CACHE.code_for(function, "trace")


_COMPILERS["trace"] = compile_traces
register_function_analysis(
    TRACE_CODE, lambda function, am: compile_traces(function, am))
