"""repro.runtime — IR interpreter, simulated OpenMP runtime, cost model."""

from .interp import (ExecutionResult, Interpreter, InterpreterError,
                     StepLimitExceeded, run_module)
from .machine import (COMPUTE_COST, CostAccumulator, MachineModel,
                      compiler_factor)
from .memory import NULL, Buffer, Pointer, TrapError
from .omp import (KMP_SCH_DYNAMIC_CHUNKED, KMP_SCH_STATIC,
                  KMP_SCH_STATIC_CHUNKED, install_omp_runtime)

__all__ = [
    "ExecutionResult", "Interpreter", "InterpreterError", "StepLimitExceeded",
    "run_module", "COMPUTE_COST", "CostAccumulator", "MachineModel",
    "compiler_factor", "NULL", "Buffer", "Pointer", "TrapError",
    "KMP_SCH_DYNAMIC_CHUNKED", "KMP_SCH_STATIC", "KMP_SCH_STATIC_CHUNKED",
    "install_omp_runtime",
]
