"""repro.runtime — IR interpreter, simulated OpenMP runtime, cost model."""

from .compile import (COMPILED_CODE, CodeCache, CodeCacheStats,
                      CompiledFunction, clear_code_cache, code_for,
                      compile_function, global_code_cache, invalidate_code,
                      structure_token)
from .interp import (ENGINES, ExecutionResult, Interpreter, InterpreterError,
                     StepLimitExceeded, default_engine, run_module,
                     set_default_engine)
from .machine import (COMPUTE_COST, CostAccumulator, MachineModel,
                      MeasuredStats, compiler_factor)
from .memory import (MEMORY_MODELS, NULL, Buffer, FlatBuffer, MemorySpace,
                     Pointer, TrapError, default_memory, set_default_memory)
from .omp import (KMP_SCH_DYNAMIC_CHUNKED, KMP_SCH_STATIC,
                  KMP_SCH_STATIC_CHUNKED, install_omp_runtime)
from .parallel import MeasuredPool, RegionFailed, RegionUnsupported
from .trace import TRACE_CODE, CompiledTrace, TraceCompiledFunction, \
    compile_traces

__all__ = [
    "ExecutionResult", "Interpreter", "InterpreterError", "StepLimitExceeded",
    "run_module", "ENGINES", "default_engine", "set_default_engine",
    "COMPILED_CODE", "CodeCache", "CodeCacheStats", "CompiledFunction",
    "clear_code_cache", "code_for", "compile_function", "global_code_cache",
    "invalidate_code", "structure_token",
    "TRACE_CODE", "CompiledTrace", "TraceCompiledFunction", "compile_traces",
    "COMPUTE_COST", "CostAccumulator", "MachineModel", "MeasuredStats",
    "compiler_factor",
    "MEMORY_MODELS", "NULL", "Buffer", "FlatBuffer", "MemorySpace", "Pointer",
    "TrapError", "default_memory", "set_default_memory",
    "KMP_SCH_DYNAMIC_CHUNKED", "KMP_SCH_STATIC", "KMP_SCH_STATIC_CHUNKED",
    "install_omp_runtime",
    "MeasuredPool", "RegionFailed", "RegionUnsupported",
]
