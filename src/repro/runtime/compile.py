"""Closure compilation: lower IR functions to slot-indexed code.

The tree-walking engine in :mod:`repro.runtime.interp` re-does
``isinstance`` dispatch, ``Dict[Value, object]`` frame lookups, and a
per-instruction :meth:`Interpreter.charge` for every dynamic
instruction.  This module removes that overhead with a one-time lowering
of each :class:`~repro.ir.module.Function` into an executable
:class:`CompiledFunction`:

* **Slot-indexed frames** — arguments, non-void instructions, and the
  globals a function touches each get an integer slot in a flat
  ``list`` frame; operand reads become ``frame[i]`` (or a constant
  baked at compile time), never a dict lookup.
* **Opcode-specialized closures** — each instruction is lowered once to
  a small closure with its operand slots, constants, wrap masks, GEP
  scales, and callee bound in the closure environment, so executing a
  block is a plain loop over prebuilt callables.
* **Phi parallel copies** — each (predecessor → block) edge gets a
  precomputed move list applied read-all-then-write, mirroring the
  walker's atomic phi evaluation.
* **Block-aggregated cost charging** — per block, the total
  ``dynamic_instructions``, compute/memory cycles, wall time, and
  per-opcode counts are precomputed; executing the block performs one
  accumulator update instead of one per instruction.  Every cost-table
  entry is a multiple of 0.5, so block sums are bit-identical to the
  walker's per-instruction accumulation, and the step limit is checked
  per block (a :class:`StepLimitExceeded` raise therefore lands within
  one block of the walker's raise point — see the engine tests).
  Instructions whose charge cannot be precomputed (indirect calls,
  whose cost depends on the runtime callee) charge through
  :meth:`Interpreter.charge` exactly like the walker.

Compiled code is cached per function in a process-global
:class:`CodeCache` validated by identity, a structural token, and the
service layer's ``pipeline_fingerprint()``; it is also registered as
the ``compiled-code`` function analysis so AnalysisManager-driven
pipelines invalidate it through the usual
:class:`~repro.analysis.manager.PreservedAnalyses` contracts (no pass
preserves it short of ``PreservedAnalyses.all()``).

The compiled engine assumes verified SSA input: where the walker raises
``use of undefined value`` on IR that reads a value before its
definition, compiled frames read an uninitialized slot instead.  All
defined behavior — outputs, costs, traps, error messages — matches the
walker; the differential parity suite enforces this.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.manager import register_function_analysis
from ..ir import types as ir_ty
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast,
                               CondBranch, DbgValue, FCmp, GetElementPtr,
                               ICmp, Instruction, Load, Phi, Ret, Select,
                               Store, Unreachable)
from ..ir.module import Function
from ..ir.values import (ConstantFloat, ConstantInt, ConstantPointerNull,
                         GlobalVariable, UndefValue, Value)
from .interp import (_FCMP_FN, _ICMP_FN, InterpreterError, StepLimitExceeded,
                     pointer_compare)
from .machine import (COMPUTE_COST, DEFAULT_COST, MATH_CALL_COST,
                      MEMORY_CYCLES_PER_ACCESS)
from .memory import NULL, Pointer, TrapError

#: AnalysisManager name of the compiled-code function analysis.
COMPILED_CODE = "compiled-code"

#: Operand spec index meaning "constant baked in the spec, not a slot".
_CONST = -1


def _instruction_charge(opcode: str, callee: str = "") -> Tuple[float, float]:
    """(compute, memory) cycles one charge() of ``opcode`` adds."""
    if opcode == "call" and callee in MATH_CALL_COST:
        return float(MATH_CALL_COST[callee]), 0.0
    compute = float(COMPUTE_COST.get(opcode, DEFAULT_COST))
    memory = MEMORY_CYCLES_PER_ACCESS if opcode in ("load", "store") else 0.0
    return compute, memory


class _BlockCost:
    """Accumulates one block's precomputed charge aggregate."""

    __slots__ = ("n", "compute", "memory", "counts")

    def __init__(self):
        self.n = 0
        self.compute = 0.0
        self.memory = 0.0
        self.counts: Dict[str, int] = {}

    def add(self, opcode: str, callee: str = "") -> None:
        self.n += 1
        self.counts[opcode] = self.counts.get(opcode, 0) + 1
        compute, memory = _instruction_charge(opcode, callee)
        self.compute += compute
        self.memory += memory


class CompiledBlock:
    """One basic block lowered to closures plus a charge aggregate."""

    __slots__ = ("phi_moves", "n_insts", "compute", "memory", "wall",
                 "counts", "ops", "term", "ret")

    def __init__(self, phi_moves, cost: _BlockCost, ops, term, ret):
        self.phi_moves = phi_moves
        self.n_insts = cost.n
        self.compute = cost.compute
        self.memory = cost.memory
        # charge() adds exactly compute + memory to wall time, so the
        # block's wall delta is their sum (checked by the parity tests).
        self.wall = cost.compute + cost.memory
        self.counts = tuple(cost.counts.items())
        self.ops = tuple(ops)
        self.term = term
        self.ret = ret


class CompiledFunction:
    """A function lowered to slot-indexed executable form."""

    __slots__ = ("function", "blocks", "frame_size", "num_args",
                 "global_bindings")

    def __init__(self, function: Function, blocks: List[CompiledBlock],
                 frame_size: int, num_args: int,
                 global_bindings: Tuple[Tuple[int, GlobalVariable], ...]):
        self.function = function
        self.blocks = blocks
        self.frame_size = frame_size
        self.num_args = num_args
        self.global_bindings = global_bindings

    def execute(self, interp, args: List[object]) -> object:
        frame: List[object] = [None] * self.frame_size
        num_args = self.num_args
        if num_args:
            frame[:num_args] = args
        if self.global_bindings:
            interp_globals = interp.globals
            for slot, gvar in self.global_bindings:
                frame[slot] = interp_globals[gvar]

        blocks = self.blocks
        cost = interp.cost
        max_steps = interp.max_steps
        index = 0
        prev = -1
        while True:
            block = blocks[index]

            moves = block.phi_moves
            if moves is not None:
                edge = moves.get(prev)
                if type(edge) is not tuple:
                    raise InterpreterError(edge)
                if len(edge) == 1:
                    dst, src, const = edge[0]
                    frame[dst] = frame[src] if src >= 0 else const
                else:
                    values = [frame[src] if src >= 0 else const
                              for _, src, const in edge]
                    for (dst, _, _), value in zip(edge, values):
                        frame[dst] = value

            cost.dynamic_instructions += block.n_insts
            cost.compute += block.compute
            cost.memory += block.memory
            counts = cost.opcode_counts
            for opcode, n in block.counts:
                counts[opcode] = counts.get(opcode, 0) + n
            if cost.dynamic_instructions > max_steps:
                raise StepLimitExceeded(
                    f"exceeded {max_steps} dynamic instructions")
            if interp._fork_depth == 0:
                interp.wall_time += block.wall

            for op in block.ops:
                op(interp, frame)

            next_index = block.term(interp, frame)
            if next_index < 0:
                ret = block.ret
                if ret is None:
                    return None
                slot, const = ret
                return frame[slot] if slot >= 0 else const
            prev, index = index, next_index


class _FunctionLowering:
    """Single-use compiler from one Function to a CompiledFunction."""

    def __init__(self, function: Function):
        self.function = function
        self.slots: Dict[int, int] = {}
        self.global_slots: Dict[int, Tuple[int, GlobalVariable]] = {}
        self.block_index = {id(b): i for i, b in enumerate(function.blocks)}
        next_slot = 0
        for arg in function.arguments:
            self.slots[id(arg)] = next_slot
            next_slot += 1
        self.num_args = next_slot
        for block in function.blocks:
            for inst in block.instructions:
                if not inst.type.is_void:
                    self.slots[id(inst)] = next_slot
                    next_slot += 1
        self.next_slot = next_slot

    # Operand resolution ----------------------------------------------------

    def operand(self, value: Value) -> Tuple[int, object]:
        """Lower an operand to a ``(slot, constant)`` spec."""
        slot = self.slots.get(id(value))
        if slot is not None:
            return (slot, None)
        if isinstance(value, ConstantInt):
            return (_CONST, value.value)
        if isinstance(value, ConstantFloat):
            return (_CONST, value.value)
        if isinstance(value, ConstantPointerNull):
            return (_CONST, NULL)
        if isinstance(value, UndefValue):
            if value.type.is_float:
                return (_CONST, 0.0)
            if value.type.is_pointer:
                return (_CONST, NULL)
            return (_CONST, 0)
        if isinstance(value, GlobalVariable):
            entry = self.global_slots.get(id(value))
            if entry is None:
                entry = (self.next_slot, value)
                self.global_slots[id(value)] = entry
                self.next_slot += 1
            return (entry[0], None)
        if isinstance(value, Function):
            return (_CONST, value)
        raise _UndefinedOperand(value)

    # Compilation -----------------------------------------------------------

    def compile(self) -> CompiledFunction:
        blocks = [self._compile_block(b) for b in self.function.blocks]
        bindings = tuple(self.global_slots.values())
        return CompiledFunction(self.function, blocks, self.next_slot,
                                self.num_args, bindings)

    def _compile_block(self, block) -> CompiledBlock:
        instructions = block.instructions
        cost = _BlockCost()
        index = 0
        phis: List[Phi] = []
        while index < len(instructions) and isinstance(
                instructions[index], Phi):
            phis.append(instructions[index])
            cost.add("phi")
            index += 1
        phi_moves = self._compile_phis(block, phis) if phis else None

        ops = []
        term = None
        ret = None
        for inst in instructions[index:]:
            if inst.is_terminator:
                term, ret = self._compile_terminator(inst, cost)
                break
            op = self._compile_instruction(inst, cost)
            if op is not None:
                ops.append(op)
        if term is None:
            message = (f"block {block.name} fell through "
                       f"without a terminator")

            def term(interp, frame, _message=message):
                raise InterpreterError(_message)
        return CompiledBlock(phi_moves, cost, ops, term, ret)

    def _compile_phis(self, block, phis: List[Phi]):
        # Every runtime edge comes from a compile-time predecessor (the
        # terminator operands define both), plus the virtual entry edge.
        edges: Dict[int, object] = {}
        preds = [(None, -1)] if block is self.function.entry else []
        for pred in block.predecessors:
            preds.append((pred, self.block_index[id(pred)]))
        for pred, pred_index in preds:
            moves = []
            error: Optional[str] = None
            for phi in phis:
                incoming = phi.incoming_for(pred)
                if incoming is None:
                    error = (f"phi {phi} has no incoming value from "
                             f"{pred.name if pred else '<entry>'}")
                    break
                slot, const = self.operand(incoming)
                dst = self.slots[id(phi)]
                if slot == dst:
                    continue  # self-copy: frame[d] = frame[d]
                moves.append((dst, slot, const))
            edges[pred_index] = error if error is not None else tuple(moves)
        return edges

    def _compile_terminator(self, inst: Instruction, cost: _BlockCost):
        if isinstance(inst, CondBranch):
            cost.add("br")
            ci, cc = self.operand(inst.condition)
            ti = self.block_index[id(inst.if_true)]
            fi = self.block_index[id(inst.if_false)]

            def term(interp, frame, ci=ci, cc=cc, ti=ti, fi=fi):
                return ti if (frame[ci] if ci >= 0 else cc) else fi
            return term, None
        if isinstance(inst, Branch):
            cost.add("br")
            ti = self.block_index[id(inst.target)]

            def term(interp, frame, ti=ti):
                return ti
            return term, None
        if isinstance(inst, Ret):
            cost.add("ret")
            ret = None if inst.value is None else self.operand(inst.value)

            def term(interp, frame):
                return -1
            return term, ret
        if isinstance(inst, Unreachable):
            # The walker raises before charging: excluded from the block
            # aggregate.
            def term(interp, frame):
                raise TrapError("executed 'unreachable'")
            return term, None
        raise InterpreterError(
            f"cannot compile terminator {inst.opcode!r}")

    def _compile_instruction(self, inst: Instruction, cost: _BlockCost):
        if isinstance(inst, DbgValue):
            cost.add("dbg.value")
            return None
        if isinstance(inst, BinaryOp):
            cost.add(inst.opcode)
            return self._compile_binop(inst)
        if isinstance(inst, ICmp):
            cost.add("icmp")
            return self._compile_icmp(inst)
        if isinstance(inst, FCmp):
            cost.add("fcmp")
            ai, ac = self.operand(inst.lhs)
            bi, bc = self.operand(inst.rhs)
            dst = self.slots[id(inst)]
            fn = _FCMP_FN[inst.predicate]

            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst, fn=fn):
                a = frame[ai] if ai >= 0 else ac
                b = frame[bi] if bi >= 0 else bc
                frame[dst] = 1 if fn(a, b) else 0
            return op
        if isinstance(inst, Alloca):
            cost.add("alloca")
            size = ir_ty.sizeof(inst.allocated_type)
            label = inst.name or "alloca"
            dst = self.slots[id(inst)]

            def op(interp, frame, size=size, label=label, dst=dst):
                frame[dst] = Pointer(interp.memory.alloc(size, label), 0)
            return op
        if isinstance(inst, Load):
            cost.add("load")
            pi, pc = self.operand(inst.pointer)
            dst = self.slots[id(inst)]
            vtype = inst.type

            def op(interp, frame, pi=pi, pc=pc, dst=dst, vtype=vtype):
                pointer = frame[pi] if pi >= 0 else pc
                if pointer.is_null:
                    raise TrapError("load from null pointer")
                frame[dst] = pointer.buffer.load(pointer.offset, vtype)
            return op
        if isinstance(inst, Store):
            cost.add("store")
            vi, vc = self.operand(inst.value)
            pi, pc = self.operand(inst.pointer)
            vtype = inst.value.type

            def op(interp, frame, vi=vi, vc=vc, pi=pi, pc=pc, vtype=vtype):
                pointer = frame[pi] if pi >= 0 else pc
                if pointer.is_null:
                    raise TrapError("store to null pointer")
                pointer.buffer.store(pointer.offset,
                                     frame[vi] if vi >= 0 else vc, vtype)
            return op
        if isinstance(inst, GetElementPtr):
            cost.add("getelementptr")
            return self._compile_gep(inst)
        if isinstance(inst, Cast):
            cost.add(inst.opcode)
            return self._compile_cast(inst)
        if isinstance(inst, Select):
            cost.add("select")
            ci, cc = self.operand(inst.condition)
            ti, tc = self.operand(inst.if_true)
            fi, fc = self.operand(inst.if_false)
            dst = self.slots[id(inst)]

            def op(interp, frame, ci=ci, cc=cc, ti=ti, tc=tc, fi=fi, fc=fc,
                   dst=dst):
                if frame[ci] if ci >= 0 else cc:
                    frame[dst] = frame[ti] if ti >= 0 else tc
                else:
                    frame[dst] = frame[fi] if fi >= 0 else fc
            return op
        if isinstance(inst, Phi):
            # A phi below a non-phi: the walker's dispatch rejects it
            # without charging.
            def op(interp, frame):
                raise InterpreterError("phi reached instruction dispatch")
            return op
        if isinstance(inst, Call):
            return self._compile_call(inst, cost)
        raise InterpreterError(f"cannot interpret opcode {inst.opcode!r}")

    def _compile_binop(self, inst: BinaryOp):
        ai, ac = self.operand(inst.lhs)
        bi, bc = self.operand(inst.rhs)
        dst = self.slots[id(inst)]
        opcode = inst.opcode
        if opcode in ("fadd", "fsub", "fmul", "fdiv", "frem"):
            if opcode == "fadd":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst):
                    frame[dst] = ((frame[ai] if ai >= 0 else ac)
                                  + (frame[bi] if bi >= 0 else bc))
            elif opcode == "fsub":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst):
                    frame[dst] = ((frame[ai] if ai >= 0 else ac)
                                  - (frame[bi] if bi >= 0 else bc))
            elif opcode == "fmul":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst):
                    frame[dst] = ((frame[ai] if ai >= 0 else ac)
                                  * (frame[bi] if bi >= 0 else bc))
            elif opcode == "fdiv":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst):
                    a = frame[ai] if ai >= 0 else ac
                    b = frame[bi] if bi >= 0 else bc
                    if b == 0.0:
                        frame[dst] = math.inf if a > 0 else (
                            -math.inf if a < 0 else math.nan)
                    else:
                        frame[dst] = a / b
            else:
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst):
                    frame[dst] = math.fmod(frame[ai] if ai >= 0 else ac,
                                           frame[bi] if bi >= 0 else bc)
            return op

        vtype: ir_ty.IntType = inst.type
        bits = vtype.bits
        mask = (1 << bits) - 1
        top = 1 << bits
        max_value = vtype.max_value
        # The wrap arithmetic is inlined (mask, then re-sign) for the
        # hot opcodes; it is exactly IntType.wrap.
        if opcode == "add":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   mask=mask, top=top, max_value=max_value):
                r = ((frame[ai] if ai >= 0 else ac)
                     + (frame[bi] if bi >= 0 else bc)) & mask
                frame[dst] = r - top if r > max_value else r
            return op
        if opcode == "sub":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   mask=mask, top=top, max_value=max_value):
                r = ((frame[ai] if ai >= 0 else ac)
                     - (frame[bi] if bi >= 0 else bc)) & mask
                frame[dst] = r - top if r > max_value else r
            return op
        if opcode == "mul":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   mask=mask, top=top, max_value=max_value):
                r = ((frame[ai] if ai >= 0 else ac)
                     * (frame[bi] if bi >= 0 else bc)) & mask
                frame[dst] = r - top if r > max_value else r
            return op
        wrap = vtype.wrap
        if opcode == "sdiv":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap):
                a = frame[ai] if ai >= 0 else ac
                b = frame[bi] if bi >= 0 else bc
                if b == 0:
                    raise TrapError("integer division by zero")
                frame[dst] = wrap(int(a / b))
            return op
        if opcode == "srem":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap):
                a = frame[ai] if ai >= 0 else ac
                b = frame[bi] if bi >= 0 else bc
                if b == 0:
                    raise TrapError("integer remainder by zero")
                frame[dst] = wrap(a - int(a / b) * b)
            return op
        if opcode in ("udiv", "urem"):
            is_div = opcode == "udiv"

            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap, top=top, is_div=is_div):
                a = frame[ai] if ai >= 0 else ac
                b = frame[bi] if bi >= 0 else bc
                if b == 0:
                    raise TrapError("integer division by zero")
                ua, ub = a % top, b % top
                frame[dst] = wrap(ua // ub if is_div else ua % ub)
            return op
        if opcode in ("and", "or", "xor"):
            if opcode == "and":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                       wrap=wrap):
                    frame[dst] = wrap((frame[ai] if ai >= 0 else ac)
                                      & (frame[bi] if bi >= 0 else bc))
            elif opcode == "or":
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                       wrap=wrap):
                    frame[dst] = wrap((frame[ai] if ai >= 0 else ac)
                                      | (frame[bi] if bi >= 0 else bc))
            else:
                def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                       wrap=wrap):
                    frame[dst] = wrap((frame[ai] if ai >= 0 else ac)
                                      ^ (frame[bi] if bi >= 0 else bc))
            return op
        if opcode == "shl":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap, bits=bits):
                frame[dst] = wrap((frame[ai] if ai >= 0 else ac)
                                  << ((frame[bi] if bi >= 0 else bc) % bits))
            return op
        if opcode == "ashr":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap, bits=bits):
                frame[dst] = wrap((frame[ai] if ai >= 0 else ac)
                                  >> ((frame[bi] if bi >= 0 else bc) % bits))
            return op
        if opcode == "lshr":
            def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst,
                   wrap=wrap, bits=bits, top=top):
                frame[dst] = wrap(((frame[ai] if ai >= 0 else ac) % top)
                                  >> ((frame[bi] if bi >= 0 else bc) % bits))
            return op
        raise InterpreterError(f"unknown binop {opcode}")

    def _compile_icmp(self, inst: ICmp):
        ai, ac = self.operand(inst.lhs)
        bi, bc = self.operand(inst.rhs)
        dst = self.slots[id(inst)]
        predicate = inst.predicate
        fn = _ICMP_FN[predicate]

        def op(interp, frame, ai=ai, ac=ac, bi=bi, bc=bc, dst=dst, fn=fn,
               predicate=predicate):
            a = frame[ai] if ai >= 0 else ac
            b = frame[bi] if bi >= 0 else bc
            if isinstance(a, Pointer) or isinstance(b, Pointer):
                frame[dst] = 1 if pointer_compare(predicate, a, b) else 0
            else:
                frame[dst] = 1 if fn(a, b) else 0
        return op

    def _compile_gep(self, inst: GetElementPtr):
        pi, pc = self.operand(inst.pointer)
        dst = self.slots[id(inst)]
        current = inst.pointer.type.pointee
        scales = [ir_ty.sizeof(current)]
        for _ in inst.indices[1:]:
            current = ir_ty.element_type(current)
            scales.append(ir_ty.sizeof(current))
        base = 0
        dynamic: List[Tuple[int, object, int]] = []
        for index_value, scale in zip(inst.indices, scales):
            si, sc = self.operand(index_value)
            if si < 0:
                base += int(sc) * scale
            else:
                dynamic.append((si, sc, scale))
        if not dynamic:
            def op(interp, frame, pi=pi, pc=pc, dst=dst, base=base):
                pointer = frame[pi] if pi >= 0 else pc
                frame[dst] = Pointer(pointer.buffer, pointer.offset + base)
            return op
        if len(dynamic) == 1:
            i0, _, s0 = dynamic[0]

            def op(interp, frame, pi=pi, pc=pc, dst=dst, base=base, i0=i0,
                   s0=s0):
                pointer = frame[pi] if pi >= 0 else pc
                frame[dst] = Pointer(
                    pointer.buffer,
                    pointer.offset + base + int(frame[i0]) * s0)
            return op
        if len(dynamic) == 2:
            i0, _, s0 = dynamic[0]
            i1, _, s1 = dynamic[1]

            def op(interp, frame, pi=pi, pc=pc, dst=dst, base=base, i0=i0,
                   s0=s0, i1=i1, s1=s1):
                pointer = frame[pi] if pi >= 0 else pc
                frame[dst] = Pointer(
                    pointer.buffer,
                    pointer.offset + base + int(frame[i0]) * s0
                    + int(frame[i1]) * s1)
            return op
        spec = tuple(dynamic)

        def op(interp, frame, pi=pi, pc=pc, dst=dst, base=base, spec=spec):
            pointer = frame[pi] if pi >= 0 else pc
            offset = pointer.offset + base
            for si, _, scale in spec:
                offset += int(frame[si]) * scale
            frame[dst] = Pointer(pointer.buffer, offset)
        return op

    def _compile_cast(self, inst: Cast):
        vi, vc = self.operand(inst.value)
        dst = self.slots[id(inst)]
        opcode = inst.opcode
        if opcode in ("sext", "bitcast", "inttoptr", "ptrtoint"):
            def op(interp, frame, vi=vi, vc=vc, dst=dst):
                frame[dst] = frame[vi] if vi >= 0 else vc
            return op
        if opcode == "zext":
            modulus = 1 << inst.value.type.bits

            def op(interp, frame, vi=vi, vc=vc, dst=dst, modulus=modulus):
                frame[dst] = (frame[vi] if vi >= 0 else vc) % modulus
            return op
        if opcode in ("trunc", "fptosi"):
            wrap = inst.type.wrap

            def op(interp, frame, vi=vi, vc=vc, dst=dst, wrap=wrap):
                frame[dst] = wrap(int(frame[vi] if vi >= 0 else vc))
            return op
        if opcode == "sitofp":
            def op(interp, frame, vi=vi, vc=vc, dst=dst):
                frame[dst] = float(frame[vi] if vi >= 0 else vc)
            return op
        raise InterpreterError(f"unknown cast {opcode}")

    def _compile_call(self, inst: Call, cost: _BlockCost):
        arg_specs = tuple(self.operand(a) for a in inst.args)
        dst = self.slots.get(id(inst))  # None for void calls
        callee = inst.callee
        if isinstance(callee, Function):
            name = callee.name
            cost.add("call", name)

            def op(interp, frame, arg_specs=arg_specs, dst=dst,
                   callee=callee, name=name, inst=inst):
                args = [frame[i] if i >= 0 else c for i, c in arg_specs]
                if callee.blocks:
                    result = interp.call_function(callee, args)
                else:
                    handler = interp.externals.get(name)
                    if handler is None:
                        raise InterpreterError(
                            f"call to unknown external '{name}'")
                    result = handler(interp, inst, args)
                if dst is not None:
                    frame[dst] = result
            return op

        # Indirect call: the callee (and hence the charge) is only known
        # at run time, so this instruction is excluded from the block
        # aggregate and charges through the walker's charge() path.
        ci, cc = self.operand(callee)

        def op(interp, frame, arg_specs=arg_specs, dst=dst, ci=ci, cc=cc,
               inst=inst):
            target = frame[ci] if ci >= 0 else cc
            args = [frame[i] if i >= 0 else c for i, c in arg_specs]
            name = getattr(target, "name", "")
            interp.charge("call", name)
            if isinstance(target, Function) and not target.is_declaration:
                result = interp.call_function(target, args)
            elif name in interp.externals:
                result = interp.externals[name](interp, inst, args)
            else:
                raise InterpreterError(f"call to unknown external '{name}'")
            if dst is not None:
                frame[dst] = result
        return op


class _UndefinedOperand(InterpreterError):
    def __init__(self, value: Value):
        super().__init__(f"use of undefined value {value}")
        self.value = value


def compile_function(function: Function) -> CompiledFunction:
    """Lower ``function`` to slot-indexed executable form (uncached)."""
    if function.is_declaration:
        raise InterpreterError(
            f"cannot compile declaration @{function.name}")
    return _FunctionLowering(function).compile()


# Cache ----------------------------------------------------------------------

def structure_token(function: Function) -> Tuple:
    """A cheap structural fingerprint of a function's current shape.

    Captures block/instruction identities, opcodes, predicates, and
    operand identities — anything a transforming pass can change that
    the lowered closures bake in.  Token mismatch means the cached code
    was compiled from a different shape and must be dropped.
    """
    parts: List[object] = [len(function.blocks)]
    append = parts.append
    for block in function.blocks:
        append(id(block))
        for inst in block.instructions:
            append(id(inst))
            append(inst.opcode)
            predicate = getattr(inst, "predicate", None)
            if predicate is not None:
                append(predicate)
            for operand in inst.operands:
                append(id(operand))
    return tuple(parts)


def _current_fingerprint() -> str:
    """The service layer's pipeline fingerprint (lazily imported)."""
    from ..service.cache import pipeline_fingerprint
    return pipeline_fingerprint()


@dataclass
class CodeCacheStats:
    compiles: int = 0
    hits: int = 0
    invalidations: int = 0
    evictions: int = 0


#: Engine name → function compiler.  ``compile.py`` registers the
#: closure engine here; :mod:`repro.runtime.trace` registers ``trace``
#: when imported (``code_for`` imports it lazily to avoid a cycle).
_COMPILERS: Dict[str, object] = {}


class CodeCache:
    """Process-global LRU of compiled functions.

    Entries are keyed by ``(id(function), engine)`` and pinned by a
    strong reference (so an id can never be reused while its entry
    lives); each hit is validated against the function's current
    :func:`structure_token` and the pipeline fingerprint, so mutation
    by any pass — AnalysisManager-driven or not — invalidates lazily
    on the next fetch.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self.stats = CodeCacheStats()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def code_for(self, function: Function,
                 engine: str = "compiled") -> CompiledFunction:
        key = (id(function), engine)
        fingerprint = _current_fingerprint()
        entry = self._entries.get(key)
        if entry is not None:
            cached_fn, token, cached_fp, code = entry
            if (cached_fn is function and cached_fp == fingerprint
                    and token == structure_token(function)):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return code
            self.stats.invalidations += 1
            del self._entries[key]
        code = _COMPILERS[engine](function)
        self.stats.compiles += 1
        self._entries[key] = (function, structure_token(function),
                              fingerprint, code)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return code

    def invalidate(self, function: Function) -> bool:
        dropped = False
        for engine in tuple(_COMPILERS):
            entry = self._entries.pop((id(function), engine), None)
            if entry is not None:
                self.stats.invalidations += 1
                dropped = True
        return dropped

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_CODE_CACHE = CodeCache()


def global_code_cache() -> CodeCache:
    return _CODE_CACHE


def invalidate_code(function: Function) -> bool:
    """Drop ``function``'s compiled code from the global cache."""
    return _CODE_CACHE.invalidate(function)


def clear_code_cache() -> None:
    _CODE_CACHE.clear()


def code_for(function: Function, analysis_manager=None,
             engine: str = "compiled"):
    """Executable code for ``function`` under ``engine``.

    With an :class:`~repro.analysis.manager.AnalysisManager`, the code
    is produced through the registered ``compiled-code`` (or
    ``trace-code``) function analysis, so pass pipelines invalidate it
    via PreservedAnalyses like any other analysis.  Otherwise it comes
    from the global token-validated LRU.
    """
    if engine == "trace":
        from .trace import TRACE_CODE
        if analysis_manager is not None:
            return analysis_manager.get(TRACE_CODE, function)
        return _CODE_CACHE.code_for(function, "trace")
    if analysis_manager is not None:
        return analysis_manager.get(COMPILED_CODE, function)
    return _CODE_CACHE.code_for(function, "compiled")


_COMPILERS["compiled"] = compile_function
register_function_analysis(COMPILED_CODE,
                           lambda function, am: compile_function(function))
