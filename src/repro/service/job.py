"""The batch-service job model.

A :class:`Job` is one decompilation request: source text (mini-C or
textual ``.ll`` IR) plus a :class:`JobConfig` describing the pipeline
to run over it.  A :class:`JobResult` is what the service hands back:
a structured record that is *always* produced — successful payload,
degraded payload, or a failure record — never an exception escaping
the batch.

Everything here round-trips through plain dicts (``to_dict`` /
``from_dict``) so jobs can cross process boundaries under any
multiprocessing start method and payloads can live in the on-disk
artifact cache as JSON.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .reporting import JobTelemetry


class JobStatus(enum.Enum):
    OK = "ok"                 # full pipeline succeeded (or cache hit)
    DEGRADED = "degraded"     # succeeded only after dropping parallelization
    FAILED = "failed"         # retry + degradation budget exhausted

    def __str__(self) -> str:  # telemetry tables print the bare value
        return self.value


@dataclass(frozen=True)
class JobConfig:
    """Pipeline configuration for one job (part of the cache key).

    ``tools`` names extra decompilers to run besides the primary
    SPLENDID ``variant``: any of ``rellic`` / ``ghidra`` / ``cbackend``
    or another SPLENDID variant spelled ``splendid-v1`` /
    ``splendid-portable`` / ``splendid``.  ``emit_ir`` additionally
    returns the printed sequential and parallel IR (what the eval
    harness reconstructs :class:`~repro.ir.module.Module` objects
    from).
    """

    optimize: bool = True
    parallelize: bool = True
    reductions: bool = False
    variant: str = "full"
    lint: bool = False
    tools: Tuple[str, ...] = ()
    emit_ir: bool = False
    only_functions: Optional[Tuple[str, ...]] = None
    # Interpreter execution engine for anything the worker runs
    # (lint self-checks and the like): "trace", "compiled", "walk", or
    # None for the process default.
    engine: Optional[str] = None
    # Interpreter memory model: "flat", "dict", or None for the
    # process default.
    memory: Optional[str] = None
    # Control-flow structuring engine: "legacy" (pattern matcher) or
    # "region" (region/schema engine for arbitrary CFGs).
    structurer: str = "legacy"

    def degraded(self) -> "JobConfig":
        """The config of the degradation ladder's last rung."""
        return replace(self, parallelize=False, reductions=False)

    def to_dict(self) -> dict:
        return {
            "optimize": self.optimize,
            "parallelize": self.parallelize,
            "reductions": self.reductions,
            "variant": self.variant,
            "lint": self.lint,
            "tools": list(self.tools),
            "emit_ir": self.emit_ir,
            "only_functions": (None if self.only_functions is None
                               else list(self.only_functions)),
            "engine": self.engine,
            "memory": self.memory,
            "structurer": self.structurer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobConfig":
        structurer = data.get("structurer", "legacy")
        if structurer not in ("legacy", "region"):
            raise ValueError(f"unknown structurer {structurer!r}; "
                             f"choose from ('legacy', 'region')")
        return cls(
            optimize=data.get("optimize", True),
            parallelize=data.get("parallelize", True),
            reductions=data.get("reductions", False),
            variant=data.get("variant", "full"),
            lint=data.get("lint", False),
            tools=tuple(data.get("tools") or ()),
            emit_ir=data.get("emit_ir", False),
            only_functions=(None if data.get("only_functions") is None
                            else tuple(data["only_functions"])),
            engine=data.get("engine"),
            memory=data.get("memory"),
            structurer=structurer,
        )


@dataclass
class Job:
    """One batch request: a translation unit plus its pipeline config.

    ``fault`` is a test-only seeded-fault spec interpreted by the
    worker (see :func:`repro.service.worker.apply_fault`); production
    jobs leave it ``None``.  Faulted jobs are cache-keyed separately so
    a seeded crash can never be satisfied from a clean entry.
    """

    name: str
    source: str
    defines: Dict[str, str] = field(default_factory=dict)
    is_ir: bool = False
    config: JobConfig = field(default_factory=JobConfig)
    fault: Optional[dict] = None

    @classmethod
    def from_file(cls, path: str, defines: Optional[Dict[str, str]] = None,
                  config: Optional[JobConfig] = None) -> "Job":
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        stem = os.path.splitext(os.path.basename(path))[0]
        return cls(name=stem, source=text, defines=dict(defines or {}),
                   is_ir=path.endswith(".ll"),
                   config=config or JobConfig())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "defines": dict(self.defines),
            "is_ir": self.is_ir,
            "config": self.config.to_dict(),
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            name=data["name"],
            source=data["source"],
            defines=dict(data.get("defines") or {}),
            is_ir=data.get("is_ir", False),
            config=JobConfig.from_dict(data.get("config") or {}),
            fault=data.get("fault"),
        )


@dataclass
class JobResult:
    """The service's per-job answer: payload or structured failure.

    ``cache`` records which tier served the job: ``memory``, ``disk``,
    ``miss`` (executed, cache enabled) or ``off`` (cache disabled).
    ``error`` carries the *last* failure message — still present on
    degraded results, where it explains why the full config lost.
    """

    name: str
    status: JobStatus
    payload: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 0
    degraded: bool = False
    cache: str = "off"
    telemetry: Optional[JobTelemetry] = None

    @property
    def ok(self) -> bool:
        return self.status is not JobStatus.FAILED

    @property
    def text(self) -> Optional[str]:
        """The primary decompiled C text (None for failures)."""
        return None if self.payload is None else self.payload.get("text")
