"""The job executor that runs inside pool worker processes.

:func:`execute_job` is a pure function from a job dict to a payload
dict (both plain JSON-able data), so it works under any
multiprocessing start method and its output can go straight into the
artifact cache.  :func:`worker_main` is the long-lived process loop:
receive ``(job_dict, attempt, degraded)``, answer ``("ok", payload)``
or ``("error", info)`` — an exception inside a job never kills the
worker, only a timeout or a hard crash does (and the scheduler
restarts it).

Seeded faults (``job["fault"]``) are the test hooks for the fault
paths: ``raise`` / ``hang`` / ``exit`` on the first N attempts,
optionally only while parallelization is still enabled (so the
degradation ladder can be exercised deterministically).
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Optional, Tuple

#: Sentinel telling a worker loop to exit cleanly.
STOP = "__repro_service_stop__"


def apply_fault(fault: Optional[dict], attempt: int, parallelize: bool) -> None:
    """Misbehave per a seeded-fault spec (no-op for production jobs).

    Spec keys: ``mode`` (``raise`` / ``hang`` / ``exit``), ``attempts``
    (misbehave on attempts 1..N; default: always), ``only_parallel``
    (only while the effective config still parallelizes — the degraded
    rung then succeeds), ``seconds`` / ``code`` / ``message`` tuning.
    """
    if not fault:
        return
    if fault.get("only_parallel") and not parallelize:
        return
    if attempt > int(fault.get("attempts", 10 ** 9)):
        return
    mode = fault.get("mode")
    if mode == "raise":
        raise RuntimeError(fault.get("message", "seeded worker fault"))
    if mode == "hang":
        time.sleep(float(fault.get("seconds", 3600.0)))
    elif mode == "exit":
        os._exit(int(fault.get("code", 13)))


def _splendid_text(module, variant: str, analysis_manager) -> str:
    from ..core import Splendid
    return Splendid(module, variant,
                    analysis_manager=analysis_manager).decompile_text()


def _tool_text(module, tool: str, analysis_manager) -> str:
    if tool.startswith("splendid"):
        variant = {"splendid": "full", "splendid-v1": "v1",
                   "splendid-portable": "portable"}[tool]
        return _splendid_text(module, variant, analysis_manager)
    from ..decompilers import cbackend, ghidra, rellic
    impl = {"rellic": rellic, "ghidra": ghidra, "cbackend": cbackend}[tool]
    return impl.decompile(module)


def execute_job(job_dict: dict, attempt: int = 1,
                degraded: bool = False) -> dict:
    """Run the full pipeline for one job and return its payload.

    Raises on any pipeline error; the caller (worker loop or inline
    executor) owns converting that into retry/degrade decisions.
    """
    from ..analysis.manager import AnalysisManager
    from ..core import Splendid
    from ..core.pipeline import options_for
    from ..frontend import compile_source
    from ..ir import parse_ir, print_module, verify_module
    from ..passes import optimize_o2
    from ..polly import parallelize_module
    from .job import Job

    job = Job.from_dict(job_dict)
    config = job.config.degraded() if degraded else job.config
    apply_fault(job.fault, attempt, config.parallelize and not job.is_ir)

    if config.engine is not None:
        # Pin the interpreter engine for everything this job executes
        # (lint self-checks interpret the module).  Worker processes are
        # single-job at a time, so a process-wide default is safe.
        from ..runtime import set_default_engine
        set_default_engine(config.engine)
    if config.memory is not None:
        from ..runtime import set_default_memory
        set_default_memory(config.memory)

    am = AnalysisManager()
    seq_ir = par_ir = None
    polly = None
    if job.is_ir:
        module = parse_ir(job.source)
    else:
        module = compile_source(job.source, job.defines, module_name=job.name)
        if config.optimize:
            optimize_o2(module, analysis_manager=am)
        if config.emit_ir:
            seq_ir = print_module(module)
        if config.parallelize:
            only = (None if config.only_functions is None
                    else list(config.only_functions))
            polly = parallelize_module(
                module, enable_reductions=config.reductions,
                only_functions=only, analysis_manager=am)
    verify_module(module, analysis_manager=am)
    if config.emit_ir:
        par_ir = print_module(module)

    splendid = Splendid(module, config.variant, analysis_manager=am,
                        structurer=config.structurer)
    diagnostics = None
    lint_ok = None
    if config.lint:
        checked = splendid.decompile_checked()
        text = checked.text
        lint_ok = checked.ok
        diagnostics = {
            "ok": checked.diagnostics.ok,
            "errors": len(checked.diagnostics.errors),
            "warnings": len(checked.diagnostics.warnings),
            "diagnostics": [d.to_dict()
                            for d in checked.diagnostics.diagnostics],
        }
    else:
        text = splendid.decompile_text()

    primary = options_for(config.variant).name
    decompiled = {primary: text}
    for tool in config.tools:
        if tool not in decompiled:
            decompiled[tool] = _tool_text(module, tool, am)

    restoration = None
    if config.variant == "full":
        stats = splendid.restoration_stats()
        restoration = {"total": stats.total, "restored": stats.restored}

    structuring = splendid.structuring_stats()
    structuring = structuring.to_dict() if structuring is not None else None

    fission = None
    if polly is not None:
        # The decompile-side re-fusion counter belongs to the same
        # fission story; merge it before serializing.
        polly.fission.refused += splendid.refused_loops()
        fission = {
            "stats": polly.fission.to_dict(),
            "outcomes": [outcome_to_dict(o) for o in polly.fission_outcomes],
        }

    return {
        "name": job.name,
        "text": text,
        "primary": primary,
        "decompiled": decompiled,
        "lint_ok": lint_ok,
        "diagnostics": diagnostics,
        "seq_ir": seq_ir,
        "par_ir": par_ir,
        "polly": (None if polly is None else
                  [outcome_to_dict(o) for o in polly.outcomes]),
        "fission": fission,
        "restoration": restoration,
        "structuring": structuring,
        "degraded": degraded,
    }


def outcome_to_dict(outcome) -> dict:
    import dataclasses
    return dataclasses.asdict(outcome)


def polly_result_from_payload(outcomes, fission=None):
    """Rebuild a :class:`~repro.polly.PollyResult` from payload dicts."""
    from ..polly.fission import FissionOutcome, FissionStats
    from ..polly.parallelizer import LoopOutcome, PollyResult
    result = PollyResult()
    for data in outcomes or []:
        result.outcomes.append(LoopOutcome(**data))
    if fission:
        result.fission = FissionStats.from_dict(fission.get("stats"))
        result.fission_outcomes = [
            FissionOutcome(**data) for data in fission.get("outcomes") or []]
    return result


def worker_main(conn) -> None:
    """Long-lived worker loop over a duplex pipe to the scheduler."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message == STOP:
            break
        job_dict, attempt, degraded = message
        try:
            payload = execute_job(job_dict, attempt=attempt,
                                  degraded=degraded)
            reply: Tuple[str, dict] = ("ok", payload)
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # noqa: BLE001 — isolate *any* job error
            reply = ("error", {
                "type": type(exc).__name__,
                "message": str(exc) or type(exc).__name__,
                "traceback": traceback.format_exc(),
            })
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
