"""Service telemetry: per-job records and the aggregate report.

Mirrors the shape of :class:`repro.passes.PassTimingReport`: a list of
per-item records with a slowest-first text table and a stable JSON
form, plus batch-level aggregates (cache hit rate, retries, worker
restarts, throughput).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class JobTelemetry:
    """What the scheduler observed about one job.

    ``queue_seconds`` is submit -> first attempt start; ``run_seconds``
    spans first attempt start -> final outcome (so it includes backoff
    waits and degraded retries).  ``restarts`` counts pool workers this
    job killed (timeouts and crashes); in-worker exceptions retry on a
    live worker and cost no restart.
    """

    name: str
    status: str
    attempts: int = 0
    restarts: int = 0
    degraded: bool = False
    cache: str = "off"
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def cache_hit(self) -> bool:
        return self.cache in ("memory", "disk")

    def to_dict(self) -> dict:
        return {
            "job": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "restarts": self.restarts,
            "degraded": self.degraded,
            "cache": self.cache,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "error": self.error,
        }


class ServiceReport:
    """Batch-level telemetry with text and JSON renderers."""

    def __init__(self, workers: int = 0):
        self.entries: List[JobTelemetry] = []
        self.workers = workers
        self.wall_seconds = 0.0
        self.worker_restarts = 0
        self.cache_stats: Optional[dict] = None   # lifetime ArtifactCache stats

    def add(self, entry: JobTelemetry) -> None:
        self.entries.append(entry)

    # Aggregates ---------------------------------------------------------------

    @property
    def total_jobs(self) -> int:
        return len(self.entries)

    def _count(self, status: str) -> int:
        return sum(1 for e in self.entries if e.status == status)

    @property
    def ok_jobs(self) -> int:
        return self._count("ok")

    @property
    def degraded_jobs(self) -> int:
        return self._count("degraded")

    @property
    def failed_jobs(self) -> int:
        return self._count("failed")

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.entries if e.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.entries if e.cache == "miss")

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_retries(self) -> int:
        return sum(e.retries for e in self.entries)

    @property
    def queue_seconds(self) -> float:
        """Total submit -> worker-start wait across the batch — the
        piece of wall time a bigger pool (or a gateway shedding more
        load) would claw back, as opposed to compute."""
        return sum(e.queue_seconds for e in self.entries)

    @property
    def mean_queue_seconds(self) -> float:
        return self.queue_seconds / len(self.entries) if self.entries else 0.0

    @property
    def run_seconds(self) -> float:
        """Total first-attempt-start -> outcome time across the batch."""
        return sum(e.run_seconds for e in self.entries)

    @property
    def throughput(self) -> float:
        """Completed jobs per second of batch wall time."""
        return self.total_jobs / self.wall_seconds if self.wall_seconds else 0.0

    # Renderers ----------------------------------------------------------------

    def render_text(self) -> str:
        """A pass-timing-style table, slowest job first."""
        header = (f"{'job':<20} {'status':<9} {'tries':>5} {'restarts':>8} "
                  f"{'cache':<7} {'queue(ms)':>10} {'run(ms)':>9}")
        lines = ["=== service report ===", header, "-" * len(header)]
        for e in sorted(self.entries, key=lambda e: -e.run_seconds):
            lines.append(
                f"{e.name:<20} {e.status:<9} {e.attempts:>5} {e.restarts:>8} "
                f"{e.cache:<7} {e.queue_seconds * 1e3:>10.1f} "
                f"{e.run_seconds * 1e3:>9.1f}")
        lines.append("-" * len(header))
        lines.append(
            f"total: {self.total_jobs} jobs ({self.ok_jobs} ok, "
            f"{self.degraded_jobs} degraded, {self.failed_jobs} failed) "
            f"in {self.wall_seconds * 1e3:.1f} ms "
            f"({self.throughput:.1f} jobs/s, pool={self.workers}); "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%} hit rate); "
            f"{self.total_retries} retries, "
            f"{self.worker_restarts} worker restarts; "
            f"queue {self.queue_seconds * 1e3:.1f} ms total "
            f"({self.mean_queue_seconds * 1e3:.1f} ms/job), "
            f"run {self.run_seconds * 1e3:.1f} ms total")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "jobs": [e.to_dict() for e in self.entries],
            "total_jobs": self.total_jobs,
            "ok": self.ok_jobs,
            "degraded": self.degraded_jobs,
            "failed": self.failed_jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "retries": self.total_retries,
            "worker_restarts": self.worker_restarts,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "queue_seconds": self.queue_seconds,
            "mean_queue_seconds": self.mean_queue_seconds,
            "run_seconds": self.run_seconds,
            "throughput": self.throughput,
            "cache_stats": self.cache_stats,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)
