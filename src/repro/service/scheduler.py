"""The batch scheduler: a fault-isolated multiprocessing worker pool.

:class:`BatchService` accepts a list of :class:`~repro.service.job
.Job` and returns a :class:`BatchResult` — one structured
:class:`~repro.service.job.JobResult` per job, in submission order,
plus an aggregate :class:`~repro.service.reporting.ServiceReport`.

Fault model (the reason this exists):

* every attempt runs under a **per-job timeout**; a worker that hangs
  past it is killed (``terminate`` then ``kill``) and replaced — the
  pool itself never wedges;
* a worker that **crashes** (nonzero exit, ``os._exit``, OOM-kill)
  surfaces as EOF on its pipe; the job is charged, the worker is
  replaced, and later jobs are unaffected;
* a job that **raises** inside a healthy worker just reports the
  error — the worker stays up;
* failures walk a ladder: retry with exponential backoff up to
  ``max_retries``, then (for parallelizing jobs) one **degraded**
  attempt with parallelization disabled, then a structured failure
  record.  ``run()`` never raises because of a job.

``max_workers=0`` executes jobs inline (no subprocesses): same
ladder, same telemetry, but no timeout/crash isolation — the mode the
serial baselines and quick scripts use.  Results of fully-successful
runs are stored in the :class:`~repro.service.cache.ArtifactCache`
(when configured); cache hits short-circuit scheduling entirely.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Deque, List, Optional

from .cache import ArtifactCache
from .job import Job, JobResult, JobStatus
from .reporting import JobTelemetry, ServiceReport
from .worker import STOP, execute_job, worker_main

#: Hard floor for terminate->kill escalation when reaping a worker.
_REAP_GRACE = 2.0


@dataclass
class _PendingJob:
    """Scheduler-side state for one not-yet-finished job."""

    job: Job
    index: int
    key: Optional[str]
    attempts: int = 0                 # attempts actually started
    degraded: bool = False            # on the ladder's last rung
    restarts: int = 0                 # workers this job took down
    not_before: float = 0.0           # backoff gate (monotonic)
    submitted_at: float = 0.0
    first_started_at: Optional[float] = None
    last_error: Optional[str] = None


class _Worker:
    """One pool slot: a process plus its duplex pipe."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=worker_main, args=(child_conn,),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.current: Optional[_PendingJob] = None
        self.deadline: float = 0.0

    @property
    def busy(self) -> bool:
        return self.current is not None

    def assign(self, pending: _PendingJob, timeout: float) -> None:
        self.current = pending
        self.deadline = time.monotonic() + timeout
        self.conn.send((pending.job.to_dict(), pending.attempts,
                        pending.degraded))

    def reap(self) -> None:
        """Forcibly stop the process and close the pipe."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(_REAP_GRACE)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(_REAP_GRACE)

    def stop(self) -> None:
        """Ask the process to exit cleanly, then make sure it did."""
        try:
            self.conn.send(STOP)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(0.5)
        self.reap()


@dataclass
class BatchResult:
    """Everything one ``run()`` produced, in submission order."""

    results: List[JobResult] = field(default_factory=list)
    report: ServiceReport = field(default_factory=ServiceReport)

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def by_name(self, name: str) -> JobResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


class BatchService:
    """Schedules jobs onto a pool with retries, degradation and cache.

    ``max_workers=None`` sizes the pool to ``os.cpu_count()``;
    ``max_workers=0`` runs inline.  ``max_retries`` is the number of
    *extra* full-config attempts after the first; the degraded rung
    (parallelization off) adds at most one more.  One service may run
    several batches; workers and the cache's memory tier stay warm in
    between.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 timeout: float = 60.0,
                 max_retries: int = 2,
                 backoff: float = 0.05,
                 degrade: bool = True,
                 start_method: Optional[str] = None):
        if max_workers is None:
            max_workers = mp.cpu_count()
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.max_workers = max_workers
        self.cache = cache
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.degrade = degrade
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else None)
        self._ctx = mp.get_context(start_method)
        self._workers: List[_Worker] = []
        self.worker_restarts = 0    # lifetime, across batches

    # Lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def __enter__(self) -> "BatchService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Submission ---------------------------------------------------------------

    def run_one(self, job: Job) -> JobResult:
        return self.run([job]).results[0]

    def run(self, jobs: List[Job]) -> BatchResult:
        report = ServiceReport(workers=self.max_workers)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: Deque[_PendingJob] = deque()
        started = time.monotonic()
        restarts_before = self.worker_restarts

        for index, job in enumerate(jobs):
            key = (self.cache.key_for_job(job)
                   if self.cache is not None else None)
            if key is not None:
                lookup_started = time.monotonic()
                tier, payload = self.cache.get_with_tier(key)
                if tier:
                    results[index] = JobResult(
                        name=job.name, status=JobStatus.OK, payload=payload,
                        cache=tier, telemetry=JobTelemetry(
                            name=job.name, status="ok", cache=tier,
                            run_seconds=time.monotonic() - lookup_started))
                    continue
            pending.append(_PendingJob(job=job, index=index, key=key,
                                       submitted_at=time.monotonic()))

        if pending:
            if self.max_workers == 0:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)

        for result in results:
            report.add(result.telemetry)
        report.wall_seconds = time.monotonic() - started
        report.worker_restarts = self.worker_restarts - restarts_before
        if self.cache is not None:
            report.cache_stats = self.cache.stats.to_dict()
        return BatchResult(results=list(results), report=report)

    # Shared ladder accounting -------------------------------------------------

    def _next_step(self, pending: _PendingJob, error: str) -> Optional[str]:
        """Decide the rung after a failed attempt.

        Returns ``"retry"`` (same config, after backoff), ``"degrade"``
        (parallelization off), or None (budget exhausted -> fail).
        Mutates ``pending`` accordingly.
        """
        pending.last_error = error
        if not pending.degraded and pending.attempts <= self.max_retries:
            pending.not_before = (time.monotonic()
                                  + self.backoff * (2 ** (pending.attempts - 1)))
            return "retry"
        if (not pending.degraded and self.degrade
                and pending.job.config.parallelize
                and not pending.job.is_ir):
            pending.degraded = True
            pending.not_before = time.monotonic()
            return "degrade"
        return None

    def _finish(self, pending: _PendingJob,
                results: List[Optional[JobResult]],
                status: JobStatus, payload: Optional[dict]) -> None:
        now = time.monotonic()
        first = pending.first_started_at or now
        telemetry = JobTelemetry(
            name=pending.job.name, status=status.value,
            attempts=pending.attempts, restarts=pending.restarts,
            degraded=pending.degraded,
            cache="miss" if pending.key is not None else "off",
            queue_seconds=first - pending.submitted_at,
            run_seconds=now - first,
            error=pending.last_error if status is not JobStatus.OK else None)
        results[pending.index] = JobResult(
            name=pending.job.name, status=status, payload=payload,
            error=telemetry.error, attempts=pending.attempts,
            degraded=pending.degraded, cache=telemetry.cache,
            telemetry=telemetry)
        if (status is JobStatus.OK and pending.key is not None
                and self.cache is not None):
            self.cache.put(pending.key, payload)

    def _on_success(self, pending: _PendingJob,
                    results: List[Optional[JobResult]],
                    payload: dict) -> None:
        status = JobStatus.DEGRADED if pending.degraded else JobStatus.OK
        self._finish(pending, results, status, payload)

    def _on_failure(self, pending: _PendingJob,
                    results: List[Optional[JobResult]],
                    error: str, requeue) -> None:
        step = self._next_step(pending, error)
        if step is None:
            self._finish(pending, results, JobStatus.FAILED, None)
        else:
            requeue(pending)

    # Inline executor ----------------------------------------------------------

    def _run_inline(self, pending: Deque[_PendingJob],
                    results: List[Optional[JobResult]]) -> None:
        """Run the ladder in-process (no timeout/crash isolation)."""
        while pending:
            item = pending.popleft()
            delay = item.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            item.attempts += 1
            if item.first_started_at is None:
                item.first_started_at = time.monotonic()
            try:
                payload = execute_job(item.job.to_dict(),
                                      attempt=item.attempts,
                                      degraded=item.degraded)
            except Exception as exc:  # noqa: BLE001 — ladder owns errors
                self._on_failure(item, results,
                                 f"{type(exc).__name__}: {exc}",
                                 pending.appendleft)
            else:
                self._on_success(item, results, payload)

    # Pool executor ------------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        worker = _Worker(self._ctx)
        self._workers.append(worker)
        return worker

    def _replace_worker(self, worker: _Worker) -> None:
        worker.reap()
        self._workers.remove(worker)
        self.worker_restarts += 1

    def _run_pool(self, pending: Deque[_PendingJob],
                  results: List[Optional[JobResult]]) -> None:
        in_flight = 0
        while pending or in_flight:
            now = time.monotonic()

            # Assign ready jobs to idle (spawning as needed) workers.
            while pending and pending[0].not_before <= now:
                worker = next((w for w in self._workers if not w.busy), None)
                if worker is None:
                    busy = sum(1 for w in self._workers if w.busy)
                    if busy >= self.max_workers:
                        break
                    worker = self._spawn_worker()
                item = pending.popleft()
                item.attempts += 1
                if item.first_started_at is None:
                    item.first_started_at = time.monotonic()
                try:
                    worker.assign(item, self.timeout)
                except (BrokenPipeError, OSError):
                    # The idle worker died between jobs; charge the
                    # pool, not the job, and put the job back.
                    item.attempts -= 1
                    self._replace_worker(worker)
                    pending.appendleft(item)
                else:
                    in_flight += 1

            busy_workers = [w for w in self._workers if w.busy]
            if not busy_workers:
                if pending:
                    time.sleep(max(0.0,
                                   min(p.not_before for p in pending) - now))
                continue

            wait_until = min(w.deadline for w in busy_workers)
            if pending:
                wait_until = min(wait_until,
                                 min(p.not_before for p in pending))
            wait = max(0.0, min(wait_until - time.monotonic(), 0.1))
            ready = mp_connection.wait([w.conn for w in busy_workers],
                                       timeout=wait)

            for worker in list(busy_workers):
                if worker.conn not in ready:
                    continue
                item = worker.current
                try:
                    kind, body = worker.conn.recv()
                except (EOFError, OSError):
                    # Hard crash (os._exit, signal, OOM-kill): replace
                    # the worker; the ladder decides the job's fate.
                    worker.proc.join(_REAP_GRACE)  # reap for the exit code
                    code = worker.proc.exitcode
                    worker.current = None
                    self._replace_worker(worker)
                    item.restarts += 1
                    in_flight -= 1
                    self._on_failure(
                        item, results,
                        f"worker crashed (exit code {code})",
                        pending.append)
                    continue
                worker.current = None
                in_flight -= 1
                if kind == "ok":
                    self._on_success(item, results, body)
                else:
                    self._on_failure(
                        item, results,
                        f"{body.get('type', 'Error')}: "
                        f"{body.get('message', '')}",
                        pending.append)

            # Timeouts: anyone still busy past their deadline hangs.
            now = time.monotonic()
            for worker in list(self._workers):
                if worker.busy and now > worker.deadline:
                    item = worker.current
                    worker.current = None
                    self._replace_worker(worker)
                    item.restarts += 1
                    in_flight -= 1
                    self._on_failure(
                        item, results,
                        f"timeout: job exceeded {self.timeout:.1f}s "
                        f"and its worker was killed",
                        pending.append)
