"""repro.service — a fault-isolated batch decompilation service.

The interactive entry points (CLI, eval harness, collab sessions) all
run one translation unit at a time, in-process.  This package puts a
service layer in front of the same pipeline:

* :mod:`repro.service.job`       — the job model: source text (mini-C
  or textual IR) plus a pipeline config (optimize / parallelize /
  reductions / variant / lint), and the structured result record;
* :mod:`repro.service.cache`     — a persistent content-addressed
  artifact cache (in-memory LRU tier over a disk tier) keyed on
  (source hash, config, pipeline version), so repeat jobs skip the
  compile -> parallelize -> decompile pipeline entirely;
* :mod:`repro.service.worker`    — the per-process job executor (the
  only code that runs inside pool workers);
* :mod:`repro.service.scheduler` — :class:`BatchService`: a
  multiprocessing worker pool with per-job timeouts, retry-with-backoff
  and a degradation ladder (retry without parallelization, then a
  structured failure record — a crashing job never takes the sweep
  down with it);
* :mod:`repro.service.reporting` — per-job telemetry aggregated into a
  :class:`ServiceReport` with text/JSON renderers in the style of
  :class:`repro.passes.PassTimingReport`.

``repro batch`` is the CLI surface; ``repro.eval.pipeline`` and
``repro.collab`` reuse the cache and the pool programmatically.
"""

from .cache import (ArtifactCache, ArtifactCacheStats, pipeline_fingerprint)
from .job import Job, JobConfig, JobResult, JobStatus
from .reporting import JobTelemetry, ServiceReport
from .scheduler import BatchResult, BatchService
from .worker import execute_job

__all__ = [
    "ArtifactCache", "ArtifactCacheStats", "pipeline_fingerprint",
    "Job", "JobConfig", "JobResult", "JobStatus",
    "JobTelemetry", "ServiceReport",
    "BatchResult", "BatchService",
    "execute_job",
]
