"""Persistent content-addressed artifact cache.

Keys are SHA-256 digests over (source text, defines, job config, job
kind, pipeline version); payloads are the JSON job payloads the worker
produces.  Two tiers:

* an in-memory LRU (``memory_entries`` most recent payloads) serving
  repeat lookups within one service lifetime;
* a disk tier under ``cache_dir`` (``<key[:2]>/<key>.json``, written
  atomically) surviving across processes and sessions.

Every disk entry is stamped with the *pipeline fingerprint* — a hash
of the -O2 pass pipeline, the parallelizer's profitability threshold,
and every SPLENDID variant's decompiler options, plus a schema
version.  A fingerprint mismatch (an entry written before a pipeline
change) or a corrupt/truncated file is **evicted, never raised**: the
lookup degrades to a miss and the pipeline recomputes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

#: Bump when the cache entry layout itself changes shape.
SCHEMA_VERSION = 1

_FINGERPRINT: Optional[str] = None


def pipeline_fingerprint() -> str:
    """Version stamp for cache entries: hashes the pass pipeline.

    Derived from the registered -O2 pass names, the parallelizer's
    profitability threshold, and the decompiler options of every
    SPLENDID variant — so adding a pass, retuning Polly, or changing
    an emitter flag automatically invalidates every stale entry
    without anyone remembering to bump a constant.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from ..core.pipeline import VARIANTS, options_for
        from ..passes.pipeline import o2_pipeline
        from ..polly.parallelizer import MIN_PROFITABLE_COST
        passes = [p.name for p in o2_pipeline(verify_each=False)._passes]
        variants = {v: dataclasses.asdict(options_for(v)) for v in VARIANTS}
        blob = json.dumps({
            "schema": SCHEMA_VERSION,
            "passes": passes,
            "polly_min_cost": MIN_PROFITABLE_COST,
            "variants": variants,
        }, sort_keys=True, default=str)
        _FINGERPRINT = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    return _FINGERPRINT


@dataclass
class ArtifactCacheStats:
    """Lifetime counters (evictions = version-mismatched or corrupt
    disk entries removed during lookup; LRU drops count separately)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    lru_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "lru_evictions": self.lru_evictions,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Two-tier (LRU memory over disk) content-addressed payload cache.

    ``cache_dir=None`` keeps the memory tier only — handy for tests
    and for sessions that want reuse without touching the filesystem.

    Safe under concurrent access from many threads (the gateway hits
    one cache from its event loop, its dispatcher thread, and its
    session worker pool at once): the memory tier's LRU mutation and
    every stats counter are guarded by an internal lock.  Disk I/O
    happens outside the lock — the atomic write protocol already makes
    the disk tier safe across processes, so threads get it for free.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 memory_entries: int = 256,
                 version: Optional[str] = None):
        self.cache_dir = cache_dir
        self.memory_entries = memory_entries
        self.version = version or pipeline_fingerprint()
        self.stats = ArtifactCacheStats()
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()

    # Keys ---------------------------------------------------------------------

    def key_for(self, source: str, defines: Optional[Dict[str, str]],
                config, kind: str = "decompile",
                extra: Optional[dict] = None) -> str:
        """Content address of one request (includes the version stamp).

        ``config`` may be a :class:`~repro.service.job.JobConfig` or a
        plain dict; ``extra`` folds in anything else that changes the
        answer (e.g. a seeded-fault spec under test).
        """
        config_dict = (config.to_dict() if hasattr(config, "to_dict")
                       else dict(config or {}))
        blob = json.dumps({
            "kind": kind,
            "source": source,
            "defines": dict(defines or {}),
            "config": config_dict,
            "extra": extra,
            "version": self.version,
        }, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def key_for_job(self, job) -> str:
        return self.key_for(job.source, job.defines, job.config,
                            kind="ir" if job.is_ir else "decompile",
                            extra=({"fault": job.fault} if job.fault
                                   else None))

    # Lookup / store -----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Payload for ``key``, or None.  Never raises on bad entries."""
        tier, payload = self.get_with_tier(key)
        return payload if tier else None

    def get_with_tier(self, key: str):
        """(tier, payload): tier is ``"memory"``, ``"disk"`` or None."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return "memory", self._memory[key]
        payload = self._load_disk(key)
        with self._lock:
            if payload is not None:
                self.stats.disk_hits += 1
                self._remember(key, payload)
                return "disk", payload
            self.stats.misses += 1
            return None, None

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            self.stats.stores += 1
            self._remember(key, payload)
        if self.cache_dir is None:
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"version": self.version, "key": key, "payload": payload}
        # Atomic write: a reader (or a crash) can never observe a
        # half-written entry — it either sees the old file or the new.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            # A payload that cannot be serialized (or a full disk) only
            # costs persistence, never the batch.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the LRU tier (disk entries stay)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # Internals ----------------------------------------------------------------

    def _remember(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.lru_evictions += 1

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _load_disk(self, key: str) -> Optional[dict]:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if (not isinstance(entry, dict)
                    or entry.get("version") != self.version
                    or entry.get("key") != key
                    or not isinstance(entry.get("payload"), dict)):
                raise ValueError("stale or malformed cache entry")
            return entry["payload"]
        except FileNotFoundError:
            return None
        except (ValueError, OSError, UnicodeDecodeError):
            # Corrupt, truncated, or written by a different pipeline
            # version: evict so the slot is clean for the recompute.
            with self._lock:
                self.stats.evictions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
