"""Plain-text rendering of experiment results in paper-style layouts."""

from __future__ import annotations

from typing import List, Sequence

from .experiments import (Figure6, Figure7, Figure8, Figure9,
                          FissionReport, Table3, Table4)


def _table(header: Sequence[str], rows: List[Sequence[object]],
           title: str = "") -> str:
    columns = [list(map(str, col)) for col in
               zip(header, *[[_fmt(c) for c in row] for row in rows])]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_figure6(result: Figure6) -> str:
    rows = [(r.name, r.polly, r.splendid_clang, r.splendid_gcc)
            for r in result.rows]
    rows.append(("geomean", result.geomean_polly, result.geomean_clang,
                 result.geomean_gcc))
    return _table(
        ("benchmark", "Polly", "SPLENDID->Clang", "SPLENDID->GCC"), rows,
        "Figure 6: speedup over sequential (28 simulated threads)")


def render_figure7(result: Figure7) -> str:
    rows = [(r.name,
             f"{r.scores['rellic']:.4f}", f"{r.scores['ghidra']:.4f}",
             f"{r.scores['splendid-v1']:.4f}",
             f"{r.scores['splendid-portable']:.4f}",
             f"{r.scores['splendid']:.4f}")
            for r in result.rows]
    rows.append(("average",
                 f"{result.average('rellic'):.4f}",
                 f"{result.average('ghidra'):.4f}",
                 f"{result.average('splendid-v1'):.4f}",
                 f"{result.average('splendid-portable'):.4f}",
                 f"{result.average('splendid'):.4f}"))
    return _table(
        ("benchmark", "Rellic", "Ghidra", "SPLENDID-v1", "Portable", "Full"),
        rows, "Figure 7: BLEU-4 vs reference OpenMP code (0..1)")


def render_table4(result: Table4) -> str:
    rows = []
    for r in result.rows:
        ref = r.reference or 1
        rows.append((r.name,
                     f"{r.ghidra} ({r.ghidra / ref:.1f}x)",
                     f"{r.rellic} ({r.rellic / ref:.1f}x)",
                     f"{r.splendid} ({r.splendid / ref:.1f}x)",
                     r.reference,
                     r.par_ghidra, r.par_rellic, r.par_splendid))
    total_ref = result.total("reference") or 1
    rows.append(("Total",
                 f"{result.total('ghidra')} "
                 f"({result.total('ghidra') / total_ref:.1f}x)",
                 f"{result.total('rellic')} "
                 f"({result.total('rellic') / total_ref:.1f}x)",
                 f"{result.total('splendid')} "
                 f"({result.total('splendid') / total_ref:.1f}x)",
                 result.total("reference"),
                 result.total("par_ghidra"), result.total("par_rellic"),
                 result.total("par_splendid")))
    return _table(
        ("benchmark", "Ghidra", "Rellic", "SPLENDID", "Ref",
         "par(G)", "par(R)", "par(S)"), rows,
        "Table 4: LoC vs reference, and parallel-representation LoC")


def render_figure8(result: Figure8) -> str:
    rows = [(r.name, r.restored, r.total, f"{r.percent:.1f}%")
            for r in result.rows]
    rows.append(("average", "", "", f"{result.average_percent:.1f}%"))
    return _table(("benchmark", "restored", "total", "percent"), rows,
                  "Figure 8: variables restored to source names")


def render_table3(result: Table3) -> str:
    rows = [(r.name, r.programmer, r.compiler, r.total, r.eliminated_manual)
            for r in result.rows]
    totals = result.totals()
    rows.append(("Total", totals.programmer, totals.compiler,
                 sum(r.total for r in result.rows),
                 sum(r.eliminated_manual for r in result.rows)))
    return _table(
        ("benchmark", "programmer", "compiler", "total", "eliminated"),
        rows, "Table 3: parallelizable loops")


def render_figure9(result: Figure9) -> str:
    rows = [(r.name, r.manual_only, r.compiler_only, r.collaborative,
             r.edit_loc) for r in result.rows]
    return _table(
        ("benchmark", "manual", "compiler", "collab", "edit LoC"), rows,
        "Figure 9: collaborative parallelization speedups")


def render_structure(result: "StructureTable") -> str:
    rows = []
    for r in result.rows:
        legacy, region = r.reports["legacy"], r.reports["region"]
        rows.append((r.name, legacy.gotos, region.gotos,
                     legacy.max_nesting_depth, region.max_nesting_depth,
                     f"{legacy.avg_condition_ops:.2f}",
                     f"{region.avg_condition_ops:.2f}"))
    rows.append(("Total", result.total_gotos("legacy"),
                 result.total_gotos("region"), "", "", "", ""))
    return _table(
        ("benchmark", "gotos(L)", "gotos(R)", "nest(L)", "nest(R)",
         "cond(L)", "cond(R)"),
        rows, "Structure quality: legacy vs region structurer")


def render_fission(result: "FissionReport") -> str:
    rows = []
    for r in result.rows:
        measured = (f"{r.measured_speedup:.2f}x"
                    if r.measured_speedup is not None else "-")
        rows.append((r.name, r.considered, r.split, r.subloops,
                     r.parallelized, r.vetoed, r.expanded, r.refused,
                     f"{r.modeled_speedup:.2f}x", measured))
    return _table(
        ("kernel", "mixed", "split", "subloops", "parallel", "vetoed",
         "expanded", "re-fused", "modeled", "measured"),
        rows, "Fission: partial parallelization of mixed loops")
