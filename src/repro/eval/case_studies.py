"""Case-study drivers: Figures 1, 2, 3, 5, 10 and 11.

Each reproduces one worked example from the paper on the real pipeline
(no canned strings): the motivating jacobi-1d loop, the MayAlias
runtime-check study, the unroll/distribute naturalness display, the
variable-map tables of Figure 5, and the BLEU calculations of the
appendix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.alias import base_object
from ..analysis.manager import get_loop_info
from ..core import Splendid, decompile
from ..core.variables import (MostRecentDefinitions, propose_variables,
                              remove_conflicts)
from ..decompilers import ghidra, rellic
from ..frontend import compile_source
from ..ir import types as ir_ty
from ..ir.builder import IRBuilder
from ..ir.metadata import DILocalVariable
from ..ir.module import Function, Module
from ..metrics import bleu, bleu_score
from ..passes import optimize_o2
from ..passes.loop_distribute import distribute_loop
from ..passes.loop_unroll import unroll_innermost
from ..polly import parallelize_module
from ..runtime import Interpreter


# ---------------------------------------------------------------------------
# Figure 1: the motivating example
# ---------------------------------------------------------------------------

MOTIVATING_SOURCE = """
#define N 4000
double A[N];
double B[N];
void kernel() {
  int i;
  for (i = 1; i < N - 1; i++)
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
}
"""

MOTIVATING_REFERENCE = """
double A[4000];
double B[4000];
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 1; i <= 3998; i++) {
      B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
    }
  }
}
"""


@dataclass
class Figure1:
    parallel_ir: str
    rellic_output: str
    splendid_output: str
    rellic_bleu: float
    splendid_bleu: float


def figure1_motivating() -> Figure1:
    module = compile_source(MOTIVATING_SOURCE)
    optimize_o2(module)
    parallelize_module(module)
    from ..ir.printer import print_module
    return Figure1(
        parallel_ir=print_module(module),
        rellic_output=rellic.decompile(module),
        splendid_output=decompile(module, "full"),
        rellic_bleu=bleu_score(rellic.decompile(module),
                               MOTIVATING_REFERENCE),
        splendid_bleu=bleu_score(decompile(module, "full"),
                                 MOTIVATING_REFERENCE))


# ---------------------------------------------------------------------------
# Figure 2: the aliasing-check case study
# ---------------------------------------------------------------------------

MAYALIAS_SOURCE = """
#define N 1000
double exp(double x);
void MayAlias(double *A, double *B, double *C) {
  int i;
  for (i = 0; i < N - 1; i++) {
    A[i+1] = 3.1415926535897931 * B[i] + exp(C[i]);
  }
}
int main() {
  double *A = (double*) malloc(1000 * sizeof(double));
  double *B = (double*) malloc(1000 * sizeof(double));
  double *C = (double*) malloc(1000 * sizeof(double));
  int i;
  for (i = 0; i < 1000; i++) { A[i] = 0.0; B[i] = 0.001 * (double)i; C[i] = 0.0; }
  MayAlias(A, B, C);
  MayAlias(A, A, C);
  double s = 0.0;
  for (i = 0; i < 1000; i++) s = s + A[i];
  print_double(s);
  return 0;
}
"""


@dataclass
class Figure2:
    splendid_output: str
    has_alias_check: bool
    has_sequential_fallback: bool
    conditional_loops: int
    outputs_match: bool


def figure2_alias_study(engine: Optional[str] = None) -> Figure2:
    module = compile_source(MAYALIAS_SOURCE)
    optimize_o2(module)
    sequential_out = Interpreter(
        compile_and_opt(MAYALIAS_SOURCE), engine=engine).run("main").output
    result = parallelize_module(module, only_functions=["MayAlias"])
    parallel_out = Interpreter(module, engine=engine).run("main").output
    text = decompile(module, "full")
    conditional = sum(1 for o in result.parallel_loops if o.conditional)
    return Figure2(
        splendid_output=text,
        has_alias_check="if (" in text and "#pragma omp" in text,
        has_sequential_fallback="else" in text,
        conditional_loops=conditional,
        outputs_match=sequential_out == parallel_out)


def compile_and_opt(source: str, defines=None) -> Module:
    module = compile_source(source, defines)
    optimize_o2(module)
    return module


# ---------------------------------------------------------------------------
# Figure 3: decompiling loop optimizations
# ---------------------------------------------------------------------------

UNROLL_SOURCE = """
#define N 1000
double A[N];
double B[N];
double C[N];
void kernel() {
  int i;
  for (i = 0; i < N; i++)
    A[i] = B[i] + C[i];
}
"""

DISTRIBUTE_SOURCE = """
#define N 100
double A[N][N];
double B[N][N];
void kernel() {
  int i, j;
  for (i = 1; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)(i + j);
      B[i][j] = (double)(i * j) - A[i][j];
    }
}
"""


@dataclass
class Figure3:
    unrolled_output: str
    distributed_output: str
    unroll_factor: int


def figure3_loop_optimizations(unroll_factor: int = 4) -> Figure3:
    unrolled = compile_and_opt(UNROLL_SOURCE)
    unroll_innermost(unrolled.get_function("kernel"), unroll_factor)

    distributed = compile_and_opt(DISTRIBUTE_SOURCE)
    kernel = distributed.get_function("kernel")
    inner = get_loop_info(kernel).innermost_loops()[0]
    distribute_loop(inner, lambda store: getattr(
        base_object(store.pointer), "name", "") == "B")

    # Re-fusion stays off: this figure's point is that the distribution
    # remains visible in the decompiled source.
    return Figure3(
        unrolled_output=decompile(unrolled, "full"),
        distributed_output=decompile(distributed, "full",
                                     refuse_adjacent_loops=False),
        unroll_factor=unroll_factor)


# ---------------------------------------------------------------------------
# Figure 5: the variable-map worked example
# ---------------------------------------------------------------------------

@dataclass
class Figure5:
    metadata_extraction: List[Tuple[str, str]]     # (definition, variable)
    final_map: Dict[str, str]                      # value name -> variable
    conflict_removed: List[str]                    # value names dropped


def figure5_variable_map() -> Figure5:
    """Builds the paper's Figure 5 IR shape: three values mapped to one
    variable ``var``, where %1 is used after %2's definition (conflict),
    and %3 is defined after both lifetimes end (no conflict)."""
    module = Module("fig5")
    func_ty = ir_ty.function(ir_ty.VOID, [ir_ty.I32])
    consume = module.get_or_declare("func", func_ty)
    fn = Function("example", ir_ty.function(ir_ty.VOID, []))
    module.add_function(fn)
    entry = fn.append_block("entry")
    builder = IRBuilder(entry)
    var = DILocalVariable("var", scope="example")

    v1 = builder.add(ir_const(1), ir_const(0), "v1")       # A: %1 = ...
    builder.dbg_value(v1, var)                             # B
    builder.call(consume, [v1])                            # C: func(%1)
    v2 = builder.add(ir_const(2), ir_const(0), "v2")       # D: %2 = ...
    builder.dbg_value(v2, var)                             # E
    builder.call(consume, [v1])                            # F: func(%1)  <- conflict
    v3 = builder.add(ir_const(3), ir_const(0), "v3")       # G: %3 = ...
    builder.dbg_value(v3, var)                             # H
    builder.call(consume, [v3])                            # I: func(%3)
    builder.ret()

    proposal = propose_variables(fn)
    extraction = [(f"%{value.name}", name)
                  for _, value, name in proposal.events]
    final = remove_conflicts(fn, proposal)
    final_named = {f"%{value.name}": name for value, name in final.items()}
    dropped = [f"%{value.name}" for value in proposal.mapping
               if value not in final]
    return Figure5(extraction, final_named, dropped)


def ir_const(value: int):
    from ..ir.values import const_int
    return const_int(value, ir_ty.I32)


# ---------------------------------------------------------------------------
# Figures 10 and 11: BLEU worked examples
# ---------------------------------------------------------------------------

FIG11_REFERENCE = """
for (i = 1; i < n - 1; i++)
  B[i] = (A[i-1] + A[i] + A[i+1]) / 3;
"""

FIG11_OBFUSCATED_NAMES = """
for (var0 = 1; var0 < N - 1; var0++)
  var1[var0] = (var2[var0-1] + var2[var0] + var2[var0+1]) / 3;
"""

FIG11_UNNATURAL_CONTROL_FLOW = """
if (n - 1 > 0) {
  i = 1;
  do {
    i += 1;
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3;
  } while (i < n - 1);
}
"""

FIG11_NO_EXPLICIT_PARALLELISM = """
__kmpc_fork_call(param1, param2, param3, kmp_int32
    4, forked_function, param5, A, B, &lb, &ub);

void forked_function(Type1 arg1, Type2 arg2,
    double *A, double *B, int *lb, int *ub) {
  __kmpc_for_static_init_8(arg1, arg2, 33,
      lb, ub, 1, 1);
  for (i = *lb; i < *ub; i++)
    B[i] = (A[i-1] + A[i] + A[i+1]) / 3;
  __kmpc_for_static_fini(arg1, arg2);
}
"""


@dataclass
class Figure11:
    obfuscated_names: float
    unnatural_control_flow: float
    no_explicit_parallelism: float

    def ordering_holds(self) -> bool:
        """The paper's point: degraded control flow hurts less than
        degraded names or exposed parallelism (b > a and b > c)."""
        return (self.unnatural_control_flow > self.obfuscated_names
                and self.unnatural_control_flow
                > self.no_explicit_parallelism)


def figure11_bleu_variants() -> Figure11:
    return Figure11(
        obfuscated_names=bleu_score(FIG11_OBFUSCATED_NAMES, FIG11_REFERENCE),
        unnatural_control_flow=bleu_score(FIG11_UNNATURAL_CONTROL_FLOW,
                                          FIG11_REFERENCE),
        no_explicit_parallelism=bleu_score(FIG11_NO_EXPLICIT_PARALLELISM,
                                           FIG11_REFERENCE))


@dataclass
class Figure10:
    candidate: str
    reference: str
    report: object


def figure10_bleu_calculation() -> Figure10:
    candidate = "x[i] = (A + i) + fn(j);"
    reference = "x[i] = fn(j);"
    return Figure10(candidate, reference, bleu(candidate, reference))
