"""repro.eval — the experiment harness (one driver per table/figure)."""

from .experiments import (Figure6, Figure7, Figure8, Figure9, Table3, Table4,
                          figure6_speedups, figure7_bleu,
                          figure8_restoration, figure9_collaboration, geomean,
                          table3_loops, table4_loc, TOOLS)
from .pipeline import (BenchmarkArtifacts, SpeedupRow, artifact_job,
                       artifacts_for, artifacts_from_payload, build_openmp,
                       build_parallel, build_sequential, clear_cache,
                       compile_c, kernel_time, measured_kernel_time,
                       prewarm_artifacts, program_output, speedups_for)
from .experiments import (FissionReport, FissionRow, StructureRow,
                          StructureTable, fission_report,
                          structure_quality)
from .reporting import (render_figure6, render_figure7, render_figure8,
                        render_figure9, render_fission, render_structure,
                        render_table3, render_table4)

__all__ = [
    "Figure6", "Figure7", "Figure8", "Figure9", "Table3", "Table4",
    "figure6_speedups", "figure7_bleu", "figure8_restoration",
    "figure9_collaboration", "geomean", "table3_loops", "table4_loc",
    "StructureRow", "StructureTable", "structure_quality",
    "render_structure",
    "FissionReport", "FissionRow", "fission_report", "render_fission",
    "TOOLS",
    "BenchmarkArtifacts", "SpeedupRow", "artifact_job", "artifacts_for",
    "artifacts_from_payload", "build_openmp", "build_parallel",
    "build_sequential", "clear_cache", "compile_c", "kernel_time",
    "measured_kernel_time", "prewarm_artifacts", "program_output",
    "speedups_for",
    "render_figure6", "render_figure7", "render_figure8", "render_figure9",
    "render_table3", "render_table4",
]
