"""End-to-end build/run helpers for the experiment harness.

Every experiment starts from one of these artifacts:

* the *sequential module*: mini-C -> IR -> -O2;
* the *parallel module*: sequential module -> Polly-style parallelizer
  (this is the decompilation input everywhere in the paper);
* a *recompiled module*: decompiled C/OpenMP text -> mini-C front end
  (OpenMP lowering) -> -O2 (the 'any host compiler' leg of Figure 6).

Timing isolates the kernel: ``init`` runs first, then ``kernel``, and
the modeled wall-cycle delta between the two is the kernel time.
Results are memoized per benchmark because several experiments share
the same artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..frontend import compile_source
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..passes import optimize_o2
from ..polly import PollyResult, parallelize_module
from ..polybench import Benchmark
from ..runtime import Interpreter, MachineModel, compiler_factor
from ..core import Splendid


class BuildError(Exception):
    pass


def compile_c(source: str, defines: Optional[Dict[str, str]] = None,
              optimize: bool = True, name: str = "module",
              analysis_manager=None, instrumentation=None) -> Module:
    """mini-C text -> (optionally -O2) IR module.

    ``instrumentation`` (a :class:`repro.passes.PassInstrumentation`) is
    the experiment harness's hook into the pass-timing machinery:
    several builds can append to one report.  ``analysis_manager`` lets
    the caller keep the analysis cache alive across pipeline stages.
    """
    from ..analysis.manager import AnalysisManager
    module = compile_source(source, defines, name)
    am = analysis_manager or AnalysisManager()
    if optimize:
        optimize_o2(module, analysis_manager=am,
                    instrumentation=instrumentation)
    verify_module(module, analysis_manager=am)
    return module


def build_sequential(bench: Benchmark) -> Module:
    return compile_c(bench.sequential_source, bench.defines,
                     name=f"{bench.name}.seq")


def build_parallel(bench: Benchmark, analysis_manager=None,
                   instrumentation=None) -> Tuple[Module, PollyResult]:
    from ..analysis.manager import AnalysisManager
    am = analysis_manager or AnalysisManager()
    module = compile_c(bench.sequential_source, bench.defines,
                       name=f"{bench.name}.polly", analysis_manager=am,
                       instrumentation=instrumentation)
    result = parallelize_module(module,
                                only_functions=list(bench.kernel_functions),
                                analysis_manager=am,
                                instrumentation=instrumentation)
    return module, result


def build_openmp(source: str, defines: Optional[Dict[str, str]] = None,
                 name: str = "omp") -> Module:
    """Compile OpenMP-annotated mini-C (pragmas lowered to __kmpc_*)."""
    return compile_c(source, defines, name=name)


def kernel_time(module: Module, machine: Optional[MachineModel] = None,
                kernel: str = "kernel", init: str = "init",
                engine: Optional[str] = None,
                memory: Optional[str] = None) -> float:
    """Modeled wall cycles of one kernel invocation (after init).

    ``engine`` selects the execution engine (``trace``/``compiled``/
    ``walk``) and ``memory`` the memory model (``flat``/``dict``);
    ``None`` uses the process defaults.  Every engine x memory
    combination produces identical modeled times — the knobs exist for
    the differential parity suite and the throughput benchmarks.
    """
    interp = Interpreter(module, machine, engine=engine, memory=memory)
    if init in module.functions and not module.functions[init].is_declaration:
        interp.run(init)
    before = interp.wall_time
    interp.run(kernel)
    return interp.wall_time - before


def measured_kernel_time(module: Module,
                         machine: Optional[MachineModel] = None,
                         kernel: str = "kernel", init: str = "init",
                         workers: Optional[int] = None):
    """Modeled cycles *and* real measured stats for one kernel run.

    Runs the kernel with ``measure=True``, so top-level parallel
    regions execute on a real process pool: the returned modeled
    cycles are identical to :func:`kernel_time` (the measured path
    charges the same per-thread cost deltas) and the returned
    :class:`~repro.runtime.MeasuredStats` carries what actually
    happened (regions, wall seconds, processes, fallbacks).
    """
    with Interpreter(module, machine, measure=True,
                     measure_workers=workers) as interp:
        if init in module.functions \
                and not module.functions[init].is_declaration:
            interp.run(init)
        before_wall = interp.wall_time
        before_measured = interp.measured.snapshot()
        interp.run(kernel)
        measured = interp.measured
        delta = type(measured)(
            regions=measured.regions - before_measured.regions,
            seconds=measured.seconds - before_measured.seconds,
            processes=measured.processes,
            fallbacks=measured.fallbacks - before_measured.fallbacks)
        return interp.wall_time - before_wall, delta


def program_output(module: Module,
                   machine: Optional[MachineModel] = None,
                   engine: Optional[str] = None,
                   memory: Optional[str] = None) -> List[str]:
    return Interpreter(module, machine, engine=engine,
                       memory=memory).run("main").output


@dataclass
class BenchmarkArtifacts:
    benchmark: Benchmark
    sequential: Module
    parallel: Module
    polly: PollyResult
    decompiled: Dict[str, str]           # variant/tool name -> C text
    splendid: Splendid                   # the 'full' instance (for stats)

    @property
    def name(self) -> str:
        return self.benchmark.name


_CACHE: Dict[str, BenchmarkArtifacts] = {}

#: Decompilers the artifact bundle carries besides the 'full' variant.
_ARTIFACT_TOOLS = ("rellic", "ghidra", "splendid-v1", "splendid-portable")


def artifact_job(bench: Benchmark):
    """The :class:`repro.service.Job` producing a benchmark's bundle."""
    from ..service import Job, JobConfig
    return Job(
        name=bench.name,
        source=bench.sequential_source,
        defines=dict(bench.defines),
        config=JobConfig(variant="full", tools=_ARTIFACT_TOOLS,
                         emit_ir=True,
                         only_functions=tuple(bench.kernel_functions)))


def artifacts_from_payload(bench: Benchmark,
                           payload: dict) -> BenchmarkArtifacts:
    """Reconstruct :class:`BenchmarkArtifacts` from a service payload.

    Modules are rebuilt by parsing the worker's printed IR (an exact
    round-trip: same interpretation, same decompilation); the `full`
    Splendid instance is re-instantiated over the parallel module and
    decompiled once so restoration stats keep working.
    """
    from ..ir.parser import parse_ir
    from ..service.worker import polly_result_from_payload
    sequential = parse_ir(payload["seq_ir"])
    parallel = parse_ir(payload["par_ir"])
    polly = polly_result_from_payload(payload.get("polly"),
                                      payload.get("fission"))
    splendid_full = Splendid(parallel, "full")
    splendid_full.decompile_text()
    return BenchmarkArtifacts(bench, sequential, parallel, polly,
                              dict(payload["decompiled"]), splendid_full)


def artifacts_for(bench: Benchmark, refresh: bool = False,
                  service=None) -> BenchmarkArtifacts:
    """Build (or fetch cached) modules and decompilations for a benchmark.

    With a :class:`repro.service.BatchService`, construction is routed
    through the service (and its persistent artifact cache); without
    one it runs in-process as before.
    """
    if not refresh and bench.name in _CACHE:
        return _CACHE[bench.name]
    if service is not None:
        result = service.run_one(artifact_job(bench))
        if result.status.value != "ok":
            raise BuildError(
                f"service failed to build artifacts for {bench.name}: "
                f"{result.error}")
        artifacts = artifacts_from_payload(bench, result.payload)
        _CACHE[bench.name] = artifacts
        return artifacts
    from ..decompilers import ghidra, rellic
    sequential = build_sequential(bench)
    parallel, polly = build_parallel(bench)
    splendid_full = Splendid(parallel, "full")
    decompiled = {
        "rellic": rellic.decompile(parallel),
        "ghidra": ghidra.decompile(parallel),
        "splendid-v1": Splendid(parallel, "v1").decompile_text(),
        "splendid-portable": Splendid(parallel, "portable").decompile_text(),
        "splendid": splendid_full.decompile_text(),
    }
    artifacts = BenchmarkArtifacts(bench, sequential, parallel, polly,
                                   decompiled, splendid_full)
    _CACHE[bench.name] = artifacts
    return artifacts


def prewarm_artifacts(benchmarks=None, service=None):
    """Fan a batch of artifact jobs across the service's pool.

    Fills the in-process artifact memo for every benchmark whose job
    succeeded (fully; a degraded bundle would misrepresent Polly), so
    the report generators that follow run entirely off warm artifacts.
    Returns the batch's :class:`repro.service.ServiceReport`.
    """
    from ..polybench import all_benchmarks
    from ..service import BatchService
    benches = list(benchmarks) if benchmarks is not None \
        else all_benchmarks()
    owned = service is None
    service = service or BatchService()
    try:
        todo = [b for b in benches if b.name not in _CACHE]
        batch = service.run([artifact_job(b) for b in todo])
        for bench, result in zip(todo, batch.results):
            if result.status.value == "ok":
                _CACHE[bench.name] = artifacts_from_payload(bench,
                                                            result.payload)
        return batch.report
    finally:
        if owned:
            service.close()


def clear_cache() -> None:
    _CACHE.clear()


@dataclass
class SpeedupRow:
    """One benchmark's row of Figure 6.

    The ``measured_*`` fields are populated only by
    ``speedups_for(..., measure=True)``: real process-pool statistics
    reported *next to* the modeled speedups, never mixed into them.
    """

    name: str
    polly: float
    splendid_clang: float
    splendid_gcc: float
    sequential_time: float
    measured_regions: int = 0
    measured_seconds: float = 0.0
    measured_processes: int = 0
    measured_fallbacks: int = 0


def speedups_for(bench: Benchmark,
                 machine: Optional[MachineModel] = None,
                 measure: bool = False,
                 measure_workers: Optional[int] = None) -> SpeedupRow:
    machine = machine or MachineModel()
    art = artifacts_for(bench)
    t_seq = kernel_time(build_sequential(bench), machine)
    if measure:
        t_polly, measured = measured_kernel_time(art.parallel, machine,
                                                 workers=measure_workers)
    else:
        t_polly = kernel_time(art.parallel, machine)
        measured = None

    recompiled = build_openmp(art.decompiled["splendid"], bench.defines,
                              name=f"{bench.name}.recompiled")
    t_recompiled = kernel_time(recompiled, machine)
    t_clang = t_recompiled * compiler_factor("clang", bench.name)
    t_gcc = t_recompiled * compiler_factor("gcc", bench.name)

    row = SpeedupRow(
        name=bench.name,
        polly=t_seq / t_polly,
        splendid_clang=t_seq / t_clang,
        splendid_gcc=t_seq / t_gcc,
        sequential_time=t_seq)
    if measured is not None:
        row.measured_regions = measured.regions
        row.measured_seconds = measured.seconds
        row.measured_processes = measured.processes
        row.measured_fallbacks = measured.fallbacks
    return row
