"""Experiment drivers: one function per table/figure of the paper.

Each driver returns plain dataclasses so tests can assert on shapes and
the benchmark harness can print paper-style rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..metrics import bleu_score, count_loc, parallel_representation_loc
from ..polybench import Benchmark, all_benchmarks, collab_benchmarks
from ..runtime import MachineModel
from .pipeline import (artifacts_for, build_openmp, build_sequential,
                       kernel_time, speedups_for)


def _suite(benchmarks: Optional[List[str]] = None) -> List[Benchmark]:
    suite = all_benchmarks()
    if benchmarks is not None:
        suite = [b for b in suite if b.name in benchmarks]
    return suite


def geomean(values: List[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# Figure 6: portability speedups
# ---------------------------------------------------------------------------

@dataclass
class Figure6:
    rows: List[object]

    @property
    def geomean_polly(self) -> float:
        return geomean([r.polly for r in self.rows])

    @property
    def geomean_clang(self) -> float:
        return geomean([r.splendid_clang for r in self.rows])

    @property
    def geomean_gcc(self) -> float:
        return geomean([r.splendid_gcc for r in self.rows])


def figure6_speedups(benchmarks: Optional[List[str]] = None,
                     machine: Optional[MachineModel] = None,
                     measure: bool = False,
                     measure_workers: Optional[int] = None) -> Figure6:
    """``measure=True`` additionally runs each parallel region on a real
    process pool and fills the ``measured_*`` row fields (the modeled
    columns are unchanged — measured runs are cost/output-identical)."""
    rows = [speedups_for(b, machine, measure=measure,
                         measure_workers=measure_workers)
            for b in _suite(benchmarks)]
    return Figure6(rows)


# ---------------------------------------------------------------------------
# Figure 7: BLEU scores
# ---------------------------------------------------------------------------

TOOLS = ("rellic", "ghidra", "splendid-v1", "splendid-portable", "splendid")


@dataclass
class BleuRow:
    name: str
    scores: Dict[str, float]        # tool -> BLEU in [0, 1]


@dataclass
class Figure7:
    rows: List[BleuRow]

    def average(self, tool: str) -> float:
        return sum(r.scores[tool] for r in self.rows) / len(self.rows)

    def improvement_over(self, tool: str, baseline: str) -> float:
        base = self.average(baseline)
        return self.average(tool) / base if base else float("inf")


def figure7_bleu(benchmarks: Optional[List[str]] = None) -> Figure7:
    rows = []
    for bench in _suite(benchmarks):
        art = artifacts_for(bench)
        scores = {tool: bleu_score(art.decompiled[tool],
                                   bench.reference_source)
                  for tool in TOOLS}
        rows.append(BleuRow(bench.name, scores))
    return Figure7(rows)


# ---------------------------------------------------------------------------
# Table 4: LoC similarity
# ---------------------------------------------------------------------------

@dataclass
class LocRow:
    name: str
    ghidra: int
    rellic: int
    splendid: int
    reference: int
    par_ghidra: int
    par_rellic: int
    par_splendid: int


@dataclass
class Table4:
    rows: List[LocRow]

    def total(self, column: str) -> int:
        return sum(getattr(r, column) for r in self.rows)


def table4_loc(benchmarks: Optional[List[str]] = None) -> Table4:
    rows = []
    for bench in _suite(benchmarks):
        art = artifacts_for(bench)
        rows.append(LocRow(
            name=bench.name,
            ghidra=count_loc(art.decompiled["ghidra"]),
            rellic=count_loc(art.decompiled["rellic"]),
            splendid=count_loc(art.decompiled["splendid"]),
            reference=count_loc(bench.reference_source),
            par_ghidra=parallel_representation_loc(art.decompiled["ghidra"]),
            par_rellic=parallel_representation_loc(art.decompiled["rellic"]),
            par_splendid=parallel_representation_loc(
                art.decompiled["splendid"]),
        ))
    return Table4(rows)


# ---------------------------------------------------------------------------
# Figure 8: variable-name restoration
# ---------------------------------------------------------------------------

@dataclass
class RestorationRow:
    name: str
    total: int
    restored: int

    @property
    def percent(self) -> float:
        return 100.0 * self.restored / self.total if self.total else 0.0


@dataclass
class Figure8:
    rows: List[RestorationRow]

    @property
    def average_percent(self) -> float:
        return sum(r.percent for r in self.rows) / len(self.rows)


def figure8_restoration(benchmarks: Optional[List[str]] = None) -> Figure8:
    rows = []
    for bench in _suite(benchmarks):
        art = artifacts_for(bench)
        stats = art.splendid.restoration_stats()
        rows.append(RestorationRow(bench.name, stats.total, stats.restored))
    return Figure8(rows)


# ---------------------------------------------------------------------------
# Table 3: loops parallelizable (compiler vs programmer)
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    name: str
    programmer: int
    compiler: int

    @property
    def overlap(self) -> int:
        # For the two distribution cases (atax, bicg) the programmer's
        # loops are disjoint from the compiler's; elsewhere the
        # programmer's choices are a subset of the compiler's.
        if self.name in ("atax", "bicg"):
            return 0
        return min(self.programmer, self.compiler)

    @property
    def total(self) -> int:
        return self.programmer + self.compiler - self.overlap

    @property
    def eliminated_manual(self) -> int:
        return self.overlap


@dataclass
class Table3:
    rows: List[Table3Row]

    def totals(self) -> Table3Row:
        row = Table3Row("Total",
                        sum(r.programmer for r in self.rows),
                        sum(r.compiler for r in self.rows))
        return row

    @property
    def eliminated_fraction(self) -> float:
        """Fraction of compiler-parallelized loops the programmer would
        also have parallelized (the paper's 60%)."""
        compiler = sum(r.compiler for r in self.rows)
        overlap = sum(r.overlap for r in self.rows)
        return overlap / compiler if compiler else 0.0


def table3_loops(benchmarks: Optional[List[str]] = None) -> Table3:
    rows = []
    for bench in _suite(benchmarks):
        art = artifacts_for(bench)
        compiler = len(art.polly.parallel_loops)
        rows.append(Table3Row(bench.name, bench.programmer_parallelized,
                              compiler))
    return Table3(rows)


# ---------------------------------------------------------------------------
# Figure 9: collaborative parallelization
# ---------------------------------------------------------------------------

@dataclass
class CollabRow:
    name: str
    manual_only: float
    compiler_only: float
    collaborative: float
    edit_loc: int


@dataclass
class Figure9:
    rows: List[CollabRow]

    @property
    def mean_collab_vs_manual(self) -> float:
        return geomean([r.collaborative / r.manual_only for r in self.rows
                        if r.manual_only > 0])

    @property
    def mean_collab_vs_compiler(self) -> float:
        return geomean([r.collaborative / r.compiler_only for r in self.rows
                        if r.compiler_only > 0])


def figure9_collaboration(machine: Optional[MachineModel] = None) -> Figure9:
    machine = machine or MachineModel()
    rows = []
    for bench in collab_benchmarks():
        art = artifacts_for(bench)
        t_seq = kernel_time(build_sequential(bench), machine)
        t_compiler = kernel_time(art.parallel, machine)
        t_manual = kernel_time(
            build_openmp(bench.manual_source, bench.defines,
                         name=f"{bench.name}.manual"), machine)
        t_collab = kernel_time(
            build_openmp(bench.collab_source, bench.defines,
                         name=f"{bench.name}.collab"), machine)
        rows.append(CollabRow(
            name=bench.name,
            manual_only=t_seq / t_manual,
            compiler_only=t_seq / t_compiler,
            collaborative=t_seq / t_collab,
            edit_loc=bench.collab_edit_loc))
    return Figure9(rows)


# ---------------------------------------------------------------------------
# Structure quality: gotos, nesting, condition complexity per structurer
# ---------------------------------------------------------------------------

@dataclass
class StructureRow:
    name: str
    # structurer name -> StructurednessReport
    reports: Dict[str, "StructurednessReport"]

    def gotos(self, structurer: str) -> int:
        return self.reports[structurer].gotos


@dataclass
class StructureTable:
    rows: List["StructureRow"]
    structurers: tuple = ("legacy", "region")

    def total_gotos(self, structurer: str) -> int:
        return sum(r.gotos(structurer) for r in self.rows)

    def goto_free(self, structurer: str) -> bool:
        return self.total_gotos(structurer) == 0


def structure_quality(benchmarks: Optional[List[str]] = None,
                      variant: str = "full") -> StructureTable:
    """Structuredness of SPLENDID output under each structuring engine.

    Decompiles every benchmark's parallel module twice (legacy
    pattern-matching structurer vs. the region/schema engine) and
    measures gotos, nesting depth, and condition complexity of each.
    """
    from ..core import Splendid
    from ..metrics import measure_structuredness
    from .pipeline import build_parallel
    rows = []
    for bench in _suite(benchmarks):
        parallel, _ = build_parallel(bench)
        reports = {}
        for structurer in ("legacy", "region"):
            unit = Splendid(parallel, variant,
                            structurer=structurer).decompile()
            reports[structurer] = measure_structuredness(unit)
        rows.append(StructureRow(bench.name, reports))
    return StructureTable(rows)


# ---------------------------------------------------------------------------
# Fission report: partial parallelization of mixed loops
# ---------------------------------------------------------------------------

@dataclass
class FissionRow:
    name: str
    considered: int                 # mixed loops examined
    split: int                      # loops fissioned
    subloops: int                   # sub-loops produced
    parallelized: int               # sub-loops outlined as parallel
    vetoed: int                     # cost + legality vetoes
    expanded: int                   # scalars spilled to temp arrays
    refused: int                    # seams re-fused on decompile
    modeled_speedup: float          # t_seq / t_fissioned (modeled cycles)
    measured_speedup: Optional[float] = None  # 1-proc vs pool, real seconds


@dataclass
class FissionReport:
    rows: List[FissionRow]

    @property
    def kernels_gaining_parallelism(self) -> List[str]:
        return [r.name for r in self.rows if r.split and r.parallelized]


def fission_report(benchmarks: Optional[List[str]] = None,
                   machine=None, measure: bool = False,
                   measure_workers: Optional[int] = None) -> FissionReport:
    """Per-kernel fission outcomes: loops split, sub-loops parallelized,
    and the modeled (optionally measured) speedup of the partially
    parallelized module over the sequential build.

    Covers the fission demonstration registry plus every main-suite
    benchmark where the fission pass found a mixed-loop candidate
    (kernels it never considered are omitted — their row would be all
    zeros).  ``measure=True`` additionally runs the fissioned module's
    parallel regions on a real process pool and reports the real-seconds
    speedup of the pool over a single worker.
    """
    from ..core import Splendid
    from ..polybench import fission_benchmarks
    from .pipeline import (build_parallel, build_sequential, kernel_time,
                           measured_kernel_time)
    demo = fission_benchmarks()
    demo_names = {b.name for b in demo}
    pool = demo + _suite()
    if benchmarks is not None:
        pool = [b for b in pool if b.name in benchmarks]
    rows = []
    for bench in pool:
        t_seq = kernel_time(build_sequential(bench), machine)
        module, polly = build_parallel(bench)
        stats = polly.fission
        if bench.name not in demo_names and not stats.considered:
            continue
        splendid = Splendid(module, "full")
        splendid.decompile_text()
        row = FissionRow(
            name=bench.name,
            considered=stats.considered,
            split=stats.split,
            subloops=stats.subloops,
            parallelized=stats.parallelized,
            vetoed=stats.vetoed_cost + stats.vetoed_legality,
            expanded=stats.expanded,
            refused=stats.refused + splendid.refused_loops(),
            modeled_speedup=t_seq / kernel_time(module, machine))
        if measure:
            _, multi = measured_kernel_time(module, machine,
                                            workers=measure_workers)
            _, one = measured_kernel_time(module, machine, workers=1)
            if multi.seconds > 0:
                row.measured_speedup = one.seconds / multi.seconds
        rows.append(row)
    return FissionReport(rows)
