"""repro.decompilers — baseline decompilers and the shared engine.

SPLENDID itself (the paper's contribution) lives in :mod:`repro.core`
and reuses this engine with its full option set plus the explicit
parallelism translator and variable generator.
"""

from . import cbackend, ghidra, rellic
from .engine import (CallTranslator, DecompileError, DecompilerOptions,
                     FunctionEmitter, ModuleDecompiler, ctype_of)
from .naming import NameAllocator, sanitize_identifier

__all__ = [
    "cbackend", "ghidra", "rellic",
    "CallTranslator", "DecompileError", "DecompilerOptions",
    "FunctionEmitter", "ModuleDecompiler", "ctype_of",
    "NameAllocator", "sanitize_identifier",
]
