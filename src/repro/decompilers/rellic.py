"""Rellic-style baseline decompiler.

Reproduces the observable output style of Rellic [63, 64] on parallel
LLVM-IR, per the paper's Figure 1 and Table 1: structured control flow
(if/else and do-while — no for-loop construction, no loop-rotation
de-transformation), parallel runtime calls exposed verbatim
(``__kmpc_fork_call`` and friends appear in the C output, making it
non-portable), SSA collapsed through ``val<N>``/``phi<N>`` variables,
and no source-variable renaming.
"""

from __future__ import annotations

from ..ir.module import Module
from .engine import DecompilerOptions, ModuleDecompiler

OPTIONS = DecompilerOptions(
    name="rellic",
    structure_cfg=True,
    construct_for_loops=False,
    detransform_rotation=False,
    explicit_parallelism=False,
    rename_variables=False,
    naming_style="val",
    elide_widening_casts=False,
    byte_level_addressing=False,
    strip_debug_names=False,
    increment_style="verbose",
    inline_expressions=False,
)


def decompile(module: Module) -> str:
    """Decompile a module to C text in Rellic style."""
    return ModuleDecompiler(module, OPTIONS).decompile_text()


def decompile_unit(module: Module):
    return ModuleDecompiler(module, OPTIONS).decompile()
