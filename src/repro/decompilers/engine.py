"""The decompilation engine shared by every back end.

One engine, parameterized by :class:`DecompilerOptions`, implements the
capability matrix of the paper's Table 1: CFG structuring (if/else,
do-while), for-loop construction, loop-rotation de-transformation
(guard-check elimination), SSA de-transformation (phi -> mutable
variable), naming styles, and — via a hook installed by SPLENDID —
explicit parallelism translation of ``__kmpc_*`` regions.  The baseline
back ends (:mod:`cbackend`, :mod:`rellic`, :mod:`ghidra`) are thin
option presets over this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.induction import CountedLoop
from ..analysis.loops import Loop
from ..analysis.manager import (AnalysisManager, get_loop_info,
                                get_postdomtree)
from ..ir import types as ir_ty
from ..ir.block import BasicBlock
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast,
                               CondBranch, DbgValue, FCmp, GetElementPtr,
                               ICmp, Instruction, Load, Phi, Ret, Select,
                               Store, Unreachable)
from ..ir.module import Function, Module
from ..ir.values import (Argument, Constant, ConstantFloat, ConstantInt,
                         ConstantPointerNull, GlobalVariable, UndefValue,
                         Value)
from ..minic import c_ast as ast
from .naming import NameAllocator, sanitize_identifier


@dataclass
class DecompilerOptions:
    """Capability switches (one row of the paper's Table 1)."""

    name: str = "generic"
    structure_cfg: bool = True
    # Which structuring engine renders the CFG:
    #   'legacy' — the original pattern-matcher for the shapes our own
    #              -O2 pipeline emits (kept verbatim as the reference);
    #   'region' — the repro.structure region/schema engine, which
    #              structures arbitrary (even irreducible) IR with
    #              goto strictly as a counted last resort.
    structurer: str = "legacy"
    construct_for_loops: bool = False
    detransform_rotation: bool = False   # guard-check elimination
    explicit_parallelism: bool = False   # handled by an installed hook
    rename_variables: bool = False
    naming_style: str = "val"
    elide_widening_casts: bool = False
    byte_level_addressing: bool = False
    strip_debug_names: bool = False      # binary-level input: arg names lost
    increment_style: str = "compact"     # 'compact' (i++) | 'verbose' (i = i + 1)
    # Rellic/Ghidra/CBackend emit (close to) one C statement per IR
    # instruction; SPLENDID rebuilds compound expressions.
    inline_expressions: bool = True
    # Recompute LICM-hoisted address chains at their use sites so loads
    # and stores print as array subscripts (A[i][j]) instead of pointer
    # temporaries (*A_idx).
    rematerialize_addresses: bool = False
    # Re-fuse adjacent sub-loops the fission pass split when the merge
    # is provably order-preserving (core.fusion), so sequential fission
    # seams do not leak into the emitted source.
    refuse_adjacent_loops: bool = False
    # Where declaration types come from:
    #   'debug'     — declared IR types + debug metadata (the default);
    #   'recovered' — the storage/typeinfer analyses drive declarations
    #                 and array geometry, debug info is a cross-check;
    #   'none'      — declared IR types only, all metadata ignored
    #                 (ablation: what the printer knows about a binary).
    type_source: str = "debug"


# Map IR binops to C operators.
_BINOP_C = {
    "add": "+", "fadd": "+", "sub": "-", "fsub": "-",
    "mul": "*", "fmul": "*", "sdiv": "/", "udiv": "/", "fdiv": "/",
    "srem": "%", "urem": "%", "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "ashr": ">>", "lshr": ">>",
}
_CMP_C = {
    "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    "oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">=",
    "ueq": "==", "une": "!=",
}


def ctype_of(vtype: ir_ty.Type, i64_spelling: str = "long") -> ast.CType:
    if vtype.is_void:
        return ast.VOID
    if vtype.is_float:
        return ast.DOUBLE
    if vtype.is_integer:
        if vtype.bits == 64:
            return ast.CInt(i64_spelling)
        return ast.INT
    if vtype.is_pointer:
        return ast.CPointer(ctype_of(vtype.pointee, i64_spelling))
    if vtype.is_array:
        return ast.CArray(ctype_of(vtype.element, i64_spelling), vtype.count)
    raise TypeError(f"cannot map type {vtype} to C")


class DecompileError(Exception):
    pass


@dataclass(frozen=True)
class _Reshape:
    """A storage root whose *recovered* layout differs from its declared
    IR type (e.g. a ``char[512]`` byte blob recovered as
    ``double[8][8]``).  The declaration prints the recovered type and
    every access into the root is re-derived from the recovered
    geometry instead of the IR's GEP structure."""

    element: ast.CType
    width: int                 # element size in bytes
    dims: Tuple[int, ...]      # outermost first

    @property
    def strides(self) -> Tuple[int, ...]:
        """Byte stride of each subscript level, outermost first."""
        strides: List[int] = []
        acc = self.width
        for dim in reversed(self.dims):
            strides.append(acc)
            acc *= dim
        return tuple(reversed(strides))


def _declared_layout(vtype: ir_ty.Type,
                     i64_spelling: str) -> Tuple[ast.CType, Tuple[int, ...]]:
    dims: List[int] = []
    while vtype.is_array:
        dims.append(vtype.count)
        vtype = vtype.element
    return ctype_of(vtype, i64_spelling), tuple(dims)


def _plan_reshape(storage, typeinfo, function, root,
                  i64_spelling: str) -> Optional[_Reshape]:
    """The recovered layout of ``root``, when it is fully proven.

    Returns ``None`` unless the recovered element and every dimension are
    resolved, the layout tiles the root's (trusted) size exactly, and
    every observed access decomposes into the recovered stride basis —
    the conditions under which reprinting accesses as subscripts is
    sound.  Whether the reshape *differs* from the declaration is the
    caller's concern.
    """
    from ..analysis.typeinfer import RArray, RFloat, RInt
    rec = typeinfo.root_rectype(function, root)
    if not isinstance(rec, RArray) or not rec.dims:
        return None
    if any(d is None for d in rec.dims):
        return None
    element = rec.element
    if isinstance(element, RFloat):
        ctype, width = ast.DOUBLE, 8
    elif isinstance(element, RInt):
        width = storage.element_width(root) or ((element.bits or 32) // 8)
        ctype = ast.CInt(i64_spelling) if width == 8 else ast.INT
    else:
        return None
    total = width
    for dim in rec.dims:
        total *= dim
    if root.size_bytes is None or total != root.size_bytes:
        return None
    reshape = _Reshape(ctype, width, tuple(rec.dims))
    for pattern in storage.accesses.get(root, ()):
        if any(s % width != 0 for s in pattern.strides):
            return None
    for value, home in storage.homes.items():
        if home.root == root and home.const_offset % width != 0:
            return None
    return reshape


def _plan_global_reshapes(module: Module, analysis: "AnalysisManager",
                          typeinfo, i64_spelling: str
                          ) -> Dict[str, _Reshape]:
    """Reshapes for globals, agreed on by every function that uses them.

    A function whose accesses do not decompose into the candidate
    layout vetoes the reshape: the declaration is shared, so reprinting
    is all-or-nothing per global.
    """
    from ..analysis.manager import STORAGE
    candidates: Dict[str, Set[_Reshape]] = {}
    vetoed: Set[str] = set()
    for function in module.defined_functions():
        storage = analysis.get(STORAGE, function)
        for root in storage.roots:
            if root.kind != "global":
                continue
            reshape = _plan_reshape(storage, typeinfo, function, root,
                                    i64_spelling)
            if reshape is None and storage.accesses.get(root):
                vetoed.add(root.name)
            elif reshape is not None:
                candidates.setdefault(root.name, set()).add(reshape)
    reshapes: Dict[str, _Reshape] = {}
    for name, shapes in candidates.items():
        if name in vetoed or len(shapes) != 1:
            continue
        var = module.globals.get(name)
        if var is None:
            continue
        reshape = next(iter(shapes))
        if _declared_layout(var.value_type, i64_spelling) == \
                (reshape.element, reshape.dims):
            continue  # recovery agrees with the declaration: nothing to do
        reshapes[name] = reshape
    return reshapes


def _i64_spelling(options: DecompilerOptions) -> str:
    return "uint64_t" if options.name.startswith("splendid") else "long"


@dataclass
class _LoopContext:
    loop: Loop
    exit_block: Optional[BasicBlock]
    parent: Optional["_LoopContext"] = None


# A hook invoked for every call instruction; may consume it and return
# replacement statements (SPLENDID's explicit-parallelism translator).
CallTranslator = Callable[["FunctionEmitter", Call], Optional[List[ast.Stmt]]]


class ModuleDecompiler:
    def __init__(self, module: Module, options: DecompilerOptions,
                 call_translator: Optional[CallTranslator] = None,
                 source_names: Optional[Dict[Value, str]] = None,
                 source_groups: Optional[Dict[Value, object]] = None,
                 skip_functions: Optional[Set[str]] = None,
                 analysis_manager: Optional[AnalysisManager] = None):
        self.module = module
        self.options = options
        self.analysis = analysis_manager or AnalysisManager()
        self.typeinfo = None
        self.global_reshapes: Dict[str, _Reshape] = {}
        if options.type_source == "recovered":
            from ..analysis.manager import TYPEINFER
            self.typeinfo = self.analysis.get_module(TYPEINFER, module)
            self.global_reshapes = _plan_global_reshapes(
                module, self.analysis, self.typeinfo, _i64_spelling(options))
        self.decompiled = False
        self.call_translator = call_translator
        self.source_names = source_names or {}
        self.source_groups = source_groups or {}
        self.group_sizes: Dict[object, int] = {}
        for group in self.source_groups.values():
            self.group_sizes[group] = self.group_sizes.get(group, 0) + 1
        self.skip_functions = skip_functions or set()
        self.emitters: List["FunctionEmitter"] = []
        self.structuring = None  # StructuringStats after decompile()
        self.refused_loops = 0   # fission seams re-fused on emission
        self._fallback_functions: List[str] = []

    def decompile(self) -> ast.TranslationUnit:
        self.emitters = []
        self.structuring = None
        self.refused_loops = 0
        self._fallback_functions = []
        unit = ast.TranslationUnit()
        for var in self.module.globals.values():
            reshape = self.global_reshapes.get(var.name)
            if reshape is not None:
                unit.globals.append(ast.Declaration(
                    reshape.element, sanitize_identifier(var.name),
                    array_dims=reshape.dims))
            else:
                unit.globals.append(_global_decl(var))
        for function in self.module.functions.values():
            if function.name in self.skip_functions:
                continue
            if function.is_declaration:
                if function.name.startswith("llvm."):
                    continue
                if function.name.startswith("__kmpc_") \
                        and self.options.explicit_parallelism:
                    continue  # consumed into pragmas
                unit.functions.append(_declaration_ast(function))
                continue
            try:
                emitter = FunctionEmitter(function, self.options, self)
                definition = emitter.emit()
            except (DecompileError, RecursionError):
                # Structuring failed (multi-exit or irreducible loop):
                # fall back to goto-based emission for this function,
                # like real decompilers do.  The fallback must also drop
                # the structure-dependent passes: a planned for-loop
                # consumes the IV machinery, but goto emission never
                # emits the `for` that would reconstitute it.
                fallback = replace(self.options, structure_cfg=False,
                                   construct_for_loops=False,
                                   detransform_rotation=False,
                                   structurer="legacy")
                emitter = FunctionEmitter(function, fallback, self)
                definition = emitter.emit()
                self._fallback_functions.append(function.name)
            self.emitters.append(emitter)
            unit.functions.append(definition)
            self._collect_structuring(emitter, definition)
            if self.options.refuse_adjacent_loops \
                    and emitter.options.construct_for_loops:
                from ..core.fusion import refuse_adjacent_loops
                self.refused_loops += refuse_adjacent_loops(definition)
        self.decompiled = True
        return unit

    def _collect_structuring(self, emitter: "FunctionEmitter",
                             definition: ast.FunctionDef) -> None:
        """Aggregate structuring counters across the module's emitters
        (region engine and goto fallbacks alike)."""
        if self.structuring is None:
            from ..structure.structurer import StructuringStats
            self.structuring = StructuringStats()
        if emitter.structured is not None:
            self.structuring.merge(emitter.structured.stats)
            self.structuring.schemas["guard_elision"] = \
                self.structuring.schemas.get("guard_elision", 0) \
                + emitter.guard_elisions
            return
        if not emitter.options.structure_cfg and definition.body is not None:
            # A goto-fallback function: count what the emission produced.
            self.structuring.functions += 1
            self.structuring.fallback_functions += 1
            for stmt in ast.walk_stmts(definition.body):
                if isinstance(stmt, ast.Goto):
                    self.structuring.gotos += 1
                elif isinstance(stmt, ast.Label):
                    self.structuring.labels += 1

    def structuring_stats(self):
        """Module-wide :class:`repro.structure.StructuringStats` from the
        last :meth:`decompile` run (None before it)."""
        return self.structuring

    def decompile_text(self) -> str:
        from ..minic.printer import print_unit
        return print_unit(self.decompile())


def _global_decl(var: GlobalVariable) -> ast.Declaration:
    vtype = var.value_type
    dims: List[int] = []
    while vtype.is_array:
        dims.append(vtype.count)
        vtype = vtype.element
    return ast.Declaration(ctype_of(vtype), sanitize_identifier(var.name),
                           array_dims=tuple(dims))


def _declaration_ast(function: Function) -> ast.FunctionDef:
    params = [ast.Param(ctype_of(a.type), sanitize_identifier(a.name or f"arg{i}"))
              for i, a in enumerate(function.arguments)]
    return ast.FunctionDef(ctype_of(function.return_type),
                           sanitize_identifier(function.name), params, None,
                           is_vararg=function.function_type.is_vararg)


class FunctionEmitter:
    """Emits one IR function as a mini-C :class:`FunctionDef`."""

    def __init__(self, function: Function, options: DecompilerOptions,
                 module_ctx: ModuleDecompiler,
                 expr_overrides: Optional[Dict[Value, ast.Expr]] = None,
                 names: Optional[NameAllocator] = None):
        self.function = function
        self.options = options
        self.module_ctx = module_ctx
        self.loop_info = get_loop_info(function, module_ctx.analysis)
        self.postdom = get_postdomtree(function, module_ctx.analysis)
        if options.structurer not in ("legacy", "region"):
            raise ValueError(
                f"unknown structurer {options.structurer!r} "
                "(expected 'legacy' or 'region')")
        self.structured = None
        if options.structure_cfg and options.structurer == "region":
            from ..analysis.manager import STRUCTURE
            self.structured = module_ctx.analysis.get(STRUCTURE, function)
        self.typeinfo = module_ctx.typeinfo
        self.storage = None
        self._reshapes: Dict[object, _Reshape] = {}   # StorageRoot -> reshape
        self._root_values: Dict[object, Value] = {}   # StorageRoot -> IR value
        if self.typeinfo is not None:
            from ..analysis.manager import STORAGE
            self.storage = module_ctx.analysis.get(STORAGE, function)
            self._plan_reshapes()
        self.names = names or NameAllocator(
            options.naming_style, module_ctx.source_names,
            module_ctx.source_groups, type_hints=self._type_hints())
        self.expr_overrides: Dict[Value, ast.Expr] = dict(expr_overrides or {})
        self.skip: Set[Instruction] = set()
        self.top_decls: Dict[str, ast.Declaration] = {}
        self._positions: Dict[Instruction, Tuple[BasicBlock, int]] = {}
        self._inline: Set[Instruction] = set()
        self._cross_block: Set[Instruction] = set()
        self._emitted_assign: Set[Instruction] = set()
        self._counted_plan: Dict[BasicBlock, CountedLoop] = {}
        self.guard_elisions = 0
        self._reserve_names()
        self._index_positions()
        self._plan_placement()
        self._plan_for_loops()

    def _plan_for_loops(self) -> None:
        if not self.options.construct_for_loops:
            return
        from ..analysis.induction import analyze_counted_loop
        from ..analysis.manager import INDUCTION
        counted_loops = self.module_ctx.analysis.get(INDUCTION, self.function)
        for loop in self.loop_info.all_loops():
            if not loop.is_rotated:
                continue
            # The INDUCTION map is keyed by Loop identity; a cache-less
            # manager hands back a map over different Loop objects, and
            # CountedLoop.loop identity matters downstream — analyze
            # directly rather than adopting a foreign Loop.
            counted = counted_loops[loop] if loop in counted_loops \
                else analyze_counted_loop(loop)
            if counted is not None and self._for_constructible(counted):
                if self.structured is not None \
                        and not self._for_upgrade_ok(counted):
                    continue
                if self._step_escapes_loop(counted):
                    continue
                self._counted_plan[loop.header] = counted
                self._mark_for_consumed(counted)
                self._fold_iv_merge_phis(counted)

    def _step_escapes_loop(self, counted: CountedLoop) -> bool:
        """True when the increment's value is read after the loop.

        The for-upgrade rewrites the exit test from `next COND bound` to
        `iv COND bound` with the step folded into the for-header, so any
        in-body spelling of the increment (`iv + step`) is off by one
        step once the loop is over — the IV has already absorbed the
        final bump.  Keep such loops as while/do-while, where the step
        stays an explicit assignment with the right lifetime."""
        loop = counted.loop
        for user in self._real_users(counted.step_inst):
            if user is counted.phi or user is counted.compare:
                continue
            if user.parent is not None and user.parent not in loop.blocks:
                return True
        return False

    def _for_upgrade_ok(self, counted: CountedLoop) -> bool:
        """Region mode admits a do-while -> for upgrade only when it is
        provably sound: the region tree rendered the loop as a rotated
        do-while whose header/latch are not goto targets (a label before
        `for` would re-run the init), and the first iteration's test is
        proven — either constant-folded or guaranteed by guards on every
        loop entry (a `for` tests before the first iteration; the
        do-while body runs once regardless)."""
        loop = counted.loop
        header, latch = loop.header, loop.latch
        node = self.structured.loop_nodes.get(header)
        if node is None or node.shape != "dowhile":
            return False
        if header in self.structured.goto_targets \
                or latch in self.structured.goto_targets:
            return False
        if _entry_test_const_true(counted):
            return True
        entries = [p for p in header.predecessors if p not in loop.blocks]
        if not entries:
            return False
        for pred in entries:
            term = pred.terminator
            if not isinstance(term, CondBranch) \
                    or not isinstance(term.condition, ICmp):
                return False
            if not self._guard_equivalent(term, header, counted):
                return False
        return True

    def _fold_iv_merge_phis(self, counted: CountedLoop) -> None:
        """Rotation leaves merge phis over header computations of the IV
        (e.g. a CSE'd ``sext iv``): ``phi [cast(start), pre], [cast(iv'),
        latch]`` is identically ``cast(iv)`` at body position, so emit it
        as the IV expression instead of a mutable variable."""
        loop = counted.loop
        latch = loop.latch
        for phi in loop.header_phis():
            if phi is counted.phi or phi in self.skip:
                continue
            incoming = dict((block, value) for value, block in phi.incoming)
            if latch not in incoming or len(incoming) != 2:
                continue
            latch_value = incoming.pop(latch)
            entry_value = next(iter(incoming.values()))
            if _strip_int_casts(latch_value) is not counted.step_inst:
                continue
            if not _equivalent_values(_strip_int_casts(entry_value),
                                      counted.start):
                continue
            iv_name = self.name_of(counted.phi)
            if self.options.elide_widening_casts \
                    or phi.type == counted.phi.type:
                self.expr_overrides[phi] = ast.Ident(iv_name)
            else:
                self.expr_overrides[phi] = ast.CastExpr(
                    self.ctype(phi.type), ast.Ident(iv_name))
            self.skip.add(phi)

    # ----- Planning -------------------------------------------------------------

    def _reserve_names(self) -> None:
        for var in self.function.parent.globals.values() \
                if self.function.parent else []:
            self.names.reserve(sanitize_identifier(var.name))

    def _index_positions(self) -> None:
        for block in self.function.blocks:
            for i, inst in enumerate(block.instructions):
                self._positions[inst] = (block, i)

    def _real_users(self, inst: Instruction) -> List[Instruction]:
        return [u for u in inst.users if not isinstance(u, DbgValue)]

    def _barrier_between(self, def_inst: Instruction,
                         use_inst: Instruction) -> bool:
        block, start = self._positions[def_inst]
        _, end = self._positions[use_inst]
        for inst in block.instructions[start + 1:end]:
            if isinstance(inst, (Store, Call)):
                return True
        return False

    def _plan_placement(self) -> None:
        """Decide, per value: inline into its single user, or declare."""
        if not self.options.inline_expressions:
            # Statement-per-instruction mode: GEPs still fold into their
            # load/store (address modes), everything else gets a variable.
            for block in self.function.blocks:
                for inst in block.instructions:
                    if inst.type.is_void or isinstance(inst, (Phi, Alloca)):
                        continue
                    users = self._real_users(inst)
                    if not users:
                        continue
                    if isinstance(inst, GetElementPtr) and len(users) == 1 \
                            and isinstance(users[0], (Load, Store)) \
                            and users[0] in self._positions \
                            and self._positions[users[0]][0] is \
                            self._positions[inst][0]:
                        self._inline.add(inst)
                        continue
                    if any(isinstance(u, Phi)
                           or u not in self._positions
                           or self._positions[u][0]
                           is not self._positions[inst][0]
                           for u in users):
                        self._cross_block.add(inst)
            for block in self.function.blocks:
                for phi in block.phis():
                    self._cross_block.add(phi)
            # Loop-controlling comparisons: a do-while's condition prints
            # outside the body's braces, so a body-local declaration would
            # be out of scope — hoist it; a while's condition must be a
            # pure expression — inline it.
            for loop in self.loop_info.all_loops():
                exiting = loop.exiting_blocks
                if len(exiting) != 1:
                    continue
                term = exiting[0].terminator
                if isinstance(term, CondBranch) \
                        and isinstance(term.condition, Instruction):
                    condition = term.condition
                    if loop.is_top_test:
                        self._inline.add(condition)
                        self._cross_block.discard(condition)
                    else:
                        self._inline.discard(condition)
                        self._cross_block.add(condition)
            return
        for block in self.function.blocks:
            for inst in block.instructions:
                if inst.type.is_void or isinstance(inst, (Phi, Alloca)):
                    continue
                users = self._real_users(inst)
                if not users:
                    continue
                if any(isinstance(u, Phi)
                       or u not in self._positions
                       or self._positions[u][0] is not block
                       for u in users):
                    # Used across blocks (or by a phi): needs a hoisted
                    # variable so every structured scope can see it.
                    self._cross_block.add(inst)
                    continue
                if len(users) != 1:
                    continue  # declared locally in its own block
                user = users[0]
                if isinstance(inst, (Load, Call)) \
                        and self._barrier_between(inst, user):
                    continue
                self._inline.add(inst)
        # Phis always live in hoisted variables (SSA de-transformation).
        for block in self.function.blocks:
            for phi in block.phis():
                self._cross_block.add(phi)

    # ----- Types / names ---------------------------------------------------------

    def ctype(self, vtype: ir_ty.Type) -> ast.CType:
        return ctype_of(vtype, _i64_spelling(self.options))

    def name_of(self, value: Value) -> str:
        return self.names.name_for(value)

    # ----- Recovered types (--types=recovered) -----------------------------------

    def _type_hints(self) -> Optional[Dict[Value, str]]:
        """Per-value naming hints from recovered types (``i``/``d``/``p``
        prefixes), the metadata-free substitute for source names."""
        if self.typeinfo is None:
            return None
        from ..analysis.typeinfer import RFloat, RInt, RPointer
        hints: Dict[Value, str] = {}
        values: List[Value] = list(self.function.arguments)
        for block in self.function.blocks:
            values.extend(i for i in block.instructions
                          if not i.type.is_void)
        for value in values:
            rec = self.typeinfo.rectype_of(value)
            if isinstance(rec, RInt):
                hints[value] = "i"
            elif isinstance(rec, RFloat):
                hints[value] = "d"
            elif isinstance(rec, RPointer):
                hints[value] = "p"
        return hints

    def _plan_reshapes(self) -> None:
        for value, root in self.storage.root_of_value.items():
            self._root_values[root] = value
            if root.kind == "global":
                reshape = self.module_ctx.global_reshapes.get(root.name)
                if reshape is not None:
                    self._reshapes[root] = reshape
            elif isinstance(value, Alloca):
                reshape = _plan_reshape(self.storage, self.typeinfo,
                                        self.function, root,
                                        _i64_spelling(self.options))
                if reshape is not None and _declared_layout(
                        value.allocated_type,
                        _i64_spelling(self.options)) != \
                        (reshape.element, reshape.dims):
                    self._reshapes[root] = reshape

    def _rec_scalar(self, rec, declared: ir_ty.Type) -> Optional[ast.CType]:
        """Recovered scalar as a C type, when it refines the trusted IR
        facts (widths come from the instruction stream, so the declared
        width is kept); ``None`` sends the caller to the fallback."""
        from ..analysis.typeinfer import RFloat, RInt, RPointer, RUnknown
        if isinstance(rec, RFloat) and declared.is_float:
            return ast.DOUBLE
        if isinstance(rec, RInt) and declared.is_integer:
            if declared.bits == 64:
                return ast.CInt(_i64_spelling(self.options))
            return ast.INT
        if isinstance(rec, RPointer) and declared.is_pointer:
            inner = None
            if not isinstance(rec.pointee, RUnknown) \
                    and not declared.pointee.is_array \
                    and not declared.pointee.is_function:
                inner = self._rec_scalar(rec.pointee, declared.pointee)
            return ast.CPointer(inner or self.ctype(declared.pointee))
        return None

    def decl_ctype(self, value: Value) -> ast.CType:
        """Declaration type for ``value``: usage-recovered under
        ``--types=recovered`` (falling back to the declared IR type when
        recovery is unresolved), declared IR type otherwise."""
        if self.typeinfo is None:
            return self.ctype(value.type)
        rec = self._rec_scalar(self.typeinfo.rectype_of(value), value.type)
        return rec or self.ctype(value.type)

    def alloca_ctype(self, alloca: Alloca) -> ast.CType:
        """Declaration type for a stack root, honoring a recovered
        reshape (byte blob -> typed array)."""
        if self.storage is not None:
            root = self.storage.root_of_value.get(alloca)
            reshape = self._reshapes.get(root) if root is not None else None
            if reshape is not None:
                ctype: ast.CType = reshape.element
                for dim in reversed(reshape.dims):
                    ctype = ast.CArray(ctype, dim)
                return ctype
        return self.ctype(alloca.allocated_type)

    def _reshaped_lvalue(self, pointer: Value) -> Optional[ast.Expr]:
        """Reprint an access to a reshaped root as natural subscripts
        derived from the recovered geometry."""
        if self.storage is None or not self._reshapes:
            return None
        from ..analysis.storage import pointer_chain_terms
        base, terms, const = pointer_chain_terms(pointer)
        root = self.storage.root_for(base)
        if root is None or base is not self._root_values.get(root):
            return None
        reshape = self._reshapes.get(root)
        if reshape is None:
            return None
        if const % reshape.width != 0 \
                or any(s % reshape.width != 0 for _, s in terms):
            return None
        if root.kind == "global":
            result: ast.Expr = ast.Ident(sanitize_identifier(root.name))
        elif isinstance(base, Alloca):
            result = ast.Ident(self.declare_top(
                base, self.alloca_ctype(base)))
        else:
            result = self.expr(base)
        remaining = list(terms)
        const_left = const
        for stride in reshape.strides:
            parts: List[ast.Expr] = []
            rest: List[Tuple[Value, int]] = []
            for value, s in remaining:
                if abs(s) % stride == 0:
                    coeff = s // stride
                    term = self.expr(value)
                    if coeff != 1:
                        term = ast.Binary("*", term, ast.IntLit(coeff))
                    parts.append(term)
                else:
                    rest.append((value, s))
            remaining = rest
            const_part = const_left // stride
            const_left -= const_part * stride
            index: Optional[ast.Expr] = None
            for part in parts:
                index = part if index is None else ast.Binary("+", index,
                                                              part)
            if const_part != 0 or index is None:
                lit = ast.IntLit(const_part)
                index = lit if index is None else ast.Binary("+", index, lit)
            result = ast.Index(result, index)
        if remaining or const_left:
            return None  # does not decompose; keep the IR-driven printing
        return result

    # ----- Expressions -----------------------------------------------------------

    def _is_transparent_cast(self, value: Value) -> bool:
        """Widening casts SPLENDID elides entirely, even when multi-use,
        as long as reading the operand's C variable at any use site gives
        the value the cast saw (operand is immutable there: a constant,
        an argument, a same-block value, or a loop IV the cast observes
        within one iteration)."""
        if not self.options.elide_widening_casts:
            return False
        if not (isinstance(value, Cast) and value.opcode in ("sext", "zext")):
            return False
        inner = value.value
        if isinstance(inner, (Constant, Argument, GlobalVariable)):
            return True
        if isinstance(inner, Instruction):
            if inner in self._counted_plan_ivs():
                return True
            if inner.parent is value.parent and not isinstance(inner, Phi):
                return True
        return False

    def _counted_plan_ivs(self):
        return {c.phi for c in self._counted_plan.values()}

    def _remat_ok(self, inst: Instruction, depth: int = 0) -> bool:
        """True when a hoisted address chain can be recomputed at its use
        sites: every leaf reads a value whose C variable is stable there
        (constants, arguments, globals, loop IVs, or single-assignment
        temporaries that no name-sharing group mutates)."""
        if not self.options.rematerialize_addresses or depth > 12:
            return False
        if not isinstance(inst, (GetElementPtr, Cast, BinaryOp)):
            return False
        if isinstance(inst, BinaryOp) and inst.opcode in (
                "sdiv", "srem", "udiv", "urem"):
            return False
        for op in inst.operands:
            if isinstance(op, (Constant, Argument, GlobalVariable)):
                continue
            if isinstance(op, Instruction):
                if op in self._counted_plan_ivs():
                    continue
                if op in self.expr_overrides:
                    continue
                if isinstance(op, Phi):
                    return False
                if self._remat_ok(op, depth + 1):
                    continue
                group = self.module_ctx.source_groups.get(op)
                if group is not None \
                        and self.module_ctx.group_sizes.get(group, 0) > 1:
                    return False  # its C variable is reassigned
                continue  # single-assignment temporary: stable
            return False
        return True

    def _gep_prints_inline(self, gep: GetElementPtr) -> bool:
        return gep in self._inline or self._remat_ok(gep)

    def expr(self, value: Value) -> ast.Expr:
        if value in self.expr_overrides:
            return self.expr_overrides[value]
        if self._is_transparent_cast(value):
            return self.expr(value.value)
        if isinstance(value, ConstantInt):
            return ast.IntLit(value.value)
        if isinstance(value, ConstantFloat):
            return ast.FloatLit(value.value)
        if isinstance(value, UndefValue):
            return ast.IntLit(0)
        if isinstance(value, ConstantPointerNull):
            return ast.IntLit(0)
        if isinstance(value, GlobalVariable):
            return ast.Ident(sanitize_identifier(value.name))
        if isinstance(value, Function):
            return ast.Ident(sanitize_identifier(value.name))
        if isinstance(value, Argument):
            return ast.Ident(self.name_of(value))
        if isinstance(value, Instruction):
            if value in self._inline and value not in self._emitted_assign:
                return self.build_expr(value)
            if isinstance(value, GetElementPtr) and self._remat_ok(value):
                return self.build_expr(value)
            return ast.Ident(self.name_of(value))
        raise DecompileError(f"cannot form expression for {value!r}")

    def build_expr(self, inst: Instruction) -> ast.Expr:
        if isinstance(inst, BinaryOp):
            lhs, rhs = inst.lhs, inst.rhs
            if inst.opcode in ("sub", "fsub") and _is_zero(lhs):
                return ast.Unary("-", self.expr(rhs))
            if inst.opcode == "xor" and _is_all_ones(rhs):
                return ast.Unary("~", self.expr(lhs))
            return ast.Binary(_BINOP_C[inst.opcode], self.expr(lhs),
                              self.expr(rhs))
        if isinstance(inst, (ICmp, FCmp)):
            return ast.Binary(_CMP_C[inst.predicate], self.expr(inst.lhs),
                              self.expr(inst.rhs))
        if isinstance(inst, Load):
            return self.lvalue(inst.pointer)
        if isinstance(inst, GetElementPtr):
            return self.address_of(inst)
        if isinstance(inst, Cast):
            return self.cast_expr(inst)
        if isinstance(inst, Select):
            return ast.Conditional(self.condition_expr(inst.condition),
                                   self.expr(inst.if_true),
                                   self.expr(inst.if_false))
        if isinstance(inst, Call):
            return ast.CallExpr(sanitize_identifier(inst.callee_name),
                                [self.expr(a) for a in inst.args])
        if isinstance(inst, Phi):
            return ast.Ident(self.name_of(inst))
        raise DecompileError(f"cannot inline instruction {inst}")

    def cast_expr(self, inst: Cast) -> ast.Expr:
        inner = self.expr(inst.value)
        if inst.opcode in ("sext", "zext"):
            if self.options.elide_widening_casts:
                return inner
            return ast.CastExpr(self.ctype(inst.type), inner)
        if inst.opcode in ("trunc", "fptosi", "sitofp", "bitcast",
                           "ptrtoint", "inttoptr"):
            return ast.CastExpr(self.ctype(inst.type), inner)
        raise DecompileError(f"unknown cast {inst.opcode}")

    def condition_expr(self, value: Value) -> ast.Expr:
        return self.expr(value)

    def lvalue(self, pointer: Value) -> ast.Expr:
        """C lvalue for a load/store address."""
        reshaped = self._reshaped_lvalue(pointer)
        if reshaped is not None:
            return reshaped
        if isinstance(pointer, GetElementPtr) \
                and self._gep_prints_inline(pointer):
            return self.address_to_lvalue(pointer)
        if isinstance(pointer, Alloca):
            return ast.Ident(self.declare_top(
                pointer, self.alloca_ctype(pointer)))
        if isinstance(pointer, GlobalVariable):
            if pointer.value_type.is_array:
                raise DecompileError("direct load of array global")
            return ast.Ident(sanitize_identifier(pointer.name))
        inner = self.expr(pointer)
        if isinstance(inner, ast.Unary) and inner.op == "&":
            return inner.operand  # *&x -> x
        return ast.Unary("*", inner)

    def address_to_lvalue(self, gep: GetElementPtr) -> ast.Expr:
        reshaped = self._reshaped_lvalue(gep)
        if reshaped is not None:
            return reshaped
        if self.options.byte_level_addressing:
            return self._byte_lvalue(gep)
        base_expr, indices = self._collect_subscripts(gep)
        result = base_expr
        for index in indices:
            result = ast.Index(result, index)
        return result

    def _collect_subscripts(self, gep: GetElementPtr):
        chains: List[GetElementPtr] = []
        current: Value = gep
        while isinstance(current, GetElementPtr) and \
                (current is gep or self._gep_prints_inline(current)):
            chains.append(current)
            current = current.pointer
        base_expr = self.expr(current)
        indices: List[ast.Expr] = []
        for link in reversed(chains):
            link_indices = link.indices
            pointee = link.pointer.type.pointee
            first = link_indices[0]
            if not (isinstance(first, ConstantInt) and first.value == 0
                    and len(link_indices) > 1 and pointee.is_array):
                indices.append(self.expr(first))
            for idx in link_indices[1:]:
                indices.append(self.expr(idx))
        return base_expr, indices

    def _byte_lvalue(self, gep: GetElementPtr) -> ast.Expr:
        """Ghidra-flavored address arithmetic: *(double *)((long)A + i * 8)."""
        pointee = gep.pointer.type.pointee
        base = self.expr(gep.pointer)
        total: Optional[ast.Expr] = None
        current = pointee
        for i, index in enumerate(gep.indices):
            if i > 0:
                current = ir_ty.element_type(current)
            size = ir_ty.sizeof(current)
            term = self.expr(index)
            if not (isinstance(index, ConstantInt) and index.value == 0):
                scaled = ast.Binary("*", term, ast.IntLit(size))
                total = scaled if total is None else ast.Binary("+", total,
                                                                scaled)
        address = ast.CastExpr(ast.CInt("long"), base)
        if total is not None:
            address = ast.Binary("+", address, total)
        result_type = self.ctype(gep.type)
        return ast.Unary("*", ast.CastExpr(result_type, address))

    def address_of(self, gep: GetElementPtr) -> ast.Expr:
        """Expression for a GEP used as a pointer value (not deref'd)."""
        lvalue = self.address_to_lvalue(gep)
        if isinstance(lvalue, ast.Index) and not gep.type.pointee.is_array:
            # &A[i] prints naturally as A + i for 1-d addressing.
            return ast.Binary("+", lvalue.base, lvalue.index)
        return ast.Unary("&", lvalue)

    # ----- Declarations ---------------------------------------------------------

    def declare_top(self, value: Value, ctype: Optional[ast.CType] = None) -> str:
        name = self.name_of(value)
        if name not in self.top_decls:
            self.top_decls[name] = ast.Declaration(
                ctype or self.decl_ctype(value), name)
        return name

    # ----- Statements -----------------------------------------------------------

    def emit(self) -> ast.FunctionDef:
        params = []
        for arg in self.function.arguments:
            if self.options.strip_debug_names:
                param_name = self.name_of(arg)
            else:
                param_name = self.names._unique(
                    sanitize_identifier(arg.name or "arg"))
                self.names.assigned[arg] = param_name
            params.append(ast.Param(self.decl_ctype(arg), param_name))

        if not self.options.structure_cfg:
            body_stmts = self.emit_goto_body()
        elif self.structured is not None:
            from ..structure.lower import StructuredLowering
            lowering = StructuredLowering(self, self.structured)
            body_stmts = lowering.lower()
            self.guard_elisions = lowering.guard_elisions
        else:
            body_stmts = self.emit_region(self.function.entry, None, None)
        decls = [self.top_decls[name] for name in self.top_decls]
        body = ast.Compound(decls + body_stmts)
        return ast.FunctionDef(self.ctype(self.function.return_type),
                               sanitize_identifier(self.function.name),
                               params, body)

    # --- Straight-line statements of one block.

    def emit_block_stmts(self, block: BasicBlock) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        for inst in block.instructions:
            if inst.is_terminator or isinstance(inst, (Phi, DbgValue)):
                continue
            if inst in self.skip:
                continue
            if isinstance(inst, Alloca):
                # Stack slots surviving mem2reg hold arrays or are
                # runtime-call out-params; give them a variable.
                self.declare_top(inst, self.alloca_ctype(inst))
                self.expr_overrides[inst] = ast.Unary(
                    "&", ast.Ident(self.name_of(inst)))
                continue
            if isinstance(inst, Store):
                stmts.append(ast.ExprStmt(ast.Assign(
                    "=", self.lvalue(inst.pointer), self.expr(inst.value))))
                continue
            if isinstance(inst, Call):
                translated = None
                if self.module_ctx.call_translator is not None:
                    translated = self.module_ctx.call_translator(self, inst)
                if translated is not None:
                    stmts.extend(translated)
                    continue
                if inst.type.is_void or not self._real_users(inst):
                    stmts.append(ast.ExprStmt(self.build_expr(inst)))
                    continue
            if inst.type.is_void:
                continue
            if inst in self._inline or self._is_transparent_cast(inst):
                continue
            if isinstance(inst, GetElementPtr) and self._remat_ok(inst):
                continue  # recomputed at each use site
            if not self._real_users(inst):
                continue
            stmts.append(self._define_value(inst))
        stmts.extend(self._phi_edge_assigns(block))
        return stmts

    def _define_value(self, inst: Instruction) -> ast.Stmt:
        init = self.build_expr(inst)
        if inst in self._cross_block:
            name = self.declare_top(inst)
            self._emitted_assign.add(inst)
            return ast.ExprStmt(ast.Assign("=", ast.Ident(name), init))
        name = self.name_of(inst)
        return ast.Declaration(self.decl_ctype(inst), name, init)

    def _phi_edge_assigns(self, block: BasicBlock) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        for succ in block.successors:
            pending: List[tuple] = []
            for phi in succ.phis():
                if phi in self.skip:
                    continue
                incoming = phi.incoming_for(block)
                if incoming is None or incoming is phi:
                    continue
                name = self.declare_top(phi)
                value_expr = self.expr(incoming)
                if isinstance(value_expr, ast.Ident) \
                        and value_expr.name == name:
                    continue  # x = x after name sharing: drop
                pending.append((name, value_expr))
            stmts.extend(self._sequence_parallel_copies(pending))
        return stmts

    def _sequence_parallel_copies(self, pending: List[tuple]) -> List[ast.Stmt]:
        """Serialize one edge's phi copies.

        The phis of a block read their operands simultaneously, so a
        naive statement-per-phi emission loses a value whenever one
        phi's incoming names another phi of the same block (e.g. the
        rotated gcd loop: ``b' = a %% b; a' = b``).  Emit copies whose
        destination nobody else still reads first, and break pure swap
        cycles by parking one old value in a temporary."""
        stmts: List[ast.Stmt] = []
        while pending:
            ready = None
            for index, (name, _) in enumerate(pending):
                if not any(name in _expr_idents(other_expr)
                           for other_index, (_, other_expr)
                           in enumerate(pending) if other_index != index):
                    ready = index
                    break
            if ready is None:
                # Every destination is still read by a peer: a swap
                # cycle.  Save one old value, redirect its readers.
                name, _ = pending[0]
                temp = self.names._unique(f"{name}_old")
                self.top_decls[temp] = ast.Declaration(
                    self.top_decls[name].ctype, temp)
                stmts.append(ast.ExprStmt(ast.Assign(
                    "=", ast.Ident(temp), ast.Ident(name))))
                pending = [(other_name, _replace_ident(other_expr, name, temp)
                            if other_index else other_expr)
                           for other_index, (other_name, other_expr)
                           in enumerate(pending)]
                ready = 0
            name, value_expr = pending.pop(ready)
            stmts.append(ast.ExprStmt(ast.Assign(
                "=", ast.Ident(name), value_expr)))
        return stmts

    # --- Structured emission.

    def emit_region(self, start: Optional[BasicBlock],
                    stop: Optional[BasicBlock],
                    loop_ctx: Optional[_LoopContext]) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        current = start
        guard_limit = 0
        while current is not None and current is not stop:
            guard_limit += 1
            if guard_limit > 10_000:
                raise DecompileError("structurer failed to make progress")
            inner = self.loop_info.loop_with_header(current)
            if inner is not None and (loop_ctx is None
                                      or inner is not loop_ctx.loop):
                loop_stmts, continue_at = self.emit_loop(inner, loop_ctx)
                stmts.extend(loop_stmts)
                current = continue_at
                continue

            # Guarded rotated loop -> for loop with the guard removed.
            if self.options.detransform_rotation:
                match = self._match_guarded_loop(current)
                if match is not None:
                    pre_stmts, for_stmt, continue_at = match
                    stmts.extend(pre_stmts)
                    stmts.append(for_stmt)
                    current = continue_at
                    continue

            block_stmts = self.emit_block_stmts(current)
            term = current.terminator
            if isinstance(term, Ret):
                stmts.extend(block_stmts)
                if term.value is not None:
                    stmts.append(ast.Return(self.expr(term.value)))
                elif stop is None and _is_last_return(self.function, current):
                    pass  # implicit return at end of void function
                else:
                    stmts.append(ast.Return())
                return stmts
            if isinstance(term, Unreachable):
                stmts.extend(block_stmts)
                return stmts
            if isinstance(term, CondBranch):
                stmts.extend(block_stmts)
                join = self._join_of(current, stop, loop_ctx)
                then_stmts = self._branch_arm(term.if_true, join, loop_ctx)
                else_stmts = self._branch_arm(term.if_false, join, loop_ctx)
                condition = self.condition_expr(term.condition)
                if not then_stmts and else_stmts:
                    condition = _negate(condition)
                    then_stmts, else_stmts = else_stmts, []
                stmts.append(ast.If(
                    condition, ast.Compound(then_stmts),
                    ast.Compound(else_stmts) if else_stmts else None))
                current = join
                continue
            if isinstance(term, Branch):
                stmts.extend(block_stmts)
                jump = self._loop_jump(term.target, loop_ctx, current)
                if jump is not None:
                    stmts.append(jump)
                    return stmts
                current = term.target
                continue
            raise DecompileError(f"unhandled terminator {term}")
        return stmts

    def _branch_arm(self, target: BasicBlock, join: Optional[BasicBlock],
                    loop_ctx: Optional[_LoopContext]) -> List[ast.Stmt]:
        jump = self._loop_jump(target, loop_ctx, None)
        if jump is not None and target is not join:
            return [jump]
        if target is join:
            return []
        return self.emit_region(target, join, loop_ctx)

    def _loop_jump(self, target: BasicBlock,
                   loop_ctx: Optional[_LoopContext],
                   source: Optional[BasicBlock]) -> Optional[ast.Stmt]:
        ctx = loop_ctx
        while ctx is not None:
            if target is ctx.exit_block:
                if ctx is not loop_ctx:
                    raise DecompileError(
                        "break out of a non-innermost loop needs goto")
                return ast.Break()
            if target is ctx.loop.header and ctx is loop_ctx and (
                    source is None or source is not ctx.loop.latch):
                return ast.Continue()
            ctx = ctx.parent
        return None

    def _join_of(self, block: BasicBlock, stop: Optional[BasicBlock],
                 loop_ctx: Optional[_LoopContext]) -> Optional[BasicBlock]:
        join = self.postdom.immediate(block)
        if join is None:
            return stop
        if loop_ctx is not None and join not in loop_ctx.loop.blocks:
            if join is not loop_ctx.exit_block:
                return join
        return join

    # --- Loops.

    def emit_loop(self, loop: Loop, parent_ctx: Optional[_LoopContext]
                  ) -> Tuple[List[ast.Stmt], Optional[BasicBlock]]:
        exit_block = loop.unique_exit
        ctx = _LoopContext(loop, exit_block, parent_ctx)

        planned = self._counted_plan.get(loop.header)
        if planned is not None:
            return [self.emit_for_loop(planned, ctx)], exit_block

        if loop.is_rotated:
            return [self.emit_do_while(loop, ctx)], exit_block

        if loop.is_top_test and self._simple_top_test(loop):
            stmts = [self.emit_while(loop, ctx)]
            # The header is the exiting block but its statements are never
            # emitted as a block; exit-edge phi assignments (LCSSA values)
            # land right after the loop, where the header's final values
            # are visible in the loop variables.
            if exit_block is not None:
                for phi in exit_block.phis():
                    if phi in self.skip:
                        continue
                    incoming = phi.incoming_for(loop.header)
                    if incoming is None or incoming is phi:
                        continue
                    name = self.declare_top(phi)
                    stmts.append(ast.ExprStmt(ast.Assign(
                        "=", ast.Ident(name), self.expr(incoming))))
            return stmts, exit_block

        raise DecompileError(
            f"cannot structure loop at {loop.header.name} "
            f"(irreducible or multi-exit)")

    def _for_constructible(self, counted: CountedLoop) -> bool:
        return counted.compares_next

    def _step_consumable(self, counted: CountedLoop) -> bool:
        """True when the increment has no uses beyond the IV machinery
        (then it is folded into the for-step; otherwise it stays a
        visible `iv + step` value the body computes)."""
        for user in self._real_users(counted.step_inst):
            if user is counted.phi or user is counted.compare:
                continue
            if isinstance(user, Cast) and user.opcode in ("sext", "zext") \
                    and all(u is counted.compare
                            for u in self._real_users(user)):
                continue
            return False
        return True

    def _mark_for_consumed(self, counted: CountedLoop) -> str:
        """Reserve the IV variable and consume the IV machinery (phi,
        compare, the cast feeding the compare, and — when nothing else
        reads it — the increment)."""
        iv_name = self.declare_top(counted.phi)
        self.skip.add(counted.phi)
        self.skip.add(counted.compare)
        self.expr_overrides[counted.phi] = ast.Ident(iv_name)
        self.skip.add(counted.step_inst)
        for operand in counted.compare.operands:
            if isinstance(operand, Cast) \
                    and operand.opcode in ("sext", "zext") \
                    and operand.value is counted.step_inst:
                if all(u is counted.compare
                       for u in self._real_users(operand)):
                    self.skip.add(operand)
        if self._step_consumable(counted):
            self.expr_overrides[counted.step_inst] = ast.Ident(iv_name)
        else:
            # The increment doubles as a body value (CSE merged it with an
            # `iv + step` subscript).  Inline it as the expression — the IV
            # variable holds the pre-increment value at every body use, and
            # past the loop it holds the first failing value, so `iv + step`
            # reads correctly everywhere the SSA value was legal.
            step = counted.step.value
            if step >= 0:
                expr = ast.Binary("+", ast.Ident(iv_name), ast.IntLit(step))
            else:
                expr = ast.Binary("-", ast.Ident(iv_name), ast.IntLit(-step))
            self.expr_overrides[counted.step_inst] = expr
        return iv_name

    def emit_for_loop(self, counted: CountedLoop,
                      ctx: Optional[_LoopContext],
                      body_stmts: Optional[List[ast.Stmt]] = None) -> ast.Stmt:
        loop = counted.loop
        iv_name = self._mark_for_consumed(counted)

        init = ast.ExprStmt(ast.Assign("=", ast.Ident(iv_name),
                                       self.expr(counted.start)))
        bound_expr = self.expr(counted.bound)
        condition = ast.Binary(_CMP_C[counted.predicate],
                               ast.Ident(iv_name), bound_expr)
        step_value = counted.step.value
        if self.options.increment_style == "compact" and step_value in (1, -1):
            step = ast.Unary("++" if step_value == 1 else "--",
                             ast.Ident(iv_name), postfix=True)
        elif step_value >= 0:
            step = ast.Assign("=", ast.Ident(iv_name),
                              ast.Binary("+", ast.Ident(iv_name),
                                         ast.IntLit(step_value)))
        else:
            step = ast.Assign("=", ast.Ident(iv_name),
                              ast.Binary("-", ast.Ident(iv_name),
                                         ast.IntLit(-step_value)))
        body = body_stmts if body_stmts is not None \
            else self._loop_body_stmts(loop, ctx)
        stmt = ast.For(init, condition, step, ast.Compound(body))
        # The re-fusion pass (core.fusion) only merges loop pairs the
        # fission driver produced; the IR header name is its evidence.
        stmt.ir_header = loop.header.name
        return stmt

    def emit_do_while(self, loop: Loop, ctx: _LoopContext) -> ast.Stmt:
        latch = loop.latch
        term: CondBranch = latch.terminator
        body = self._loop_body_stmts(loop, ctx)
        condition = self.condition_expr(term.condition)
        if term.if_true not in loop.blocks:
            condition = _negate(condition)
        return ast.DoWhile(ast.Compound(body), condition)

    def _simple_top_test(self, loop: Loop) -> bool:
        header = loop.header
        for inst in header.instructions:
            if isinstance(inst, (Phi, DbgValue, ICmp, FCmp)) \
                    or inst.is_terminator:
                continue
            return False
        return True

    def emit_while(self, loop: Loop, ctx: _LoopContext) -> ast.Stmt:
        header = loop.header
        term: CondBranch = header.terminator
        condition = self.condition_expr(term.condition)
        body_entry = term.if_true if term.if_true in loop.blocks \
            else term.if_false
        if term.if_true not in loop.blocks:
            condition = _negate(condition)
        body = self.emit_region(body_entry, header, ctx)
        # The back-edge sources owe phi updates; emit_region handles them
        # when it reaches the latch (its successors include the header).
        body = body + self._phi_edge_assigns_for_while(loop)
        return ast.While(condition, ast.Compound(body))

    def _phi_edge_assigns_for_while(self, loop: Loop) -> List[ast.Stmt]:
        return []  # handled by per-block emission

    def _loop_body_stmts(self, loop: Loop,
                         ctx: _LoopContext) -> List[ast.Stmt]:
        header, latch = loop.header, loop.latch
        if header is latch:
            return self.emit_block_stmts(header)
        body = self.emit_region(header, latch, ctx)
        body += self.emit_block_stmts(latch)
        return body

    # --- Guarded-loop matching (Loop-Rotate Detransformer, §4.2).

    def _match_guarded_loop(self, block: BasicBlock):
        term = block.terminator
        if not isinstance(term, CondBranch) or not isinstance(
                term.condition, ICmp):
            return None
        for target, other in ((term.if_true, term.if_false),
                              (term.if_false, term.if_true)):
            counted = self._counted_plan.get(target)
            if counted is None:
                continue
            loop = counted.loop
            if loop.unique_exit is not other:
                continue
            if not self._guard_equivalent(term, target, counted):
                continue
            # The guard is redundant (§4.2): drop it and emit the for-loop.
            self.skip.add(term.condition)
            pre = self.emit_block_stmts(block)
            ctx = _LoopContext(loop, other, None)
            for_stmt = self.emit_for_loop(counted, ctx)
            for_stmt = self._postprocess_for(for_stmt)
            return pre, for_stmt, other
        return None

    def _postprocess_for(self, stmt: ast.Stmt) -> ast.Stmt:
        return stmt

    def _guard_equivalent(self, term: CondBranch, loop_target: BasicBlock,
                          counted: CountedLoop) -> bool:
        """Prove the preheader guard equals the for-loop's initial test
        ``start PRED bound`` (paper §4.2's equivalence check)."""
        guard: ICmp = term.condition
        enter_on_true = term.if_true is loop_target
        predicate = guard.predicate
        if not enter_on_true:
            from ..ir.instructions import INVERTED_PREDICATE
            predicate = INVERTED_PREDICATE[predicate]
        lhs, rhs = guard.lhs, guard.rhs
        if predicate == counted.predicate:
            return (_equivalent_values(lhs, counted.start)
                    and _equivalent_values(rhs, counted.bound))
        from ..ir.instructions import SWAPPED_PREDICATE
        if SWAPPED_PREDICATE.get(predicate) == counted.predicate:
            return (_equivalent_values(rhs, counted.start)
                    and _equivalent_values(lhs, counted.bound))
        return False

    # --- Goto-mode emission (LLVM CBackend style).

    def emit_goto_body(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        blocks = self.function.blocks
        multi = len(blocks) > 1
        for index, block in enumerate(blocks):
            if multi:
                stmts.append(ast.Label(_label(block)))
            stmts.extend(self.emit_block_stmts(block))
            term = block.terminator
            if isinstance(term, Ret):
                if term.value is not None:
                    stmts.append(ast.Return(self.expr(term.value)))
                elif index != len(blocks) - 1:
                    stmts.append(ast.Return())
            elif isinstance(term, CondBranch):
                stmts.append(ast.If(
                    self.condition_expr(term.condition),
                    ast.Compound([ast.Goto(_label(term.if_true))]),
                    ast.Compound([ast.Goto(_label(term.if_false))])))
            elif isinstance(term, Branch):
                if index + 1 >= len(blocks) \
                        or blocks[index + 1] is not term.target:
                    stmts.append(ast.Goto(_label(term.target)))
            elif isinstance(term, Unreachable):
                pass
        return stmts


def _label(block: BasicBlock) -> str:
    return sanitize_identifier(f"bb_{block.name}")


def _expr_idents(expr: ast.Expr) -> Set[str]:
    return {node.name for node in ast.walk_exprs(expr)
            if isinstance(node, ast.Ident)}


def _replace_ident(expr: ast.Expr, old: str, new: str) -> ast.Expr:
    """Copy `expr` with every ``Ident(old)`` read renamed to `new`.

    Copy-on-write: expression nodes can be shared with other statement
    trees, so the original is never mutated."""
    if isinstance(expr, ast.Ident):
        return ast.Ident(new) if expr.name == old else expr
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=_replace_ident(expr.operand, old, new))
    if isinstance(expr, ast.Binary):
        return replace(expr, lhs=_replace_ident(expr.lhs, old, new),
                       rhs=_replace_ident(expr.rhs, old, new))
    if isinstance(expr, ast.Conditional):
        return replace(expr,
                       condition=_replace_ident(expr.condition, old, new),
                       if_true=_replace_ident(expr.if_true, old, new),
                       if_false=_replace_ident(expr.if_false, old, new))
    if isinstance(expr, ast.CallExpr):
        return replace(expr, args=[_replace_ident(arg, old, new)
                                   for arg in expr.args])
    if isinstance(expr, ast.Index):
        return replace(expr, base=_replace_ident(expr.base, old, new),
                       index=_replace_ident(expr.index, old, new))
    if isinstance(expr, ast.CastExpr):
        return replace(expr, operand=_replace_ident(expr.operand, old, new))
    if isinstance(expr, ast.Comma):
        return replace(expr, parts=[_replace_ident(part, old, new)
                                    for part in expr.parts])
    return expr


def _entry_test_const_true(counted: CountedLoop) -> bool:
    """Constant-fold the for-loop's first test ``start PRED bound``."""
    start, bound = counted.start, counted.bound
    if not isinstance(start, ConstantInt) \
            or not isinstance(bound, ConstantInt):
        return False
    a, b = start.value, bound.value
    pred = counted.predicate
    if pred.startswith("u") and (a < 0 or b < 0):
        return False  # unsigned wraparound: don't reason about it
    table = {"eq": a == b, "ne": a != b,
             "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
             "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b}
    return table.get(pred, False)


def _is_zero(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == 0


def _is_all_ones(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == -1


def _negate(expr: ast.Expr) -> ast.Expr:
    from ..minic.printer import _PRECEDENCE
    if isinstance(expr, ast.Binary):
        flips = {"==": "!=", "!=": "==", "<": ">=", ">": "<=",
                 "<=": ">", ">=": "<"}
        if expr.op in flips:
            return ast.Binary(flips[expr.op], expr.lhs, expr.rhs)
    if isinstance(expr, ast.Unary) and expr.op == "!":
        return expr.operand
    return ast.Unary("!", expr)


def _is_last_return(function: Function, block: BasicBlock) -> bool:
    return function.blocks and function.blocks[-1] is block


def _strip_int_casts(value: Value) -> Value:
    while isinstance(value, Cast) and value.opcode in ("sext", "zext",
                                                       "trunc"):
        value = value.value
    return value


def _equivalent_values(a: Value, b: Value, depth: int = 0) -> bool:
    """Structural equivalence of two IR expressions (guard-proof helper).

    Width-changing integer casts are looked through: loop bounds are
    proven in-range by construction, so ``trunc(x) == x`` for the values
    the guard compares (the same pragmatic proof SPLENDID applies).
    """
    a, b = _strip_int_casts(a), _strip_int_casts(b)
    if a is b:
        return True
    if depth > 8:
        return False
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.value == b.value
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return a.value == b.value
    if isinstance(a, Instruction) and isinstance(b, Instruction):
        if a.opcode != b.opcode or len(a.operands) != len(b.operands):
            return False
        if isinstance(a, (ICmp, FCmp)) and a.predicate != b.predicate:
            return False
        if isinstance(a, (Load, Call, Phi, Alloca)):
            return False  # not pure / context-dependent
        return all(_equivalent_values(x, y, depth + 1)
                   for x, y in zip(a.operands, b.operands))
    return False
