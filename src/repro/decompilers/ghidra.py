"""Ghidra-style baseline decompiler.

Simulates decompiling the *binary* (not the IR): all source-level names
are considered stripped (parameters become ``param_1``, locals become
``iVar``/``dVar``/``lVar``), addresses are printed as byte-level
arithmetic through casts (``*(double *)((long)A + i * 8)``), and —
matching Table 1 — Ghidra *does* reconstruct for-loops and de-transform
loop rotation, but keeps runtime calls and has no pragma support.
"""

from __future__ import annotations

from ..ir.module import Module
from .engine import DecompilerOptions, ModuleDecompiler

OPTIONS = DecompilerOptions(
    name="ghidra",
    structure_cfg=True,
    construct_for_loops=True,
    detransform_rotation=True,
    explicit_parallelism=False,
    rename_variables=False,
    naming_style="local",
    elide_widening_casts=False,
    byte_level_addressing=True,
    strip_debug_names=True,
    increment_style="verbose",
    inline_expressions=False,
)


def decompile(module: Module) -> str:
    """Decompile a module to C text in Ghidra style."""
    return ModuleDecompiler(module, OPTIONS).decompile_text()


def decompile_unit(module: Module):
    return ModuleDecompiler(module, OPTIONS).decompile()
