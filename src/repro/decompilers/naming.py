"""Variable-name allocation styles for the decompiler back ends.

Each baseline names values the way the real tool does:

* ``val``   — Rellic: ``val8``, ``val10``, phis become ``phi11``.
* ``local`` — Ghidra: ``iVar1``/``dVar2``/``lVar3`` by type, parameters
  ``param_1``...; all source names are considered stripped (binary input).
* ``tmp``   — LLVM CBackend: ``tmp__1``, ``tmp__2``...
* ``source``— SPLENDID: names come from the variable-generation map
  (debug metadata, Algorithms 1-2); unmapped values fall back to their
  virtual-register name, which is "unique and somewhat meaningful"
  (paper §4.3.2), e.g. ``indvar``.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, Optional, Set

from ..ir import types as ir_ty
from ..ir.instructions import Phi
from ..ir.values import Argument, Value

_IDENT_RE = re.compile(r"[^0-9a-zA-Z_]")

C_KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while",
})


def sanitize_identifier(name: str) -> str:
    clean = _IDENT_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = f"_{clean}"
    if clean in C_KEYWORDS:
        clean = f"{clean}_"
    return clean


class NameAllocator:
    def __init__(self, style: str,
                 source_names: Optional[Dict[Value, str]] = None,
                 source_groups: Optional[Dict[Value, object]] = None,
                 type_hints: Optional[Dict[Value, str]] = None):
        self.style = style
        self.source_names = source_names or {}
        # Recovered-type prefixes ('i'/'d'/'p') used by the 'source'
        # style when no metadata name is available — the decompiled text
        # then still telegraphs each variable's role (--types=recovered).
        self.type_hints = type_hints or {}
        # Values in the same group provably share one source variable
        # (Algorithm 2 removed every conflicting mapping), so they SHARE
        # one C name — this is the SSA de-transformation the paper
        # describes, not a collision to uniquify away.
        self.source_groups = source_groups or {}
        self._group_names: Dict[object, str] = {}
        self.taken: Set[str] = set()
        self.assigned: Dict[Value, str] = {}
        # origin[value]: 'source' (restored from debug metadata),
        # 'register' (virtual-register fallback), or 'synthetic'.
        self.origin: Dict[Value, str] = {}
        self._counter = itertools.count(1)

    def reserve(self, name: str) -> None:
        self.taken.add(name)

    def _unique(self, candidate: str) -> str:
        if candidate not in self.taken:
            self.taken.add(candidate)
            return candidate
        suffix = 1
        while f"{candidate}{suffix}" in self.taken:
            suffix += 1
        final = f"{candidate}{suffix}"
        self.taken.add(final)
        return final

    def name_for(self, value: Value) -> str:
        if value in self.assigned:
            return self.assigned[value]
        group = self.source_groups.get(value) \
            if self.style == "source" else None
        if group is not None and group in self._group_names:
            name = self._group_names[group]
            self.origin[value] = "source"
        else:
            name = self._unique(self._candidate(value))
            if group is not None:
                self._group_names[group] = name
        self.assigned[value] = name
        return name

    def _candidate(self, value: Value) -> str:
        index = next(self._counter)
        if self.style == "val":
            if isinstance(value, Phi):
                return f"phi{index}"
            if isinstance(value, Argument):
                return sanitize_identifier(value.name) or f"arg{index}"
            return f"val{index}"
        if self.style == "local":
            if isinstance(value, Argument):
                return f"param_{value.index + 1}"
            vtype = value.type
            if vtype.is_float:
                return f"dVar{index}"
            if vtype.is_pointer:
                return f"pdVar{index}"
            if vtype.is_integer and vtype.bits == 64:
                return f"lVar{index}"
            return f"iVar{index}"
        if self.style == "tmp":
            if isinstance(value, Argument):
                return sanitize_identifier(value.name) or f"arg{index}"
            return f"tmp__{index}"
        if self.style == "source":
            mapped = self.source_names.get(value)
            if mapped:
                self.origin[value] = "source"
                return sanitize_identifier(mapped)
            if isinstance(value, Argument) and value.name:
                # Parameter names survive in the symbol table.
                self.origin[value] = "source"
                return sanitize_identifier(value.name)
            self.origin[value] = "register"
            if value.name:
                return sanitize_identifier(value.name)
            hint = self.type_hints.get(value)
            if hint:
                return f"{hint}{index}"
            return f"v{index}"
        raise ValueError(f"unknown naming style {self.style!r}")
