"""LLVM C Backend baseline: near 1:1 IR-to-C with goto control flow.

Matches the paper's description of [14]: "close to a one-to-one
translation from IR instructions to C statements where IR branch
instructions translate to C goto statements", register-derived names,
no pragma/parallelism support (Table 1 row "LLVM CBackend").
"""

from __future__ import annotations

from ..ir.module import Module
from .engine import DecompilerOptions, ModuleDecompiler

OPTIONS = DecompilerOptions(
    name="cbackend",
    structure_cfg=False,
    construct_for_loops=False,
    detransform_rotation=False,
    explicit_parallelism=False,
    rename_variables=False,
    naming_style="tmp",
    elide_widening_casts=False,
    byte_level_addressing=False,
    strip_debug_names=False,
    increment_style="verbose",
    inline_expressions=False,
)


def decompile(module: Module) -> str:
    """Decompile a module to C text in LLVM-CBackend style."""
    return ModuleDecompiler(module, OPTIONS).decompile_text()


def decompile_unit(module: Module):
    return ModuleDecompiler(module, OPTIONS).decompile()
