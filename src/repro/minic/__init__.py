"""repro.minic — a mini-C front end (lexer, parser, sema, printer, pragmas).

Serves double duty: it parses the PolyBench sources into an AST for
lowering to IR, and it re-parses decompiler output — which is how the
repo proves SPLENDID-generated OpenMP/C is *recompilable* (portable).
"""

from . import c_ast
from .c_ast import (CArray, CDouble, CInt, CPointer, CType, CVoid,
                    FunctionDef, OmpPragma, Param, TranslationUnit)
from .lexer import LexError, Lexer, tokenize
from .parser import ParseError, Parser, parse, parse_function
from .pragmas import PragmaError, parse_omp_pragma, parse_pragmas
from .printer import format_expr, format_type, print_function, print_stmt, print_unit
from .sema import BUILTIN_SIGNATURES, Scope, Sema, SemaError, check

__all__ = [
    "c_ast", "CArray", "CDouble", "CInt", "CPointer", "CType", "CVoid",
    "FunctionDef", "OmpPragma", "Param", "TranslationUnit",
    "LexError", "Lexer", "tokenize",
    "ParseError", "Parser", "parse", "parse_function",
    "PragmaError", "parse_omp_pragma", "parse_pragmas",
    "format_expr", "format_type", "print_function", "print_stmt", "print_unit",
    "BUILTIN_SIGNATURES", "Scope", "Sema", "SemaError", "check",
]
