"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import c_ast as ast
from .lexer import tokenize
from .pragmas import parse_omp_pragma
from .tokens import Token

_TYPE_KEYWORDS = frozenset({
    "void", "int", "long", "double", "float", "char", "unsigned", "signed",
    "uint64_t", "int64_t", "uint32_t", "int32_t", "size_t",
})
_QUALIFIERS = frozenset({"const", "static", "extern", "inline", "restrict"})

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str, defines: Optional[Dict[str, str]] = None):
        self.tokens = tokenize(source, defines)
        self.pos = 0

    # Token helpers -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(f"expected {text!r}", self.current)
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise ParseError("expected identifier", self.current)
        return self.advance().text

    # Entry point ---------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.current.kind != "eof":
            if self.current.kind == "pragma":
                # File-scope pragmas (e.g. `#pragma scop`) are ignored.
                self.advance()
                continue
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        base = self._parse_type_specifiers()
        ctype, name = self._parse_declarator(base)
        if self.current.is_op("("):
            unit.functions.append(self._parse_function(ctype, name))
            return
        decl = self._finish_variable(ctype, name)
        unit.globals.append(decl)
        while self.accept_op(","):
            ctype2, name2 = self._parse_declarator(base)
            unit.globals.append(self._finish_variable(ctype2, name2))
        self.expect_op(";")

    def _finish_variable(self, ctype: ast.CType, name: str) -> ast.Declaration:
        ctype, dims = self._parse_array_suffix(ctype)
        init = None
        if self.accept_op("="):
            init = self._parse_assignment()
        return ast.Declaration(ctype, name, init, dims)

    # Types ------------------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self.current
        return token.kind == "keyword" and (token.text in _TYPE_KEYWORDS
                                            or token.text in _QUALIFIERS)

    def _parse_type_specifiers(self) -> ast.CType:
        words: List[str] = []
        while (self.current.kind == "keyword"
               and (self.current.text in _TYPE_KEYWORDS
                    or self.current.text in _QUALIFIERS)):
            word = self.advance().text
            if word not in _QUALIFIERS:
                words.append(word)
        if not words:
            raise ParseError("expected type", self.current)
        spelling = " ".join(words)
        if spelling == "void":
            return ast.VOID
        if "double" in words or "float" in words:
            return ast.DOUBLE
        return ast.CInt(spelling)

    def _parse_declarator(self, base: ast.CType,
                          require_name: bool = True) -> Tuple[ast.CType, str]:
        ctype = base
        while self.current.is_op("*"):
            self.advance()
            restrict = False
            while self.current.is_keyword("restrict", "const"):
                if self.advance().text == "restrict":
                    restrict = True
            ctype = ast.CPointer(ctype, restrict)
        if not require_name and self.current.kind != "ident":
            return ctype, ""
        name = self.expect_ident()
        return ctype, name

    def _parse_array_suffix(self, ctype: ast.CType) -> Tuple[ast.CType, Tuple[int, ...]]:
        dims: List[int] = []
        while self.current.is_op("["):
            self.advance()
            if self.current.is_op("]"):
                self.advance()
                dims.append(-1)  # unsized
                continue
            size = self._parse_constant_expression()
            self.expect_op("]")
            dims.append(size)
        return ctype, tuple(d for d in dims)

    def _parse_constant_expression(self) -> int:
        expr = self._parse_conditional()
        value = _const_eval(expr)
        if value is None:
            raise ParseError("expected constant expression", self.current)
        return value

    # Functions ------------------------------------------------------------------------

    def _parse_function(self, return_type: ast.CType, name: str) -> ast.FunctionDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        is_vararg = False
        if not self.current.is_op(")"):
            if self.current.is_keyword("void") and self.peek(1).is_op(")"):
                self.advance()
            elif self.current.is_op("..."):
                self.advance()
                is_vararg = True
            else:
                params.append(self._parse_param())
                while self.accept_op(","):
                    if self.current.is_op("..."):
                        self.advance()
                        is_vararg = True
                        break
                    params.append(self._parse_param())
        self.expect_op(")")
        if self.accept_op(";"):
            return ast.FunctionDef(return_type, name, params, None,
                                   is_vararg)
        body = self._parse_compound()
        return ast.FunctionDef(return_type, name, params, body, is_vararg)

    def _parse_param(self) -> ast.Param:
        base = self._parse_type_specifiers()
        ctype, name = self._parse_declarator(base, require_name=False)
        if not name:
            name = f"arg{len(getattr(self, '_anon_params', []))}"
            self._anon_params = getattr(self, "_anon_params", []) + [name]
        ctype, dims = self._parse_array_suffix(ctype)
        # `double A[N][M]` as a parameter decays to `double (*A)[M]` —
        # modeled as pointer-to-array; a 1D `double A[N]` decays to `double*`.
        if dims:
            inner = ctype
            for dim in reversed(dims[1:]):
                inner = ast.CArray(inner, dim if dim >= 0 else None)
            ctype = ast.CPointer(inner)
        return ast.Param(ctype, name)

    # Statements -----------------------------------------------------------------------

    def _parse_compound(self) -> ast.Compound:
        self.expect_op("{")
        block = ast.Compound()
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            block.body.append(self._parse_statement())
        self.expect_op("}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        token = self.current

        if token.kind == "pragma":
            pragmas: List[ast.OmpPragma] = []
            while self.current.kind == "pragma":
                pragma = parse_omp_pragma(self.advance().text)
                if pragma is not None:
                    pragmas.append(pragma)
            if not pragmas:
                return self._parse_statement()
            if pragmas[-1].directive in ("barrier",):
                return ast.PragmaStmt(pragmas[-1])
            stmt = self._parse_statement()
            if isinstance(stmt, ast.For):
                stmt.pragmas = pragmas + stmt.pragmas
            elif isinstance(stmt, ast.Compound):
                stmt.pragmas = pragmas + stmt.pragmas
            else:
                wrapper = ast.Compound([stmt])
                wrapper.pragmas = pragmas
                return wrapper
            return stmt

        if token.is_op("{"):
            return self._parse_compound()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self._parse_expression()
            self.expect_op(";")
            return ast.Return(value)
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue()
        if self._at_type():
            return self._parse_declaration_statement()
        if token.is_op(";"):
            self.advance()
            return ast.Compound()
        if token.kind == "ident" and token.text == "goto":
            self.advance()
            label = self.expect_ident()
            self.expect_op(";")
            return ast.Goto(label)
        if token.kind == "ident" and self.peek(1).is_op(":"):
            name = self.advance().text
            self.advance()  # ':'
            return ast.Label(name)
        expr = self._parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr)

    def _parse_declaration_statement(self) -> ast.Stmt:
        base = self._parse_type_specifiers()
        decls: List[ast.Stmt] = []
        while True:
            ctype, name = self._parse_declarator(base)
            decls.append(self._finish_variable(ctype, name))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Compound(decls, transparent=True)

    def _parse_if(self) -> ast.If:
        self.advance()
        self.expect_op("(")
        condition = self._parse_expression()
        self.expect_op(")")
        then_body = self._parse_statement()
        else_body = None
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self._parse_statement()
        return ast.If(condition, then_body, else_body)

    def _parse_for(self) -> ast.For:
        self.advance()
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self._at_type():
                base = self._parse_type_specifiers()
                ctype, name = self._parse_declarator(base)
                init = self._finish_variable(ctype, name)
            else:
                init = ast.ExprStmt(self._parse_expression())
        self.expect_op(";")
        condition = None
        if not self.current.is_op(";"):
            condition = self._parse_expression()
        self.expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self._parse_expression()
        self.expect_op(")")
        body = self._parse_statement()
        return ast.For(init, condition, step, body)

    def _parse_switch(self) -> ast.Switch:
        self.advance()
        self.expect_op("(")
        control = self._parse_expression()
        self.expect_op(")")
        self.expect_op("{")
        cases: List[ast.Case] = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated switch", self.current)
            if self.current.is_keyword("case"):
                self.advance()
                value = self._parse_constant_expression()
                self.expect_op(":")
                cases.append(ast.Case(value))
            elif self.current.is_keyword("default"):
                self.advance()
                self.expect_op(":")
                cases.append(ast.Case(None))
            elif not cases:
                raise ParseError("statement before first case label",
                                 self.current)
            else:
                cases[-1].body.append(self._parse_statement())
        self.expect_op("}")
        return ast.Switch(control, cases)

    def _parse_while(self) -> ast.While:
        self.advance()
        self.expect_op("(")
        condition = self._parse_expression()
        self.expect_op(")")
        return ast.While(condition, self._parse_statement())

    def _parse_do_while(self) -> ast.DoWhile:
        self.advance()
        body = self._parse_statement()
        if not self.current.is_keyword("while"):
            raise ParseError("expected 'while' after do-body", self.current)
        self.advance()
        self.expect_op("(")
        condition = self._parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(body, condition)

    # Expressions -----------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        if self.current.is_op(","):
            parts = [expr]
            while self.accept_op(","):
                parts.append(self._parse_assignment())
            return ast.Comma(parts)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        target = self._parse_conditional()
        for op in _ASSIGN_OPS:
            if self.current.is_op(op):
                self.advance()
                value = self._parse_assignment()
                return ast.Assign(op, target, value)
        return target

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self.accept_op("?"):
            if_true = self._parse_expression()
            self.expect_op(":")
            if_false = self._parse_conditional()
            return ast.Conditional(condition, if_true, if_false)
        return condition

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.text in ops:
            op = self.advance().text
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(token.text, operand)
        if token.is_op("++") or token.is_op("--"):
            self.advance()
            return ast.Unary(token.text, self._parse_unary())
        if token.is_op("(") and self._looks_like_cast():
            self.advance()
            base = self._parse_type_specifiers()
            ctype = base
            while self.accept_op("*"):
                ctype = ast.CPointer(ctype)
            self.expect_op(")")
            return ast.CastExpr(ctype, self._parse_unary())
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_op("(")
            base = self._parse_type_specifiers()
            ctype = base
            while self.accept_op("*"):
                ctype = ast.CPointer(ctype)
            self.expect_op(")")
            return ast.SizeofExpr(ctype)
        return self._parse_postfix()

    def _looks_like_cast(self) -> bool:
        token = self.peek(1)
        return token.kind == "keyword" and token.text in _TYPE_KEYWORDS

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.current.is_op("["):
                self.advance()
                index = self._parse_expression()
                self.expect_op("]")
                expr = ast.Index(expr, index)
            elif self.current.is_op("(") and isinstance(expr, ast.Ident):
                self.advance()
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    args.append(self._parse_assignment())
                    while self.accept_op(","):
                        args.append(self._parse_assignment())
                self.expect_op(")")
                expr = ast.CallExpr(expr.name, args)
            elif self.current.is_op("++") or self.current.is_op("--"):
                op = self.advance().text
                expr = ast.Unary(op, expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(float(token.value), text=token.text)
        if token.kind == "string":
            self.advance()
            return ast.StrLit(str(token.value))
        if token.kind == "ident":
            self.advance()
            return ast.Ident(token.text)
        if token.is_op("("):
            self.advance()
            expr = self._parse_expression()
            self.expect_op(")")
            return expr
        raise ParseError("expected expression", token)


def _const_eval(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_eval(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        lhs, rhs = _const_eval(expr.lhs), _const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
               "*": lambda: lhs * rhs, "/": lambda: lhs // rhs if rhs else None,
               "%": lambda: lhs % rhs if rhs else None,
               "<<": lambda: lhs << rhs, ">>": lambda: lhs >> rhs}
        if expr.op in ops:
            return ops[expr.op]()
    return None


def parse(source: str, defines: Optional[Dict[str, str]] = None) -> ast.TranslationUnit:
    """Parse mini-C source text into a translation unit."""
    return Parser(source, defines).parse_unit()


def parse_function(source: str, name: Optional[str] = None,
                   defines: Optional[Dict[str, str]] = None) -> ast.FunctionDef:
    unit = parse(source, defines)
    if name is not None:
        return unit.function(name)
    defined = [f for f in unit.functions if not f.is_declaration]
    if not defined:
        raise ValueError("no function definitions in source")
    return defined[0]
