"""Abstract syntax tree for mini-C.

The same AST serves two roles: it is what the parser produces from
source text, and it is what every decompiler back end *emits* before
printing.  That shared representation is what lets SPLENDID's output be
recompiled by the same front end (the paper's portability claim, tested
end-to-end in this repo).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

class CType:
    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items(),
                                                       key=lambda kv: kv[0],
                                                       ))))

    def __repr__(self):
        from .printer import format_type
        return format_type(self)


@dataclass(frozen=True)
class CVoid(CType):
    def __repr__(self):
        return "void"


@dataclass(frozen=True)
class CInt(CType):
    """An integer type; ``spelling`` preserves the source spelling."""
    spelling: str = "int"

    @property
    def bits(self) -> int:
        if self.spelling in ("long", "uint64_t", "int64_t", "size_t",
                             "unsigned long"):
            return 64
        return 32

    @property
    def is_unsigned(self) -> bool:
        return self.spelling.startswith(("unsigned", "uint", "size_t"))


@dataclass(frozen=True)
class CDouble(CType):
    spelling: str = "double"


@dataclass(frozen=True)
class CPointer(CType):
    pointee: CType
    restrict: bool = False


@dataclass(frozen=True)
class CArray(CType):
    element: CType
    size: Optional[int]  # None for unsized (parameter) arrays


INT = CInt("int")
LONG = CInt("long")
UINT64 = CInt("uint64_t")
DOUBLE = CDouble()
VOID = CVoid()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    def __str__(self):
        from .printer import format_expr
        return format_expr(self)


@dataclass
class IntLit(Expr):
    value: int
    suffix: str = ""


@dataclass
class FloatLit(Expr):
    value: float
    text: Optional[str] = None  # preserve source spelling when available


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str          # '-', '!', '~', '&', '*', '++', '--'
    operand: Expr
    postfix: bool = False  # for ++/--


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str          # '=', '+=', '-=', '*=', '/=', '%='
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class CastExpr(Expr):
    ctype: CType
    operand: Expr


@dataclass
class SizeofExpr(Expr):
    ctype: CType


@dataclass
class Comma(Expr):
    parts: List[Expr]


# ---------------------------------------------------------------------------
# OpenMP pragmas
# ---------------------------------------------------------------------------

@dataclass
class OmpPragma:
    """A parsed ``#pragma omp ...`` directive."""

    directive: str                       # 'parallel' | 'for' | 'parallel for' | 'barrier'
    schedule: Optional[str] = None       # 'static' | 'dynamic' | ...
    chunk: Optional[int] = None
    nowait: bool = False
    private: Tuple[str, ...] = ()
    reduction: Optional[Tuple[str, Tuple[str, ...]]] = None  # (op, vars)
    num_threads: Optional[int] = None

    def render(self) -> str:
        parts = [f"#pragma omp {self.directive}"]
        if self.schedule:
            chunk = f", {self.chunk}" if self.chunk is not None else ""
            parts.append(f"schedule({self.schedule}{chunk})")
        if self.nowait:
            parts.append("nowait")
        if self.private:
            parts.append(f"private({', '.join(self.private)})")
        if self.reduction is not None:
            op, names = self.reduction
            parts.append(f"reduction({op}: {', '.join(names)})")
        if self.num_threads is not None:
            parts.append(f"num_threads({self.num_threads})")
        return " ".join(parts)

    def __str__(self):
        return self.render()


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    def __str__(self):
        from .printer import print_stmt
        return print_stmt(self)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Declaration(Stmt):
    ctype: CType
    name: str
    init: Optional[Expr] = None
    array_dims: Tuple[int, ...] = ()


@dataclass
class Compound(Stmt):
    body: List[Stmt] = field(default_factory=list)
    # Pragmas that apply to the whole block (e.g. `#pragma omp parallel {...}`)
    pragmas: List[OmpPragma] = field(default_factory=list)
    # A transparent compound groups statements (e.g. `int i, j;`) without
    # introducing a scope or braces.
    transparent: bool = False


@dataclass
class If(Stmt):
    condition: Expr
    then_body: Stmt
    else_body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt]        # ExprStmt or Declaration
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    pragmas: List[OmpPragma] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    condition: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    name: str


@dataclass
class Case:
    """One ``case`` (or ``default`` when ``value`` is None) of a switch.
    The body is the statement list up to the next label; fallthrough is
    represented by a body that does not end in a jump."""
    value: Optional[int]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    control: Expr
    cases: List[Case] = field(default_factory=list)


@dataclass
class PragmaStmt(Stmt):
    """A standalone pragma (e.g. `#pragma omp barrier`)."""
    pragma: OmpPragma


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FunctionDef:
    return_type: CType
    name: str
    params: List[Param]
    body: Optional[Compound]  # None for declarations
    is_vararg: bool = False

    @property
    def is_declaration(self) -> bool:
        return self.body is None

    def __str__(self):
        from .printer import print_function
        return print_function(self)


@dataclass
class TranslationUnit:
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[Declaration] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def __str__(self):
        from .printer import print_unit
        return print_unit(self)


def walk_stmts(stmt: Stmt):
    """Yield every statement in a subtree, pre-order."""
    yield stmt
    if isinstance(stmt, Compound):
        for child in stmt.body:
            yield from walk_stmts(child)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then_body)
        if stmt.else_body is not None:
            yield from walk_stmts(stmt.else_body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for child in case.body:
                yield from walk_stmts(child)


def walk_exprs(node):
    """Yield every expression under a statement or expression, pre-order."""
    if isinstance(node, Expr):
        yield node
        children = []
        if isinstance(node, Unary):
            children = [node.operand]
        elif isinstance(node, Binary):
            children = [node.lhs, node.rhs]
        elif isinstance(node, Assign):
            children = [node.target, node.value]
        elif isinstance(node, Conditional):
            children = [node.condition, node.if_true, node.if_false]
        elif isinstance(node, CallExpr):
            children = list(node.args)
        elif isinstance(node, Index):
            children = [node.base, node.index]
        elif isinstance(node, CastExpr):
            children = [node.operand]
        elif isinstance(node, Comma):
            children = list(node.parts)
        for child in children:
            yield from walk_exprs(child)
    elif isinstance(node, Stmt):
        for stmt in walk_stmts(node):
            exprs = []
            if isinstance(stmt, ExprStmt):
                exprs = [stmt.expr]
            elif isinstance(stmt, Declaration) and stmt.init is not None:
                exprs = [stmt.init]
            elif isinstance(stmt, If):
                exprs = [stmt.condition]
            elif isinstance(stmt, For):
                exprs = [e for e in (stmt.condition, stmt.step) if e is not None]
            elif isinstance(stmt, (While, DoWhile)):
                exprs = [stmt.condition]
            elif isinstance(stmt, Return) and stmt.value is not None:
                exprs = [stmt.value]
            elif isinstance(stmt, Switch):
                exprs = [stmt.control]
            for expr in exprs:
                yield from walk_exprs(expr)
