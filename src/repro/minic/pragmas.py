"""Parsing of ``#pragma omp`` directive text into :class:`OmpPragma`.

Covers the OpenMP subset the paper's prototype supports (§7): parallel,
for, nowait, private, barrier, static scheduling — plus reduction and
dynamic scheduling, which the paper lists as future work and which this
reproduction implements as extensions.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .c_ast import OmpPragma


class PragmaError(Exception):
    pass


_CLAUSE_RE = re.compile(r"([a-z_]+)\s*(?:\(([^)]*)\))?")


def parse_omp_pragma(text: str) -> Optional[OmpPragma]:
    """Parse the body of a ``#pragma`` line.  Non-OpenMP pragmas -> None."""
    text = text.strip()
    if text.startswith("pragma"):
        text = text[len("pragma"):].strip()
    if not text.startswith("omp"):
        return None
    rest = text[len("omp"):].strip()

    directive, rest = _take_directive(rest)
    pragma = OmpPragma(directive=directive)
    for name, arg in _CLAUSE_RE.findall(rest):
        _apply_clause(pragma, name, arg)
    return pragma


def _take_directive(rest: str) -> Tuple[str, str]:
    for directive in ("parallel for", "parallel", "for", "barrier",
                      "critical", "single", "master"):
        if rest == directive or rest.startswith(directive + " "):
            return directive, rest[len(directive):].strip()
    raise PragmaError(f"unsupported OpenMP directive: 'omp {rest}'")


def _apply_clause(pragma: OmpPragma, name: str, arg: str) -> None:
    arg = arg.strip()
    if name == "schedule":
        parts = [p.strip() for p in arg.split(",")]
        if parts[0] not in ("static", "dynamic", "guided", "auto", "runtime"):
            raise PragmaError(f"unknown schedule kind {parts[0]!r}")
        pragma.schedule = parts[0]
        if len(parts) > 1 and parts[1]:
            pragma.chunk = int(parts[1])
    elif name == "nowait":
        pragma.nowait = True
    elif name == "private":
        pragma.private = tuple(v.strip() for v in arg.split(",") if v.strip())
    elif name == "reduction":
        op, _, names = arg.partition(":")
        variables = tuple(v.strip() for v in names.split(",") if v.strip())
        pragma.reduction = (op.strip(), variables)
    elif name == "num_threads":
        pragma.num_threads = int(arg)
    elif name in ("shared", "firstprivate", "default", "collapse"):
        # Accepted and ignored: legal OpenMP the model doesn't act on.
        pass
    else:
        raise PragmaError(f"unsupported OpenMP clause {name!r}")


def parse_pragmas(texts: List[str]) -> List[OmpPragma]:
    pragmas = []
    for text in texts:
        pragma = parse_omp_pragma(text)
        if pragma is not None:
            pragmas.append(pragma)
    return pragmas
