"""Token definitions for the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

KEYWORDS = frozenset({
    "void", "int", "long", "double", "float", "char", "unsigned", "signed",
    "uint64_t", "int64_t", "uint32_t", "int32_t", "size_t",
    "for", "while", "do", "if", "else", "return", "break", "continue",
    "switch", "case", "default",
    "static", "const", "restrict", "sizeof", "struct", "extern", "inline",
})

# Multi-character operators, longest first so the lexer can greedy-match.
OPERATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)


@dataclass
class Token:
    kind: str          # 'ident' | 'keyword' | 'int' | 'float' | 'string' | 'op' | 'pragma' | 'eof'
    text: str
    line: int
    column: int
    value: Optional[object] = None  # parsed numeric/string payload

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, L{self.line})"

    def is_op(self, *texts: str) -> bool:
        return self.kind == "op" and self.text in texts

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.text in names
