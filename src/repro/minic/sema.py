"""Semantic analysis: scopes, identifier resolution, and type checking.

The checker validates a translation unit before lowering and computes
expression types; the front end (``repro.frontend``) reuses the same
type rules so lowered IR types agree with the source program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import c_ast as ast

# Known external functions (the mini libc/libm surface PolyBench needs).
BUILTIN_SIGNATURES: Dict[str, tuple] = {
    "exp": (ast.DOUBLE, (ast.DOUBLE,)),
    "log": (ast.DOUBLE, (ast.DOUBLE,)),
    "sqrt": (ast.DOUBLE, (ast.DOUBLE,)),
    "pow": (ast.DOUBLE, (ast.DOUBLE, ast.DOUBLE)),
    "fabs": (ast.DOUBLE, (ast.DOUBLE,)),
    "sin": (ast.DOUBLE, (ast.DOUBLE,)),
    "cos": (ast.DOUBLE, (ast.DOUBLE,)),
    "floor": (ast.DOUBLE, (ast.DOUBLE,)),
    "ceil": (ast.DOUBLE, (ast.DOUBLE,)),
    "fmax": (ast.DOUBLE, (ast.DOUBLE, ast.DOUBLE)),
    "fmin": (ast.DOUBLE, (ast.DOUBLE, ast.DOUBLE)),
    "malloc": (ast.CPointer(ast.DOUBLE), (ast.LONG,)),
    "free": (ast.VOID, (ast.CPointer(ast.DOUBLE),)),
    "printf": (ast.INT, None),   # vararg
    "print_double": (ast.VOID, (ast.DOUBLE,)),
    "print_int": (ast.VOID, (ast.LONG,)),
    "omp_get_thread_num": (ast.INT, ()),
    "omp_get_num_threads": (ast.INT, ()),
}


class SemaError(Exception):
    pass


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.CType] = {}

    def declare(self, name: str, ctype: ast.CType) -> None:
        if name in self.names:
            raise SemaError(f"redeclaration of '{name}'")
        self.names[name] = ctype

    def lookup(self, name: str) -> Optional[ast.CType]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _decl_type(decl: ast.Declaration) -> ast.CType:
    ctype = decl.ctype
    for dim in reversed(decl.array_dims):
        ctype = ast.CArray(ctype, dim if dim >= 0 else None)
    return ctype


class Sema:
    """Type checker for a translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.globals = Scope()
        self.errors: List[str] = []

    # Entry point ---------------------------------------------------------------

    def check(self) -> None:
        for decl in self.unit.globals:
            self.globals.declare(decl.name, _decl_type(decl))
        for function in self.unit.functions:
            if function.name in self.functions and not function.is_declaration:
                previous = self.functions[function.name]
                if not previous.is_declaration:
                    raise SemaError(f"redefinition of '{function.name}'")
            self.functions[function.name] = function
        for function in self.unit.functions:
            if not function.is_declaration:
                self._check_function(function)

    def _check_function(self, function: ast.FunctionDef) -> None:
        scope = Scope(self.globals)
        for param in function.params:
            scope.declare(param.name, param.ctype)
        self._check_stmt(function.body, scope, function)

    # Statements --------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope,
                    function: ast.FunctionDef) -> None:
        if isinstance(stmt, ast.Compound):
            inner = scope if stmt.transparent else Scope(scope)
            for child in stmt.body:
                self._check_stmt(child, inner, function)
        elif isinstance(stmt, ast.Declaration):
            if stmt.init is not None:
                self.expr_type(stmt.init, scope)
            scope.declare(stmt.name, _decl_type(stmt))
        elif isinstance(stmt, ast.ExprStmt):
            self.expr_type(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self.expr_type(stmt.condition, scope)
            self._check_stmt(stmt.then_body, Scope(scope), function)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, Scope(scope), function)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, function)
            if stmt.condition is not None:
                self.expr_type(stmt.condition, inner)
            if stmt.step is not None:
                self.expr_type(stmt.step, inner)
            self._check_stmt(stmt.body, Scope(inner), function)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self.expr_type(stmt.condition, scope)
            self._check_stmt(stmt.body, Scope(scope), function)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if isinstance(function.return_type, ast.CVoid):
                    raise SemaError(
                        f"'{function.name}': return with a value in void function")
                self.expr_type(stmt.value, scope)
            elif not isinstance(function.return_type, ast.CVoid):
                raise SemaError(
                    f"'{function.name}': return without a value")
        elif isinstance(stmt, ast.Switch):
            control = self.expr_type(stmt.control, scope)
            if not isinstance(control, ast.CInt):
                raise SemaError(
                    f"switch control must have integer type, got {control!r}")
            seen_values = set()
            defaults = 0
            inner = Scope(scope)
            for case in stmt.cases:
                if case.value is None:
                    defaults += 1
                    if defaults > 1:
                        raise SemaError("multiple default labels in switch")
                elif case.value in seen_values:
                    raise SemaError(f"duplicate case value {case.value}")
                else:
                    seen_values.add(case.value)
                for child in case.body:
                    self._check_stmt(child, inner, function)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Goto, ast.Label,
                               ast.PragmaStmt)):
            pass
        else:
            raise SemaError(f"unsupported statement {type(stmt).__name__}")

    # Expressions -------------------------------------------------------------------

    def expr_type(self, expr: ast.Expr, scope: Scope) -> ast.CType:
        if isinstance(expr, ast.IntLit):
            return ast.INT if -(2**31) <= expr.value < 2**31 else ast.LONG
        if isinstance(expr, ast.FloatLit):
            return ast.DOUBLE
        if isinstance(expr, ast.StrLit):
            return ast.CPointer(ast.CInt("char"))
        if isinstance(expr, ast.Ident):
            ctype = scope.lookup(expr.name)
            if ctype is None:
                if expr.name in self.functions:
                    # A function designator (e.g. a microtask passed to
                    # __kmpc_fork_call in baseline decompiler output).
                    return ast.CPointer(ast.CVoid())
                raise SemaError(f"use of undeclared identifier '{expr.name}'")
            return ctype
        if isinstance(expr, ast.Unary):
            inner = self.expr_type(expr.operand, scope)
            if expr.op in ("++", "--"):
                self._require_lvalue(expr.operand)
                return inner
            if expr.op == "!":
                return ast.INT
            if expr.op == "*":
                if isinstance(inner, ast.CPointer):
                    return inner.pointee
                if isinstance(inner, ast.CArray):
                    return inner.element
                raise SemaError("dereference of non-pointer")
            if expr.op == "&":
                return ast.CPointer(inner)
            return inner
        if isinstance(expr, ast.Binary):
            lhs = self.expr_type(expr.lhs, scope)
            rhs = self.expr_type(expr.rhs, scope)
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return ast.INT
            return self._usual_arithmetic(lhs, rhs, expr.op)
        if isinstance(expr, ast.Assign):
            self._require_lvalue(expr.target)
            self.expr_type(expr.value, scope)
            return self.expr_type(expr.target, scope)
        if isinstance(expr, ast.Conditional):
            self.expr_type(expr.condition, scope)
            if_true = self.expr_type(expr.if_true, scope)
            self.expr_type(expr.if_false, scope)
            return if_true
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            base = self.expr_type(expr.base, scope)
            index = self.expr_type(expr.index, scope)
            if isinstance(index, (ast.CDouble,)):
                raise SemaError("array subscript is not an integer")
            if isinstance(base, ast.CPointer):
                return base.pointee
            if isinstance(base, ast.CArray):
                return base.element
            raise SemaError("subscripted value is not an array or pointer")
        if isinstance(expr, ast.CastExpr):
            self.expr_type(expr.operand, scope)
            return expr.ctype
        if isinstance(expr, ast.SizeofExpr):
            return ast.LONG
        if isinstance(expr, ast.Comma):
            result = ast.INT
            for part in expr.parts:
                result = self.expr_type(part, scope)
            return result
        raise SemaError(f"unsupported expression {type(expr).__name__}")

    def _check_call(self, expr: ast.CallExpr, scope: Scope) -> ast.CType:
        if expr.callee in self.functions:
            function = self.functions[expr.callee]
            if not function.is_vararg \
                    and len(expr.args) != len(function.params):
                raise SemaError(
                    f"call to '{expr.callee}' with {len(expr.args)} args, "
                    f"expected {len(function.params)}")
            for arg in expr.args:
                self.expr_type(arg, scope)
            return function.return_type
        if expr.callee in BUILTIN_SIGNATURES:
            return_type, params = BUILTIN_SIGNATURES[expr.callee]
            if params is not None and len(expr.args) != len(params):
                raise SemaError(
                    f"call to '{expr.callee}' with {len(expr.args)} args, "
                    f"expected {len(params)}")
            for arg in expr.args:
                self.expr_type(arg, scope)
            return return_type
        raise SemaError(f"call to undeclared function '{expr.callee}'")

    def _usual_arithmetic(self, lhs: ast.CType, rhs: ast.CType,
                          op: str) -> ast.CType:
        if isinstance(lhs, (ast.CPointer, ast.CArray)):
            return lhs
        if isinstance(rhs, (ast.CPointer, ast.CArray)):
            return rhs
        if isinstance(lhs, ast.CDouble) or isinstance(rhs, ast.CDouble):
            if op in ("%", "<<", ">>", "&", "|", "^"):
                raise SemaError(f"invalid operands to '{op}' (have double)")
            return ast.DOUBLE
        if isinstance(lhs, ast.CInt) and isinstance(rhs, ast.CInt):
            return lhs if lhs.bits >= rhs.bits else rhs
        return lhs

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.Ident, ast.Index)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemaError(f"expression is not assignable: {expr}")


def check(unit: ast.TranslationUnit) -> Sema:
    sema = Sema(unit)
    sema.check()
    return sema
