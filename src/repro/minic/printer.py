"""C source printer: mini-C AST -> text.

Precedence-aware so emitted code carries only necessary parentheses;
this matters because BLEU compares token sequences against hand-written
reference code.
"""

from __future__ import annotations

from typing import List

from . import c_ast as ast

_PRECEDENCE = {
    ",": 1,
    "=": 2, "+=": 2, "-=": 2, "*=": 2, "/=": 2, "%=": 2,
    "?:": 3,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
}
_UNARY_PRECEDENCE = 14
_POSTFIX_PRECEDENCE = 15


def format_type(ctype: ast.CType) -> str:
    if isinstance(ctype, ast.CVoid):
        return "void"
    if isinstance(ctype, ast.CInt):
        return ctype.spelling
    if isinstance(ctype, ast.CDouble):
        return ctype.spelling
    if isinstance(ctype, ast.CPointer):
        restrict = " restrict" if ctype.restrict else ""
        if isinstance(ctype.pointee, ast.CArray):
            return _declarator(ctype.pointee, "(*)")
        inner = format_type(ctype.pointee)
        return f"{inner}*{restrict}"
    if isinstance(ctype, ast.CArray):
        size = str(ctype.size) if ctype.size is not None else ""
        return f"{format_type(ctype.element)}[{size}]"
    raise TypeError(f"unknown type {ctype!r}")


def _declarator(ctype: ast.CType, name: str) -> str:
    """Render a declaration of `name` with C's inside-out declarator syntax."""
    if isinstance(ctype, ast.CPointer) and isinstance(ctype.pointee, ast.CArray):
        restrict = " restrict " if ctype.restrict else ""
        return _declarator(ctype.pointee, f"(*{restrict.strip()}{name})")
    suffix = ""
    base = ctype
    while isinstance(base, ast.CArray):
        size = str(base.size) if base.size is not None else ""
        suffix += f"[{size}]"
        base = base.element
    prefix = format_type(base)
    return f"{prefix} {name}{suffix}"


def _float_text(lit: ast.FloatLit) -> str:
    if lit.text is not None:
        return lit.text
    text = repr(lit.value)
    if "." not in text and "e" not in text and "inf" not in text:
        text += ".0"
    return text


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _format(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _format(expr: ast.Expr):
    if isinstance(expr, ast.IntLit):
        return f"{expr.value}{expr.suffix}", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.FloatLit):
        return _float_text(expr), _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n")
        return f'"{escaped}"', _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Ident):
        return expr.name, _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Unary):
        if expr.postfix:
            inner = format_expr(expr.operand, _POSTFIX_PRECEDENCE)
            return f"{inner}{expr.op}", _POSTFIX_PRECEDENCE
        inner = format_expr(expr.operand, _UNARY_PRECEDENCE)
        # `- -a` must not fuse into `--a` (and likewise `+ +a`, `- --a`).
        space = " " if inner.startswith(expr.op[0]) else ""
        return f"{expr.op}{space}{inner}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        lhs = format_expr(expr.lhs, prec)
        # Left-associative: right operand needs one higher precedence.
        rhs = format_expr(expr.rhs, prec + 1)
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, ast.Assign):
        prec = _PRECEDENCE[expr.op]
        target = format_expr(expr.target, prec + 1)
        value = format_expr(expr.value, prec)  # right-associative
        return f"{target} {expr.op} {value}", prec
    if isinstance(expr, ast.Conditional):
        prec = _PRECEDENCE["?:"]
        cond = format_expr(expr.condition, prec + 1)
        if_true = format_expr(expr.if_true, 0)
        if_false = format_expr(expr.if_false, prec)
        return f"{cond} ? {if_true} : {if_false}", prec
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(format_expr(a, _PRECEDENCE[","] + 1) for a in expr.args)
        return f"{expr.callee}({args})", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.Index):
        base = format_expr(expr.base, _POSTFIX_PRECEDENCE)
        return f"{base}[{format_expr(expr.index)}]", _POSTFIX_PRECEDENCE
    if isinstance(expr, ast.CastExpr):
        inner = format_expr(expr.operand, _UNARY_PRECEDENCE)
        return f"({format_type(expr.ctype)}){inner}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.SizeofExpr):
        return f"sizeof({format_type(expr.ctype)})", _UNARY_PRECEDENCE
    if isinstance(expr, ast.Comma):
        text = ", ".join(format_expr(p, _PRECEDENCE[","] + 1)
                         for p in expr.parts)
        return text, _PRECEDENCE[","]
    raise TypeError(f"unknown expression {expr!r}")


class _Writer:
    def __init__(self, indent_width: int = 2):
        self.lines: List[str] = []
        self.indent = 0
        self.indent_width = indent_width

    def line(self, text: str = "") -> None:
        pad = " " * (self.indent * self.indent_width) if text else ""
        self.lines.append(f"{pad}{text}")

    def text(self) -> str:
        return "\n".join(self.lines)


def _emit_stmt(writer: _Writer, stmt: ast.Stmt) -> None:
    if isinstance(stmt, ast.ExprStmt):
        writer.line(f"{format_expr(stmt.expr)};")
    elif isinstance(stmt, ast.Declaration):
        ctype = stmt.ctype
        for dim in reversed(stmt.array_dims):
            ctype = ast.CArray(ctype, dim)
        decl = _declarator(ctype, stmt.name)
        if stmt.init is not None:
            writer.line(f"{decl} = {format_expr(stmt.init, 3)};")
        else:
            writer.line(f"{decl};")
    elif isinstance(stmt, ast.Compound):
        for pragma in stmt.pragmas:
            writer.line(pragma.render())
        if stmt.transparent and not stmt.pragmas:
            for child in stmt.body:
                _emit_stmt(writer, child)
            return
        writer.line("{")
        writer.indent += 1
        for child in stmt.body:
            _emit_stmt(writer, child)
        writer.indent -= 1
        writer.line("}")
    elif isinstance(stmt, ast.If):
        writer.line(f"if ({format_expr(stmt.condition)}) {{")
        writer.indent += 1
        _emit_body(writer, stmt.then_body)
        writer.indent -= 1
        if stmt.else_body is not None:
            if isinstance(stmt.else_body, ast.If):
                # else-if chain: print the nested if on the `else` line.
                sub = _Writer(writer.indent_width)
                _emit_stmt(sub, stmt.else_body)
                nested = sub.lines
                writer.line(f"}} else {nested[0]}")
                pad = " " * (writer.indent * writer.indent_width)
                for line in nested[1:]:
                    writer.lines.append(f"{pad}{line}" if line else line)
                return
            writer.line("} else {")
            writer.indent += 1
            _emit_body(writer, stmt.else_body)
            writer.indent -= 1
            writer.line("}")
        else:
            writer.line("}")
    elif isinstance(stmt, ast.For):
        for pragma in stmt.pragmas:
            writer.line(pragma.render())
        init = ""
        if isinstance(stmt.init, ast.ExprStmt):
            init = format_expr(stmt.init.expr)
        elif isinstance(stmt.init, ast.Declaration):
            sub = _Writer()
            _emit_stmt(sub, stmt.init)
            init = sub.lines[0].rstrip(";")
        condition = format_expr(stmt.condition) if stmt.condition else ""
        step = format_expr(stmt.step) if stmt.step else ""
        writer.line(f"for ({init}; {condition}; {step}) {{")
        writer.indent += 1
        _emit_body(writer, stmt.body)
        writer.indent -= 1
        writer.line("}")
    elif isinstance(stmt, ast.While):
        writer.line(f"while ({format_expr(stmt.condition)}) {{")
        writer.indent += 1
        _emit_body(writer, stmt.body)
        writer.indent -= 1
        writer.line("}")
    elif isinstance(stmt, ast.DoWhile):
        writer.line("do {")
        writer.indent += 1
        _emit_body(writer, stmt.body)
        writer.indent -= 1
        writer.line(f"}} while ({format_expr(stmt.condition)});")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            writer.line("return;")
        else:
            writer.line(f"return {format_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        writer.line("break;")
    elif isinstance(stmt, ast.Continue):
        writer.line("continue;")
    elif isinstance(stmt, ast.Switch):
        writer.line(f"switch ({format_expr(stmt.control)}) {{")
        for case in stmt.cases:
            if case.value is None:
                writer.line("default:")
            else:
                writer.line(f"case {case.value}:")
            writer.indent += 1
            for child in case.body:
                _emit_stmt(writer, child)
            writer.indent -= 1
        writer.line("}")
    elif isinstance(stmt, ast.Goto):
        writer.line(f"goto {stmt.label};")
    elif isinstance(stmt, ast.Label):
        writer.lines.append(f"{stmt.name}:")
    elif isinstance(stmt, ast.PragmaStmt):
        writer.line(stmt.pragma.render())
    else:
        raise TypeError(f"unknown statement {stmt!r}")


def _emit_body(writer: _Writer, stmt: ast.Stmt) -> None:
    """Emit a loop/if body without duplicating braces for compounds."""
    if isinstance(stmt, ast.Compound) and not stmt.pragmas:
        for child in stmt.body:
            _emit_stmt(writer, child)
    else:
        _emit_stmt(writer, stmt)


def print_stmt(stmt: ast.Stmt, indent_width: int = 2) -> str:
    writer = _Writer(indent_width)
    _emit_stmt(writer, stmt)
    return writer.text()


def _param_declarator(param: ast.Param) -> str:
    # Array parameters print in the natural `double A[][16]` style, which
    # round-trips through the parser (unlike `double (*A)[16]`).
    ctype = param.ctype
    if isinstance(ctype, ast.CPointer) and isinstance(ctype.pointee, ast.CArray):
        return _declarator(ctype.pointee, f"{param.name}[]")
    return _declarator(ctype, param.name)


def print_function(function: ast.FunctionDef, indent_width: int = 2) -> str:
    parts = [_param_declarator(p) for p in function.params]
    if function.is_vararg:
        parts.append("...")
    params = ", ".join(parts)
    header = f"{format_type(function.return_type)} {function.name}({params})"
    if function.body is None:
        return f"{header};"
    writer = _Writer(indent_width)
    writer.line(f"{header} {{")
    writer.indent += 1
    for stmt in function.body.body:
        _emit_stmt(writer, stmt)
    writer.indent -= 1
    writer.line("}")
    return writer.text()


def print_unit(unit: ast.TranslationUnit, indent_width: int = 2) -> str:
    chunks: List[str] = []
    for decl in unit.globals:
        chunks.append(print_stmt(decl, indent_width))
    for function in unit.functions:
        chunks.append(print_function(function, indent_width))
    return "\n\n".join(chunks) + "\n"
