"""Hand-written lexer for mini-C.

Handles the C token vocabulary PolyBench sources need, plus two
preprocessor conveniences: object-like ``#define NAME value`` macros
(substituted during lexing, like ``-DN=4000``) and ``#pragma`` lines,
which are emitted as single pragma tokens so the parser can attach
OpenMP annotations to the following statement.  ``#include`` lines are
ignored.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tokens import KEYWORDS, OPERATORS, Token


class LexError(Exception):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class Lexer:
    def __init__(self, source: str, defines: Optional[Dict[str, str]] = None):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.defines: Dict[str, str] = dict(defines or {})

    # Character helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        """Next character, or "\\0" past the end.

        The sentinel (rather than "") matters: ``"" in "abc"`` is True in
        Python, which would turn character-class loops into infinite loops
        at end of input.
        """
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else "\0"

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    # Tokenization ------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                break
            token = self._next_token()
            if token is not None:
                tokens.append(token)
        tokens.append(Token("eof", "", self.line, self.column))
        return tokens

    def _next_token(self) -> Optional[Token]:
        line, column = self.line, self.column
        ch = self._peek()

        if ch == "#":
            return self._lex_directive(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_directive(self, line: int, column: int) -> Optional[Token]:
        start = self.pos
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()
        text = self.source[start:self.pos].strip()
        body = text[1:].strip()
        if body.startswith("pragma"):
            return Token("pragma", body[len("pragma"):].strip(), line, column)
        if body.startswith("define"):
            parts = body[len("define"):].strip().split(None, 1)
            if len(parts) == 2 and "(" not in parts[0]:
                self.defines[parts[0]] = parts[1].strip()
            elif len(parts) == 1:
                self.defines[parts[0]] = "1"
            return None
        if body.startswith(("include", "ifdef", "ifndef", "endif", "if ",
                            "else", "undef")):
            return None
        raise LexError(f"unsupported directive {text!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in self.defines:
            return self._substitute_macro(text, line, column)
        if text in KEYWORDS:
            return Token("keyword", text, line, column)
        return Token("ident", text, line, column)

    def _substitute_macro(self, name: str, line: int, column: int) -> Token:
        replacement = self.defines[name]
        sub = Lexer(replacement, {})
        sub_tokens = sub.tokenize()[:-1]  # drop EOF
        if len(sub_tokens) != 1:
            raise LexError(
                f"macro {name!r} must expand to a single token "
                f"(got {len(sub_tokens)})", line, column)
        token = sub_tokens[0]
        return Token(token.kind, token.text, line, column, token.value)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token("int", text, line, column, int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit()
                                     or (self._peek(1) in "+-"
                                         and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        while self._peek() in "uUlLfF":  # integer/float suffixes
            suffix = self._advance()
            if suffix in "fF":
                is_float = True
        if is_float:
            return Token("float", text, line, column, float(text))
        return Token("int", text, line, column, int(text))

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", line, column)
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._advance()
                chars.append({"n": "\n", "t": "\t", "0": "\0",
                              "\\": "\\", '"': '"'}.get(escape, escape))
            else:
                chars.append(self._advance())
        text = "".join(chars)
        return Token("string", text, line, column, text)

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()
        ch = self._advance()
        if ch == "\\":
            escape = self._advance()
            ch = {"n": "\n", "t": "\t", "0": "\0"}.get(escape, escape)
        if self.pos >= len(self.source) or self._peek() != "'":
            raise LexError("unterminated character literal", line, column)
        self._advance()
        return Token("int", f"'{ch}'", line, column, ord(ch))


def tokenize(source: str, defines: Optional[Dict[str, str]] = None) -> List[Token]:
    return Lexer(source, defines).tokenize()
