"""AST-side OpenMP legality linter over (decompiled or parsed) C.

Checks every ``#pragma omp``-annotated construct of a mini-C
translation unit — SPLENDID's own output re-enters the same parser, so
one linter serves both hand-written OpenMP and the decompiler's
self-check:

* **race** — a worksharing loop whose array subscripts provably collide
  across iterations (``a[i] = a[i-1]``);
* **missing-private** — a scalar written inside the loop that is
  neither declared in the region, named in a ``private``/``reduction``
  clause, nor the loop's own induction variable;
* **illegal-nowait** — a ``nowait`` loop whose written arrays are
  touched again in the region before the next barrier;
* **bad-reduction** — a ``reduction(op: x)`` clause whose updates of
  ``x`` in the body are not an ``op``-reassociation chain.

Disambiguation is *name-based*: distinct identifiers are assumed not to
alias, mirroring the pipeline's contract that may-aliasing pointer
bases are versioned with a runtime check before any pragma is emitted
(the paper's Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..minic import c_ast as ast
from .diagnostics import Diagnostic, LintReport

# ---------------------------------------------------------------------------
# Name-keyed affine expressions (the AST twin of dependence.AffineExpr)
# ---------------------------------------------------------------------------


@dataclass
class _Affine:
    """``iv_coeff*iv + sum(inner) + sum(syms) + const`` over identifiers."""

    iv_coeff: int = 0
    const: int = 0
    syms: Dict[str, int] = field(default_factory=dict)
    inner: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def _merge(a: Dict[str, int], b: Dict[str, int],
               sign: int) -> Dict[str, int]:
        merged = dict(a)
        for name, coeff in b.items():
            merged[name] = merged.get(name, 0) + sign * coeff
            if merged[name] == 0:
                del merged[name]
        return merged

    def combined(self, other: "_Affine", sign: int) -> "_Affine":
        return _Affine(self.iv_coeff + sign * other.iv_coeff,
                       self.const + sign * other.const,
                       self._merge(self.syms, other.syms, sign),
                       self._merge(self.inner, other.inner, sign))

    def scaled(self, factor: int) -> "_Affine":
        return _Affine(self.iv_coeff * factor, self.const * factor,
                       {n: c * factor for n, c in self.syms.items()},
                       {n: c * factor for n, c in self.inner.items()})

    def sym_key(self) -> Tuple:
        return tuple(sorted(self.syms.items()))

    def inner_key(self) -> Tuple:
        return tuple(sorted(self.inner.items()))


def _affine_of(expr: ast.Expr, iv: str, inner_ivs: Set[str],
               varying: Set[str]) -> Optional[_Affine]:
    """Express ``expr`` as affine in ``iv`` (+ inner IVs), or None."""
    if isinstance(expr, ast.IntLit):
        return _Affine(const=expr.value)
    if isinstance(expr, ast.Ident):
        if expr.name == iv:
            return _Affine(iv_coeff=1)
        if expr.name in inner_ivs:
            return _Affine(inner={expr.name: 1})
        if expr.name in varying:
            return None  # reassigned in the body: not loop-invariant
        return _Affine(syms={expr.name: 1})
    if isinstance(expr, ast.CastExpr):
        return _affine_of(expr.operand, iv, inner_ivs, varying)
    if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
        base = _affine_of(expr.operand, iv, inner_ivs, varying)
        if base is None:
            return None
        return base.scaled(-1) if expr.op == "-" else base
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        lhs = _affine_of(expr.lhs, iv, inner_ivs, varying)
        rhs = _affine_of(expr.rhs, iv, inner_ivs, varying)
        if lhs is None or rhs is None:
            return None
        return lhs.combined(rhs, 1 if expr.op == "+" else -1)
    if isinstance(expr, ast.Binary) and expr.op == "*":
        for scale, side in ((expr.lhs, expr.rhs), (expr.rhs, expr.lhs)):
            if isinstance(scale, ast.IntLit):
                base = _affine_of(side, iv, inner_ivs, varying)
                if base is not None:
                    return base.scaled(scale.value)
    return None


def _dim_verdict(a: Optional[_Affine], b: Optional[_Affine]) -> str:
    """Same lattice as :func:`repro.analysis.races.pair_verdict` dims."""
    if a is None or b is None:
        return "unknown"
    if a.sym_key() != b.sym_key() or a.inner_key() != b.inner_key():
        return "unknown"
    if a.iv_coeff != b.iv_coeff:
        return "unknown"
    coeff = a.iv_coeff
    delta = b.const - a.const
    if a.inner:
        return "definite" if coeff == 0 and delta == 0 else "unknown"
    if coeff == 0:
        return "never" if delta != 0 else "definite"
    if delta == 0:
        return "same-iter"
    if delta % coeff != 0:
        return "never"
    return "definite"


# ---------------------------------------------------------------------------
# Access collection
# ---------------------------------------------------------------------------


@dataclass
class _ArrayAccess:
    base: Optional[str]             # None when the base is not a name
    dims: List[ast.Expr]
    is_write: bool
    is_read: bool


def _resolve_index(expr: ast.Index) -> Tuple[Optional[str], List[ast.Expr]]:
    """Base identifier and outer-to-inner subscript list of an access."""
    dims: List[ast.Expr] = []
    current: ast.Expr = expr
    while isinstance(current, ast.Index):
        dims.insert(0, current.index)
        current = current.base
    if isinstance(current, ast.Ident):
        return current.name, dims
    return None, dims


def _collect_body_accesses(body: ast.Stmt) -> Tuple[List[_ArrayAccess],
                                                    List[Tuple[str, bool]]]:
    """(array accesses, scalar writes) of a loop body.

    Scalar writes carry a flag for read-modify-write form (``s = s+x``,
    ``s += x``, ``s++``), which the privatization check uses to hint at
    a reduction clause instead of a plain ``private``.
    """
    write_targets: Dict[int, bool] = {}   # id(Index) -> compound?
    scalar_writes: List[Tuple[str, bool]] = []
    for expr in ast.walk_exprs(body):
        target, compound = None, False
        if isinstance(expr, ast.Assign):
            target = expr.target
            compound = expr.op != "="
            if not compound and isinstance(target, ast.Ident):
                # `s = ... s ...` counts as read-modify-write too.
                compound = any(isinstance(e, ast.Ident)
                               and e.name == target.name
                               for e in ast.walk_exprs(expr.value))
        elif isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            target, compound = expr.operand, True
        if target is None:
            continue
        if isinstance(target, ast.Index):
            write_targets[id(target)] = compound
        elif isinstance(target, ast.Ident):
            scalar_writes.append((target.name, compound))

    inner_bases = set()
    for expr in ast.walk_exprs(body):
        if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Index):
            inner_bases.add(id(expr.base))

    accesses: List[_ArrayAccess] = []
    for expr in ast.walk_exprs(body):
        if not isinstance(expr, ast.Index) or id(expr) in inner_bases:
            continue
        base, dims = _resolve_index(expr)
        is_write = id(expr) in write_targets
        is_read = not is_write or write_targets[id(expr)]
        accesses.append(_ArrayAccess(base, dims, is_write, is_read))
    return accesses, scalar_writes


def _stmt_base_names(stmt: ast.Stmt) -> Tuple[Set[str], Set[str]]:
    """(read names, written names) of one statement, base granularity.

    Names declared within the statement itself (e.g. a loop's own
    ``for (int i = ...)`` variable) are scoped out — they cannot carry
    state to or from other statements.
    """
    accesses, scalar_writes = _collect_body_accesses(stmt)
    local = _names_declared_anywhere(stmt)
    writes = ({a.base for a in accesses if a.is_write and a.base}
              | {name for name, _ in scalar_writes}) - local
    reads = {a.base for a in accesses if a.is_read and a.base}
    for expr in ast.walk_exprs(stmt):
        if isinstance(expr, ast.Ident):
            reads.add(expr.name)
    return reads - local, writes


# ---------------------------------------------------------------------------
# Loop / region structure
# ---------------------------------------------------------------------------


def _loop_iv(for_stmt: ast.For) -> Tuple[Optional[str], bool]:
    """(induction variable name, declared-in-init?)."""
    init = for_stmt.init
    if isinstance(init, ast.Declaration):
        return init.name, True
    if isinstance(init, ast.ExprStmt) \
            and isinstance(init.expr, ast.Assign) \
            and isinstance(init.expr.target, ast.Ident):
        return init.expr.target.name, False
    return None, False


def _worksharing_pragma(stmt: ast.For) -> Optional[ast.OmpPragma]:
    for pragma in stmt.pragmas:
        if "for" in pragma.directive:
            return pragma
    return None


def _loop_location(for_stmt: ast.For, iv: Optional[str]) -> str:
    return f"for loop over '{iv}'" if iv else "for loop"


def _declared_names(stmts) -> Set[str]:
    names = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Declaration):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Compound) and stmt.transparent:
            names |= _declared_names(stmt.body)
    return names


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


def lint_translation_unit(unit: ast.TranslationUnit) -> LintReport:
    """Lint every OpenMP construct of a translation unit."""
    report = LintReport()
    for fn in unit.functions:
        if fn.body is None:
            continue
        for stmt in fn.body.body:
            _visit(fn.name, stmt, report)
    return report


def _visit(fn_name: str, stmt: ast.Stmt, report: LintReport) -> None:
    if isinstance(stmt, ast.Compound) \
            and any(p.directive == "parallel" for p in stmt.pragmas):
        _check_parallel_region(fn_name, stmt, report)
        return
    if isinstance(stmt, ast.For):
        pragma = _worksharing_pragma(stmt)
        if pragma is not None:
            # `parallel for` (or an orphaned `for`): a one-loop region.
            _check_worksharing_loop(fn_name, stmt, pragma, set(), report)
            return
        _visit(fn_name, stmt.body, report)
        return
    if isinstance(stmt, ast.Compound):
        for child in stmt.body:
            _visit(fn_name, child, report)
    elif isinstance(stmt, ast.If):
        _visit(fn_name, stmt.then_body, report)
        if stmt.else_body is not None:
            _visit(fn_name, stmt.else_body, report)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        _visit(fn_name, stmt.body, report)
    elif isinstance(stmt, ast.Switch):
        for case in stmt.cases:
            for child in case.body:
                _visit(fn_name, child, report)


def _check_parallel_region(fn_name: str, region: ast.Compound,
                           report: LintReport) -> None:
    region_private: Set[str] = set()
    for pragma in region.pragmas:
        region_private |= set(pragma.private)
    region_private |= _declared_names(region.body)

    # (loop, written bases) of nowait loops whose barrier is still owed.
    pending_nowait: List[Tuple[ast.For, Set[str], Optional[str]]] = []

    for stmt in region.body:
        if isinstance(stmt, ast.Declaration) or (
                isinstance(stmt, ast.Compound) and stmt.transparent):
            continue
        if isinstance(stmt, ast.PragmaStmt) \
                and stmt.pragma.directive == "barrier":
            pending_nowait.clear()
            continue

        reads, writes = _stmt_base_names(stmt)
        for loop, written, iv in list(pending_nowait):
            conflict = sorted(written & (reads | writes))
            if conflict:
                report.add(Diagnostic(
                    "illegal-nowait", fn_name, _loop_location(loop, iv),
                    f"nowait is illegal: {', '.join(conflict)} written by "
                    f"the loop {'is' if len(conflict) == 1 else 'are'} "
                    f"touched again in the region before a barrier",
                    hint="drop the nowait clause or insert "
                         "'#pragma omp barrier' first"))
                pending_nowait.remove((loop, written, iv))

        pragma = _worksharing_pragma(stmt) \
            if isinstance(stmt, ast.For) else None
        if pragma is not None:
            iv, _ = _loop_iv(stmt)
            _check_worksharing_loop(fn_name, stmt, pragma, region_private,
                                    report)
            _, loop_writes = _stmt_base_names(stmt)
            if pragma.nowait:
                pending_nowait.append((stmt, loop_writes, iv))
            else:
                pending_nowait.clear()  # implicit barrier at loop end
            continue

        # Sequential statement executed by every thread in the region.
        shared_writes = sorted(w for w in writes if w not in region_private)
        if shared_writes:
            report.add(Diagnostic(
                "region-shared-write", fn_name, "parallel region",
                f"every thread writes {', '.join(shared_writes)} outside "
                f"a worksharing construct"))


def _check_worksharing_loop(fn_name: str, for_stmt: ast.For,
                            pragma: ast.OmpPragma,
                            region_private: Set[str],
                            report: LintReport) -> None:
    iv, iv_declared = _loop_iv(for_stmt)
    location = _loop_location(for_stmt, iv)
    if iv is None:
        report.add(Diagnostic(
            "not-canonical", fn_name, location,
            "cannot identify the loop's induction variable; the loop "
            "was not checked"))
        return

    private = set(region_private) | set(pragma.private)
    reduction_op: Optional[str] = None
    reduction_names: Set[str] = set()
    if pragma.reduction is not None:
        reduction_op, names = pragma.reduction
        reduction_names = set(names)

    body = for_stmt.body
    declared = _names_declared_anywhere(body)
    if iv_declared:
        declared.add(iv)
    inner_ivs = _inner_loop_ivs(body)

    accesses, scalar_writes = _collect_body_accesses(body)
    varying = {name for name, _ in scalar_writes} | inner_ivs

    # --- private / firstprivate classification audit.
    flagged: Set[str] = set()
    for name, is_rmw in scalar_writes:
        if name == iv or name in declared or name in private \
                or name in reduction_names or name in flagged:
            continue
        flagged.add(name)
        hint = f"add private({name}) to the pragma or declare '{name}' " \
               f"inside the parallel region"
        if is_rmw:
            hint = f"add reduction(op: {name}) if the updates reassociate, " \
                   f"or privatize '{name}'"
        report.add(Diagnostic(
            "missing-private", fn_name, location,
            f"scalar '{name}' is written by every iteration but is shared",
            hint=hint))

    # --- reduction-clause validation.
    if reduction_names:
        _check_reduction_clause(fn_name, location, reduction_op,
                                reduction_names, body, report)

    # --- cross-iteration race detection on array accesses.
    _check_array_races(fn_name, location, iv, inner_ivs, varying,
                       declared | private, accesses, report)


def _names_declared_anywhere(body: ast.Stmt) -> Set[str]:
    names = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Declaration):
            names.add(stmt.name)
    return names


def _inner_loop_ivs(body: ast.Stmt) -> Set[str]:
    ivs = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.For):
            iv, _ = _loop_iv(stmt)
            if iv is not None:
                ivs.add(iv)
    return ivs


def _check_array_races(fn_name: str, location: str, iv: str,
                       inner_ivs: Set[str], varying: Set[str],
                       private: Set[str], accesses: List[_ArrayAccess],
                       report: LintReport) -> None:
    affine: Dict[int, List[Optional[_Affine]]] = {}
    for access in accesses:
        affine[id(access)] = [_affine_of(dim, iv, inner_ivs, varying)
                              for dim in access.dims]

    reported: Set[Tuple[str, str]] = set()
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not (a.is_write or b.is_write):
                continue
            if a.base is None or b.base is None or a.base != b.base:
                continue  # distinct names are assumed disjoint (see module doc)
            if a.base in private:
                continue
            if len(a.dims) != len(b.dims):
                verdict = "unknown"
            else:
                verdicts = [_dim_verdict(da, db) for da, db in
                            zip(affine[id(a)], affine[id(b)])]
                if "never" in verdicts:
                    continue
                if "same-iter" in verdicts:
                    continue
                verdict = "unknown" if "unknown" in verdicts else "definite"
            rule = "race" if verdict == "definite" else "may-depend"
            if (a.base, rule) in reported:
                continue
            reported.add((a.base, rule))
            if rule == "race":
                report.add(Diagnostic(
                    "race", fn_name, location,
                    f"iterations of the parallel loop conflict on "
                    f"'{a.base}': subscripts collide across iterations",
                    hint="the loop is not DOALL; remove the pragma or "
                         "restructure the dependence"))
            else:
                report.add(Diagnostic(
                    "may-depend", fn_name, location,
                    f"accesses to '{a.base}' cannot be proven "
                    f"iteration-disjoint"))


def _reassociation_leaves(expr: ast.Expr, op: str) -> List[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == op:
        return (_reassociation_leaves(expr.lhs, op)
                + _reassociation_leaves(expr.rhs, op))
    return [expr]


def _check_reduction_clause(fn_name: str, location: str, op: str,
                            names: Set[str], body: ast.Stmt,
                            report: LintReport) -> None:
    for name in sorted(names):
        for expr in ast.walk_exprs(body):
            bad = None
            if isinstance(expr, ast.Assign) \
                    and isinstance(expr.target, ast.Ident) \
                    and expr.target.name == name:
                if expr.op == "=":
                    leaves = _reassociation_leaves(expr.value, op)
                    own = [leaf for leaf in leaves
                           if isinstance(leaf, ast.Ident)
                           and leaf.name == name]
                    if len(leaves) < 2 or len(own) != 1:
                        bad = f"'{name} = ...' is not a " \
                              f"'{op}'-reassociation chain over '{name}'"
                elif expr.op != op + "=":
                    bad = f"'{name} {expr.op} ...' does not match the " \
                          f"declared '{op}' reduction"
            elif isinstance(expr, ast.Unary) and expr.op in ("++", "--") \
                    and isinstance(expr.operand, ast.Ident) \
                    and expr.operand.name == name:
                if not (op == "+" and expr.op == "++"):
                    bad = f"'{name}{expr.op}' does not match the declared " \
                          f"'{op}' reduction"
            if bad:
                report.add(Diagnostic(
                    "bad-reduction", fn_name, location,
                    f"reduction({op}: {name}) is not backed by the loop "
                    f"body: {bad}",
                    hint="fix the clause operator or rewrite the update "
                         "as a reassociable chain"))
                break
