"""Type-consistency lint: recovered types vs. declared types vs. output.

The recovery subsystem (:mod:`repro.analysis.storage` +
:mod:`repro.analysis.typeinfer`) re-derives every variable's type from
usage evidence.  This pass turns that redundancy into a
miscompile-detection signal, checking two boundaries:

1. **recovered vs. declared/debug** — on IR that still carries declared
   types (or debug metadata), the usage-recovered types must agree.
   A ``type-mismatch`` error means either the recovery engine or the
   pipeline mis-tracked a value; ``type-unresolved`` warns where usage
   evidence was too thin to conclude anything.

2. **recovered vs. emitted source** — the decompiled translation unit's
   global declarations are compared back against the recovered layouts
   (element kind and total object size).  ``type-source-drift`` means
   the printer emitted a declaration the analyses cannot justify.
"""

from __future__ import annotations

from typing import Optional

from ..ir.module import Module
from ..minic import c_ast as ast
from .diagnostics import Diagnostic, LintReport


def _printed_width(ctype: ast.CType) -> Optional[int]:
    if isinstance(ctype, ast.CDouble):
        return 8
    if isinstance(ctype, ast.CInt):
        return ctype.bits // 8
    return None


def _scalar_consistent(rec, ctype: ast.CType) -> bool:
    from ..analysis.typeinfer import RFloat, RInt, RPointer, RUnknown
    if isinstance(rec, RUnknown):
        return True
    if isinstance(rec, RFloat):
        return isinstance(ctype, ast.CDouble)
    if isinstance(rec, RInt):
        return isinstance(ctype, ast.CInt)
    if isinstance(rec, RPointer):
        return isinstance(ctype, (ast.CPointer, ast.CArray))
    return False


def lint_recovered_types(module: Module, analysis_manager=None,
                         unit: Optional[ast.TranslationUnit] = None
                         ) -> LintReport:
    """Cross-check usage-recovered types for ``module``.

    With ``unit`` (a decompiled translation unit), additionally verify
    the emitted global declarations against the recovered layouts.
    """
    from ..analysis.manager import AnalysisManager, TYPEINFER
    from ..analysis.typeinfer import RArray, RFloat, RInt
    from ..decompilers.naming import sanitize_identifier

    manager = analysis_manager or AnalysisManager()
    typeinfo = manager.get_module(TYPEINFER, module)
    report = LintReport()

    # Boundary 1: recovered vs declared (debug-era) types.
    for finding in typeinfo.disagreements():
        rule = "type-mismatch" if finding.kind == "mismatch" \
            else "type-unresolved"
        report.add(Diagnostic(
            rule=rule,
            function=finding.function,
            location=finding.location,
            message=(f"recovered {finding.recovered.render()} vs "
                     f"declared {finding.declared.render()}"),
            hint=("re-run with --types=debug to fall back to declared "
                  "types" if finding.kind == "mismatch" else None)))

    # Boundary 2: recovered vs the emitted source declarations.
    if unit is not None:
        printed = {decl.name: decl for decl in unit.globals}
        for function in module.defined_functions():
            storage = manager.get("storage", function)
            for root in storage.roots:
                if root.kind != "global":
                    continue
                decl = printed.get(sanitize_identifier(root.name))
                if decl is None:
                    continue
                rec = typeinfo.root_rectype(function, root)
                element = rec.element if isinstance(rec, RArray) else rec
                if not isinstance(element, (RInt, RFloat)):
                    continue  # not resolved: boundary 1 already warned
                if not _scalar_consistent(element, decl.ctype):
                    report.add(Diagnostic(
                        rule="type-source-drift",
                        function=function.name,
                        location=root.name,
                        message=(f"emitted element type "
                                 f"{decl.ctype!r} but recovery proves "
                                 f"{element.render()}")))
                    continue
                width = _printed_width(decl.ctype)
                if width is not None and root.size_bytes is not None \
                        and decl.array_dims:
                    total = width
                    for dim in decl.array_dims:
                        total *= dim
                    if total != root.size_bytes:
                        report.add(Diagnostic(
                            rule="type-source-drift",
                            function=function.name,
                            location=root.name,
                            message=(f"emitted object spans {total} bytes "
                                     f"but the root occupies "
                                     f"{root.size_bytes}")))
    return report
