"""Structured diagnostics for the OpenMP legality linter.

Every check in :mod:`repro.lint` reports through this model so the text
renderer, the JSON renderer, the CLI exit code, and the tests all agree
on one vocabulary.  The rule catalog is the contract documented in
``docs/ARCHITECTURE.md`` — rule ids are stable strings that tests assert
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Rule:
    id: str
    severity: Severity
    summary: str


#: The diagnostic rule catalog.  Errors mean "this pragma is illegal as
#: emitted"; warnings mean "legality rests on something the linter
#: cannot prove" (runtime alias checks, non-affine subscripts).
RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("race", Severity.ERROR,
         "cross-iteration data race on a shared access"),
    Rule("missing-private", Severity.ERROR,
         "variable written in the region without privatization"),
    Rule("illegal-nowait", Severity.ERROR,
         "nowait drops a barrier that later reads depend on"),
    Rule("bad-reduction", Severity.ERROR,
         "reduction clause does not match the loop's update chain"),
    Rule("pragma-fidelity", Severity.ERROR,
         "emitted pragma disagrees with the runtime-call protocol"),
    Rule("kmpc-protocol", Severity.ERROR,
         "malformed __kmpc_* runtime call protocol"),
    Rule("may-depend", Severity.WARNING,
         "possible cross-iteration dependence (affine tests inconclusive)"),
    Rule("non-affine", Severity.WARNING,
         "non-affine access defeats the dependence tests"),
    Rule("may-alias", Severity.WARNING,
         "distinct bases may alias; needs a runtime disjointness check"),
    Rule("unknown-call", Severity.WARNING,
         "call with unknown side effects inside a parallel loop"),
    Rule("region-shared-write", Severity.WARNING,
         "statement outside the worksharing loop writes a shared variable"),
    Rule("not-canonical", Severity.WARNING,
         "worksharing loop shape is not analyzable"),
    Rule("type-mismatch", Severity.ERROR,
         "usage-recovered type contradicts the declared/debug type"),
    Rule("type-unresolved", Severity.WARNING,
         "no usage evidence pins this variable's type"),
    Rule("type-source-drift", Severity.ERROR,
         "emitted declaration disagrees with the recovered type"),
)}


@dataclass
class Diagnostic:
    """One finding: where, what rule, and how to fix it."""

    rule: str
    function: str
    location: str                  # loop header / source construct
    message: str
    hint: Optional[str] = None
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.severity is None:
            self.severity = RULES[self.rule].severity

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "severity": self.severity.value,
            "function": self.function,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            data["hint"] = self.hint
        return data

    def render(self) -> str:
        text = (f"{self.severity.value}[{self.rule}] {self.function}: "
                f"{self.location}: {self.message}")
        if self.hint:
            text += f"\n    fix-it: {self.hint}"
        return text


@dataclass
class LintReport:
    """An ordered collection of diagnostics with summary queries."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rule_ids(self) -> List[str]:
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule not in seen:
                seen.append(diagnostic.rule)
        return seen

    def error_rule_ids(self) -> List[str]:
        seen: List[str] = []
        for diagnostic in self.errors:
            if diagnostic.rule not in seen:
                seen.append(diagnostic.rule)
        return seen
