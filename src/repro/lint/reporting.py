"""Render a :class:`~repro.lint.diagnostics.LintReport` for humans or tools."""

from __future__ import annotations

import json

from .diagnostics import LintReport


def render_text(report: LintReport) -> str:
    """Compiler-style text listing followed by a one-line summary."""
    lines = [diagnostic.render() for diagnostic in report.diagnostics]
    errors, warnings = len(report.errors), len(report.warnings)
    if errors or warnings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("ok: all pragmas verified, no findings")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable form (one object, sorted keys)."""
    payload = {
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
