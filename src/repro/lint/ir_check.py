"""IR-side pragma verification over Polly-outlined microtasks.

For every ``__kmpc_fork_call`` site the linter re-derives what the
Pragma Generator will claim about the region (schedule, chunk, nowait,
reduction clauses) and independently re-proves it from the microtask's
IR: race freedom of the worksharing loop, privatization of every
carried scalar, legality of dropping the implicit barrier, and
reduction-chain backing for any reduction clause.  The decompiler is
not trusted — both directions run from scratch on the IR.
"""

from __future__ import annotations

from typing import List

from ..analysis.races import (RaceFinding, find_loop_races,
                              nowait_unsafe_loads, private_audit)
from ..ir.module import Function, Module
from .diagnostics import Diagnostic, LintReport

#: RaceFinding.kind -> diagnostic rule id (severities come from the
#: catalog in diagnostics.py).
_KIND_TO_RULE = {
    "race": "race",
    "carried-scalar": "race",
    "missing-private": "missing-private",
    "may-depend": "may-depend",
    "non-affine": "non-affine",
    "may-alias": "may-alias",
    "unknown-call": "unknown-call",
}

_KIND_HINTS = {
    "race": "the loop is not DOALL as parallelized; restructure the loop "
            "or add a reduction clause for read-modify-write chains",
    "missing-private": "add the variable to a private clause or declare "
                       "it inside the parallel region",
    "may-alias": "keep the runtime disjointness check that guards this "
                 "region (Figure 2 versioning)",
}


def lint_parallel_module(module: Module,
                         analysis_manager=None) -> LintReport:
    """Verify every outlined parallel region of ``module``.

    ``analysis_manager`` lets callers that already analyzed the module
    (the SPLENDID pipeline, the eval harness) share their cached loop
    forests and liveness results with the linter.
    """
    from ..core.analyzer import (ParallelAnalysisError, analyze_microtask,
                                 find_fork_sites)
    report = LintReport()
    _check_runtime_protocol(module, report)

    microtasks: List[Function] = []
    for function in module.defined_functions():
        try:
            sites = find_fork_sites(function)
        except ParallelAnalysisError as error:
            report.add(Diagnostic("kmpc-protocol", function.name,
                                  "fork site", str(error)))
            continue
        for site in sites:
            if site.microtask not in microtasks:
                microtasks.append(site.microtask)

    for microtask in microtasks:
        _lint_microtask(microtask, report, analysis_manager)
    return report


def _lint_microtask(microtask: Function, report: LintReport,
                    analysis_manager=None) -> None:
    from ..core.analyzer import ParallelAnalysisError, analyze_microtask
    from ..core.pragma_gen import worksharing_pragma
    try:
        info = analyze_microtask(microtask, analysis_manager)
    except ParallelAnalysisError as error:
        # Not the outliner's shape (e.g. front-end-lowered microtasks
        # before -O2): nothing to verify statically, but say so.
        report.add(Diagnostic("not-canonical", microtask.name,
                              "parallel region", str(error)))
        return

    location = f"worksharing loop at %{info.loop.header.name}"

    for finding in find_loop_races(info.counted, allow_reductions=True):
        _report_finding(report, microtask.name, location, finding)
    for finding in private_audit(info.counted,
                                 analysis_manager=analysis_manager):
        _report_finding(report, microtask.name, location, finding)

    # nowait legality: the pragma generator drops the implicit barrier
    # whenever the runtime protocol carried no __kmpc_barrier; prove no
    # post-loop read depends on the loop's stores before the next one.
    if info.nowait:
        unsafe = nowait_unsafe_loads(info.loop)
        if unsafe:
            names = sorted({getattr(load.pointer, "name", None) or "?"
                            for load in unsafe})
            report.add(Diagnostic(
                "illegal-nowait", microtask.name, location,
                f"nowait is illegal: {len(unsafe)} load(s) after the loop "
                f"(of {', '.join(names)}) may read its stores before the "
                f"next barrier",
                hint="restore the implicit barrier (drop nowait)"))

    _check_reduction_clause(info, location, report)

    # Pragma fidelity: what the generator will emit must agree with what
    # the runtime calls encode.
    pragma = worksharing_pragma(info)
    if pragma.schedule != info.schedule:
        report.add(Diagnostic(
            "pragma-fidelity", microtask.name, location,
            f"pragma says schedule({pragma.schedule}) but the init call "
            f"encodes {info.schedule}"))
    if info.chunk is not None and pragma.chunk != info.chunk:
        report.add(Diagnostic(
            "pragma-fidelity", microtask.name, location,
            f"runtime init call carries chunk {info.chunk} but the pragma "
            f"would emit chunk {pragma.chunk}",
            hint="emit the chunk whenever the init call carried one"))
    if pragma.nowait != info.nowait:
        report.add(Diagnostic(
            "pragma-fidelity", microtask.name, location,
            f"pragma nowait={pragma.nowait} disagrees with the runtime "
            f"protocol (barrier {'absent' if info.nowait else 'present'})"))


def _report_finding(report: LintReport, function: str, location: str,
                    finding: RaceFinding) -> None:
    rule = _KIND_TO_RULE.get(finding.kind, "may-depend")
    report.add(Diagnostic(rule, function, location, finding.detail,
                          hint=_KIND_HINTS.get(finding.kind)))


def _check_reduction_clause(info, location: str, report: LintReport) -> None:
    """Validate the reduction clauses the decompiler would emit against
    the chains :mod:`repro.analysis.reduction` actually recognizes."""
    from ..analysis.reduction import (REASSOCIABLE_OPS, REDUCTION_SYMBOL,
                                      find_reductions)
    for reduction in find_reductions(info.counted):
        if reduction.opcode not in REASSOCIABLE_OPS \
                or reduction.opcode not in REDUCTION_SYMBOL:
            report.add(Diagnostic(
                "bad-reduction", info.function.name, location,
                f"update chain uses non-reassociable opcode "
                f"'{reduction.opcode}'",
                hint="only + and * reductions may be reordered"))


def _check_runtime_protocol(module: Module, report: LintReport) -> None:
    """Surface __kmpc_* protocol violations as diagnostics (the verifier
    raises; the linter reports)."""
    from ..ir.verifier import VerificationError, verify_kmpc_protocol
    try:
        verify_kmpc_protocol(module)
    except VerificationError as error:
        report.add(Diagnostic("kmpc-protocol", "<module>", "runtime calls",
                              str(error)))
