"""repro.lint — OpenMP legality linter for SPLENDID's decompiled output.

Two entry points share one diagnostic vocabulary:

* :func:`lint_parallel_module` verifies a *parallelized IR module*
  (Polly-outlined ``__kmpc_fork_call`` microtasks) — every pragma the
  decompiler will emit is re-proven from the IR;
* :func:`lint_translation_unit` verifies a *mini-C AST* carrying
  ``#pragma omp`` annotations — either SPLENDID's own output fed back
  through the parser, or hand-written OpenMP.
"""

from .diagnostics import RULES, Diagnostic, LintReport, Rule, Severity
from .ir_check import lint_parallel_module
from .reporting import render_json, render_text
from .source_check import lint_translation_unit
from .type_check import lint_recovered_types

__all__ = [
    "RULES", "Diagnostic", "LintReport", "Rule", "Severity",
    "lint_parallel_module", "lint_translation_unit",
    "lint_recovered_types",
    "render_json", "render_text",
]
