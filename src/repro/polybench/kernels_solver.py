"""PolyBench graph/solver kernels: floyd-warshall."""

from __future__ import annotations

from .suite import Benchmark, register

_FW_DECLS = """
double path[N][N];

void init() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      path[i][j] = (double)((i * j) % 7 + 1) + ((i + j) % 13 == 0 ? 2.0 : 0.0);
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s = s + path[i][j];
  print_double(s);
  return 0;
}
"""

_FW_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (k = 0; k < N; k++)
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        path[i][j] = path[i][j] < path[i][k] + path[k][j]
            ? path[i][j]
            : path[i][k] + path[k][j];
}
"""

# Static dependence analysis cannot prove the i (or j) loop parallel:
# iteration i == k writes the row every other iteration reads, so Polly
# (exact or conservative) finds a dependence and the reference carries
# no pragmas.  (The programmer, knowing the i == k update is a no-op,
# parallelizes the i loop manually — that knowledge gap is exactly the
# paper's collaboration motivation, though floyd-warshall is not one of
# the seven Figure-9 cases.)
_FW_KERNEL_REF = _FW_KERNEL_SEQ

register(Benchmark(
    name="floyd-warshall",
    sequential_source=_FW_KERNEL_SEQ + _FW_DECLS,
    reference_source=_FW_KERNEL_REF + _FW_DECLS,
    defines={"N": "18"},
    programmer_parallelized=1,
))
