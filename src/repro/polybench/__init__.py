"""repro.polybench — the 16-benchmark PolyBench subset of the paper."""

from .suite import (Benchmark, all_benchmarks, collab_benchmarks, get,
                    names, register)

__all__ = ["Benchmark", "all_benchmarks", "collab_benchmarks", "get",
           "names", "register"]
