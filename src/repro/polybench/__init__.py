"""repro.polybench — the 16-benchmark PolyBench subset of the paper."""

from .suite import (Benchmark, all_benchmarks, collab_benchmarks,
                    fission_benchmarks, get, get_fission, names, register,
                    register_fission)

__all__ = ["Benchmark", "all_benchmarks", "collab_benchmarks",
           "fission_benchmarks", "get", "get_fission", "names", "register",
           "register_fission"]
