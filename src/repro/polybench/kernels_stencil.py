"""PolyBench stencil kernels: jacobi-1d/2d-imper, fdtd-2d, adi."""

from __future__ import annotations

from .suite import Benchmark, register

# ---------------------------------------------------------------------------
# jacobi-1d-imper
# ---------------------------------------------------------------------------

_J1D_DECLS = """
double A[N];
double B[N];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = ((double)i + 2.0) / (double)N;
    B[i] = ((double)i + 3.0) / (double)N;
  }
}

int main() {
  init();
  kernel();
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s = s + A[i] * (double)(i % 3 + 1);
  print_double(s);
  return 0;
}
"""

_J1D_KERNEL_SEQ = """
void kernel() {
  int t, i, j;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (j = 1; j < N - 1; j++)
      A[j] = B[j];
  }
}
"""

_J1D_KERNEL_REF = """
void kernel() {
  int t, j;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    }
    for (j = 1; j < N - 1; j++)
      A[j] = B[j];
  }
}
"""

# Collaboration: the programmer knows the copy-back sweep is worth
# parallelizing on this machine even though the compiler's profitability
# heuristic skipped it.
_J1D_KERNEL_COLLAB = """
void kernel() {
  int t;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int j = 1; j < N - 1; j++)
        A[j] = B[j];
    }
  }
}
"""

# Manual version: the programmer parallelized the stencil sweep but left
# the copy-back loop sequential.
_J1D_KERNEL_MANUAL = """
void kernel() {
  int t, j;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    }
    for (j = 1; j < N - 1; j++)
      A[j] = B[j];
  }
}
"""

register(Benchmark(
    name="jacobi-1d-imper",
    sequential_source=_J1D_KERNEL_SEQ + _J1D_DECLS,
    reference_source=_J1D_KERNEL_REF + _J1D_DECLS,
    manual_source=_J1D_KERNEL_MANUAL + _J1D_DECLS,
    collab_source=_J1D_KERNEL_COLLAB + _J1D_DECLS,
    defines={"N": "400", "TSTEPS": "6"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=4,
))

# ---------------------------------------------------------------------------
# jacobi-2d-imper
# ---------------------------------------------------------------------------

_J2D_DECLS = """
double A[N][N];
double B[N][N];

void init() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = ((double)i * (double)(j + 2) + 2.0) / (double)N;
      B[i][j] = ((double)i * (double)(j + 3) + 3.0) / (double)N;
    }
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s = s + A[i][j];
  print_double(s);
  return 0;
}
"""

_J2D_KERNEL_SEQ = """
void kernel() {
  int t, i, j;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = B[i][j];
  }
}
"""

_J2D_KERNEL_REF = """
void kernel() {
  int t;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        for (int j = 1; j < N - 1; j++)
          B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        for (int j = 1; j < N - 1; j++)
          A[i][j] = B[i][j];
    }
  }
}
"""

# Manual version: stencil parallelized, copy-back left sequential.
_J2D_KERNEL_MANUAL = """
void kernel() {
  int t, i, j;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < N - 1; i++)
        for (int j = 1; j < N - 1; j++)
          B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
    }
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = B[i][j];
  }
}
"""

register(Benchmark(
    name="jacobi-2d-imper",
    sequential_source=_J2D_KERNEL_SEQ + _J2D_DECLS,
    reference_source=_J2D_KERNEL_REF + _J2D_DECLS,
    manual_source=_J2D_KERNEL_MANUAL + _J2D_DECLS,
    collab_source=_J2D_KERNEL_REF + _J2D_DECLS,
    defines={"N": "26", "TSTEPS": "4"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=4,
))

# ---------------------------------------------------------------------------
# fdtd-2d
# ---------------------------------------------------------------------------

_FDTD_DECLS = """
double ex[NX][NY];
double ey[NX][NY];
double hz[NX][NY];
double fict[TMAX];

void init() {
  int i, j;
  for (i = 0; i < TMAX; i++)
    fict[i] = (double)i;
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++) {
      ex[i][j] = ((double)i * (double)(j + 1)) / (double)NX;
      ey[i][j] = ((double)i * (double)(j + 2)) / (double)NY;
      hz[i][j] = ((double)i * (double)(j + 3)) / (double)NX;
    }
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++)
      s = s + hz[i][j] + ex[i][j] - ey[i][j];
  print_double(s);
  return 0;
}
"""

_FDTD_KERNEL_SEQ = """
void kernel() {
  int t, i, j;
  for (t = 0; t < TMAX; t++) {
    for (j = 0; j < NY; j++)
      ey[0][j] = fict[t];
    for (i = 1; i < NX; i++)
      for (j = 0; j < NY; j++)
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    for (i = 0; i < NX; i++)
      for (j = 1; j < NY; j++)
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    for (i = 0; i < NX - 1; i++)
      for (j = 0; j < NY - 1; j++)
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
  }
}
"""

_FDTD_KERNEL_REF = """
void kernel() {
  int t, j;
  for (t = 0; t < TMAX; t++) {
    for (j = 0; j < NY; j++)
      ey[0][j] = fict[t];
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 1; i < NX; i++)
        for (int j = 0; j < NY; j++)
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 0; i < NX; i++)
        for (int j = 1; j < NY; j++)
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i = 0; i < NX - 1; i++)
        for (int j = 0; j < NY - 1; j++)
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
    }
  }
}
"""

register(Benchmark(
    name="fdtd-2d",
    sequential_source=_FDTD_KERNEL_SEQ + _FDTD_DECLS,
    reference_source=_FDTD_KERNEL_REF + _FDTD_DECLS,
    defines={"NX": "24", "NY": "24", "TMAX": "4"},
    programmer_parallelized=3,
))

# ---------------------------------------------------------------------------
# adi (alternating direction implicit)
# ---------------------------------------------------------------------------

_ADI_DECLS = """
double X[N][N];
double A[N][N];
double B[N][N];

void init() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      X[i][j] = ((double)i * (double)(j + 1) + 1.0) / (double)N;
      A[i][j] = ((double)(i + 1) * (double)(j + 2) + 2.0) / (double)N;
      B[i][j] = 2.0 + ((double)(i + 3) * (double)(j + 3) + 3.0) / (double)N;
    }
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s = s + X[i][j];
  print_double(s);
  return 0;
}
"""

_ADI_KERNEL_SEQ = """
void kernel() {
  int t, i1, i2;
  for (t = 0; t < TSTEPS; t++) {
    for (i1 = 0; i1 < N; i1++)
      for (i2 = 1; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1][i2 - 1] * A[i1][i2] / B[i1][i2 - 1];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2 - 1];
      }
    for (i1 = 0; i1 < N; i1++)
      X[i1][N - 1] = X[i1][N - 1] / B[i1][N - 1];
    for (i1 = 0; i1 < N; i1++)
      for (i2 = 0; i2 < N - 2; i2++)
        X[i1][N - i2 - 2] = (X[i1][N - 2 - i2] - X[i1][N - 2 - i2 - 1] * A[i1][N - i2 - 3]) / B[i1][N - 3 - i2];
    for (i1 = 1; i1 < N; i1++)
      for (i2 = 0; i2 < N; i2++) {
        X[i1][i2] = X[i1][i2] - X[i1 - 1][i2] * A[i1][i2] / B[i1 - 1][i2];
        B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1 - 1][i2];
      }
    for (i2 = 0; i2 < N; i2++)
      X[N - 1][i2] = X[N - 1][i2] / B[N - 1][i2];
    for (i1 = 0; i1 < N - 2; i1++)
      for (i2 = 0; i2 < N; i2++)
        X[N - 2 - i1][i2] = (X[N - 2 - i1][i2] - X[N - i1 - 3][i2] * A[N - 3 - i1][i2]) / B[N - 2 - i1][i2];
  }
}
"""

_ADI_KERNEL_REF = """
void kernel() {
  int t, i1;
  for (t = 0; t < TSTEPS; t++) {
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i1 = 0; i1 < N; i1++)
        for (int i2 = 1; i2 < N; i2++) {
          X[i1][i2] = X[i1][i2] - X[i1][i2 - 1] * A[i1][i2] / B[i1][i2 - 1];
          B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2 - 1];
        }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i1 = 0; i1 < N; i1++)
        X[i1][N - 1] = X[i1][N - 1] / B[i1][N - 1];
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i1 = 0; i1 < N; i1++)
        for (int i2 = 0; i2 < N - 2; i2++)
          X[i1][N - i2 - 2] = (X[i1][N - 2 - i2] - X[i1][N - 2 - i2 - 1] * A[i1][N - i2 - 3]) / B[i1][N - 3 - i2];
    }
    for (i1 = 1; i1 < N; i1++) {
      #pragma omp parallel
      {
        #pragma omp for schedule(static) nowait
        for (int i2 = 0; i2 < N; i2++) {
          X[i1][i2] = X[i1][i2] - X[i1 - 1][i2] * A[i1][i2] / B[i1 - 1][i2];
          B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1 - 1][i2];
        }
      }
    }
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int i2 = 0; i2 < N; i2++)
        X[N - 1][i2] = X[N - 1][i2] / B[N - 1][i2];
    }
    for (i1 = 0; i1 < N - 2; i1++) {
      #pragma omp parallel
      {
        #pragma omp for schedule(static) nowait
        for (int i2 = 0; i2 < N; i2++)
          X[N - 2 - i1][i2] = (X[N - 2 - i1][i2] - X[N - i1 - 3][i2] * A[N - 3 - i1][i2]) / B[N - 2 - i1][i2];
      }
    }
  }
}
"""

register(Benchmark(
    name="adi",
    sequential_source=_ADI_KERNEL_SEQ + _ADI_DECLS,
    reference_source=_ADI_KERNEL_REF + _ADI_DECLS,
    defines={"N": "18", "TSTEPS": "2"},
    programmer_parallelized=2,
))
