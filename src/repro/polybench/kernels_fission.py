"""Fission demonstration kernels (solver shapes).

Each kernel's single loop mixes a loop-carried statement with
independent work, so the plain DOALL test leaves the whole program
sequential.  The fission pipeline (``repro.polly.fission``) distributes
the loop and parallelizes the clean half:

* ``trisolv-norm``   — forward-substitution recurrence next to an
  independent row normalization (carried + clean, no expansion);
* ``smooth-sqrt``    — an exponential-smoothing scalar recurrence whose
  value feeds an independent residual statement: scalar expansion
  spills the recurrence to a temp array before the split;
* ``shift-update``   — two independent statement groups separated by a
  cross-iteration anti dependence (``u[i+1]`` read before the ``u[i]``
  write): fission orders them as two loops, both parallel.

Reference sources carry pragmas exactly where the fissioned pipeline
places them (the §5.1.2 convention, extended to fission).
"""

from .suite import Benchmark, register_fission

# ---------------------------------------------------------------------------
# trisolv-norm: unit-bidiagonal forward substitution + row normalization
# ---------------------------------------------------------------------------

_TRISOLV_DECLS = """
double x[N];
double w[N];
double b[N];
double c[N];
double L[N];
double D[N];

void init() {
  int i;
  x[0] = 1.0;
  for (i = 0; i < N; i++) {
    b[i] = (double)(i % 17) / 17.0 + 0.5;
    c[i] = (double)(i % 11) / 11.0 + 1.5;
    L[i] = (double)(i % 7) / 14.0;
    D[i] = (double)(i % 5) / 5.0 + 1.0;
  }
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + x[i] + w[i];
  print_double(acc);
  return 0;
}
"""

_TRISOLV_KERNEL_SEQ = """
void kernel() {
  int i;
  for (i = 1; i < N; i++) {
    x[i] = (b[i] - L[i] * x[i - 1]) / D[i];
    w[i] = b[i] * c[i] + b[i] / c[i] + c[i] * c[i];
  }
}
"""

_TRISOLV_KERNEL_REF = """
void kernel() {
  int i;
  for (i = 1; i < N; i++)
    x[i] = (b[i] - L[i] * x[i - 1]) / D[i];
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 1; i < N; i++)
      w[i] = b[i] * c[i] + b[i] / c[i] + c[i] * c[i];
  }
}
"""

register_fission(Benchmark(
    name="trisolv-norm",
    sequential_source=_TRISOLV_KERNEL_SEQ + _TRISOLV_DECLS,
    reference_source=_TRISOLV_KERNEL_REF + _TRISOLV_DECLS,
    defines={"N": "256"},
    programmer_parallelized=1,
))

# ---------------------------------------------------------------------------
# smooth-sqrt: exponential smoothing + residual norm (scalar expansion)
# ---------------------------------------------------------------------------

_SMOOTH_DECLS = """
double r[N];
double y[N];

void init() {
  int i;
  for (i = 0; i < N; i++)
    r[i] = (double)(i % 13) / 13.0 + 0.25;
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + y[i];
  print_double(acc);
  return 0;
}
"""

_SMOOTH_KERNEL_SEQ = """
void kernel() {
  int i;
  double t = 1.0;
  for (i = 0; i < N; i++) {
    t = t * 0.99 + r[i];
    y[i] = sqrt(t * t + r[i] * r[i]) + t * r[i];
  }
}
"""

_SMOOTH_KERNEL_REF = """
double t_tmp[N];

void kernel() {
  int i;
  double t = 1.0;
  for (i = 0; i < N; i++) {
    t = t * 0.99 + r[i];
    t_tmp[i] = t;
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      y[i] = sqrt(t_tmp[i] * t_tmp[i] + r[i] * r[i]) + t_tmp[i] * r[i];
  }
}
"""

register_fission(Benchmark(
    name="smooth-sqrt",
    sequential_source=_SMOOTH_KERNEL_SEQ + _SMOOTH_DECLS,
    reference_source=_SMOOTH_KERNEL_REF + _SMOOTH_DECLS,
    defines={"N": "256"},
    programmer_parallelized=1,
))

# ---------------------------------------------------------------------------
# shift-update: shifted read before in-place update (anti dependence)
# ---------------------------------------------------------------------------

_SHIFT_DECLS = """
double d[N];
double u[N + 1];
double v[N];
double w[N];

void init() {
  int i;
  for (i = 0; i < N; i++) {
    v[i] = (double)(i % 9) / 9.0 + 0.5;
    w[i] = (double)(i % 6) / 6.0 + 1.0;
    u[i] = (double)(i % 15) / 15.0;
  }
  u[N] = 0.75;
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + d[i] + u[i];
  print_double(acc);
  return 0;
}
"""

_SHIFT_KERNEL_SEQ = """
void kernel() {
  int i;
  for (i = 0; i < N; i++) {
    d[i] = u[i + 1] * 0.3 + u[i] * 0.7;
    u[i] = v[i] * v[i] + v[i] / (w[i] + 1.5);
  }
}
"""

_SHIFT_KERNEL_REF = """
void kernel() {
  int i;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      d[i] = u[i + 1] * 0.3 + u[i] * 0.7;
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      u[i] = v[i] * v[i] + v[i] / (w[i] + 1.5);
  }
}
"""

register_fission(Benchmark(
    name="shift-update",
    sequential_source=_SHIFT_KERNEL_SEQ + _SHIFT_DECLS,
    reference_source=_SHIFT_KERNEL_REF + _SHIFT_DECLS,
    defines={"N": "256"},
    programmer_parallelized=2,
))
