"""PolyBench linear-algebra kernels (sequential + OpenMP reference).

Sources follow PolyBench/C 3.2 kernel structure; array sizes come in
through ``#define``-style macros supplied per benchmark (miniaturized
datasets — see DESIGN.md).  Reference versions place pragmas on exactly
the loops the Polly-style parallelizer handles, per §5.1.2.
"""

from __future__ import annotations

from .suite import Benchmark, register

# ---------------------------------------------------------------------------
# gemm: C = alpha*A*B + beta*C
# ---------------------------------------------------------------------------

_GEMM_DECLS = """
double A[NI][NK];
double B[NK][NJ];
double C[NI][NJ];

void init() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)(i * j % 7) / 7.0;
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)(i * j % 5) / 5.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++)
      C[i][j] = (double)(i * j % 3) / 3.0;
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++)
      s = s + C[i][j] * (double)(i % 4 + 1);
  print_double(s);
  return 0;
}
"""

_GEMM_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++) {
      C[i][j] = C[i][j] * 1.2;
      for (k = 0; k < NK; k++)
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
    }
  }
}
"""

_GEMM_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NI; i++) {
      for (int j = 0; j < NJ; j++) {
        C[i][j] = C[i][j] * 1.2;
        for (int k = 0; k < NK; k++)
          C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
}
"""

register(Benchmark(
    name="gemm",
    sequential_source=_GEMM_KERNEL_SEQ + _GEMM_DECLS,
    reference_source=_GEMM_KERNEL_REF + _GEMM_DECLS,
    defines={"NI": "20", "NJ": "20", "NK": "20"},
    programmer_parallelized=1,
))

# ---------------------------------------------------------------------------
# 2mm: tmp = alpha*A*B ; D = tmp*C + beta*D
# ---------------------------------------------------------------------------

_2MM_DECLS = """
double A[NI][NK];
double B[NK][NJ];
double C[NJ][NL];
double D[NI][NL];
double tmp[NI][NJ];

void init() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)(i * j % 9) / 9.0;
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)(i * (j + 1) % 7) / 7.0;
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NL; j++)
      C[i][j] = (double)((i + 3) * j % 11) / 11.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      D[i][j] = (double)(i * (j + 2) % 13) / 13.0;
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      s = s + D[i][j] * (double)(j % 5 + 1);
  print_double(s);
  return 0;
}
"""

_2MM_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        tmp[i][j] = tmp[i][j] + 1.5 * A[i][k] * B[k][j];
    }
  }
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NL; j++) {
      D[i][j] = D[i][j] * 1.2;
      for (k = 0; k < NJ; k++)
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
    }
  }
}
"""

_2MM_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NI; i++) {
      for (int j = 0; j < NJ; j++) {
        tmp[i][j] = 0.0;
        for (int k = 0; k < NK; k++)
          tmp[i][j] = tmp[i][j] + 1.5 * A[i][k] * B[k][j];
      }
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NI; i++) {
      for (int j = 0; j < NL; j++) {
        D[i][j] = D[i][j] * 1.2;
        for (int k = 0; k < NJ; k++)
          D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }
    }
  }
}
"""

register(Benchmark(
    name="2mm",
    sequential_source=_2MM_KERNEL_SEQ + _2MM_DECLS,
    reference_source=_2MM_KERNEL_REF + _2MM_DECLS,
    defines={"NI": "16", "NJ": "16", "NK": "16", "NL": "16"},
    programmer_parallelized=2,
))

# ---------------------------------------------------------------------------
# 3mm: E = A*B ; F = C*D ; G = E*F
# ---------------------------------------------------------------------------

_3MM_DECLS = """
double A[NI][NK];
double B[NK][NJ];
double C[NJ][NM];
double D[NM][NL];
double E[NI][NJ];
double F[NJ][NL];
double G[NI][NL];

void init() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)(i * j % 5) / 5.0;
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)(i * (j + 1) % 7) / 7.0;
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NM; j++)
      C[i][j] = (double)((i + 1) * j % 9) / 9.0;
  for (i = 0; i < NM; i++)
    for (j = 0; j < NL; j++)
      D[i][j] = (double)(i * (j + 3) % 11) / 11.0;
}

int main() {
  init();
  kernel();
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      s = s + G[i][j] * (double)(i % 3 + 1);
  print_double(s);
  return 0;
}
"""

_3MM_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        E[i][j] = E[i][j] + A[i][k] * B[k][j];
    }
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NL; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < NM; k++)
        F[i][j] = F[i][j] + C[i][k] * D[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < NJ; k++)
        G[i][j] = G[i][j] + E[i][k] * F[k][j];
    }
}
"""

_3MM_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NI; i++)
      for (int j = 0; j < NJ; j++) {
        E[i][j] = 0.0;
        for (int k = 0; k < NK; k++)
          E[i][j] = E[i][j] + A[i][k] * B[k][j];
      }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NJ; i++)
      for (int j = 0; j < NL; j++) {
        F[i][j] = 0.0;
        for (int k = 0; k < NM; k++)
          F[i][j] = F[i][j] + C[i][k] * D[k][j];
      }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NI; i++)
      for (int j = 0; j < NL; j++) {
        G[i][j] = 0.0;
        for (int k = 0; k < NJ; k++)
          G[i][j] = G[i][j] + E[i][k] * F[k][j];
      }
  }
}
"""

register(Benchmark(
    name="3mm",
    sequential_source=_3MM_KERNEL_SEQ + _3MM_DECLS,
    reference_source=_3MM_KERNEL_REF + _3MM_DECLS,
    defines={"NI": "14", "NJ": "14", "NK": "14", "NL": "14", "NM": "14"},
    programmer_parallelized=3,
))

# ---------------------------------------------------------------------------
# atax: y = A' * (A * x)
# ---------------------------------------------------------------------------

_ATAX_DECLS = """
double A[NX][NY];
double x[NY];
double y[NY];
double tmp[NX];

void init() {
  int i, j;
  for (i = 0; i < NY; i++) {
    x[i] = 1.0 + (double)i / (double)NY;
    y[i] = 0.0;
  }
  for (i = 0; i < NX; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < NY; j++)
      A[i][j] = (double)(i * (j + 1) % 17) / 17.0;
  }
}

int main() {
  init();
  kernel();
  int i;
  double s = 0.0;
  for (i = 0; i < NY; i++)
    s = s + y[i] * (double)(i % 7 + 1);
  print_double(s);
  return 0;
}
"""

_ATAX_KERNEL_SEQ = """
void kernel() {
  int i, j;
  for (i = 0; i < NX; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < NY; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (j = 0; j < NY; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
}
"""

# Polly can only parallelize the inner update of y (the outer loop
# carries a scatter dependence on y; the tmp accumulation is a
# reduction).
_ATAX_KERNEL_REF = """
void kernel() {
  int i;
  for (i = 0; i < NX; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < NY; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int j = 0; j < NY; j++)
        y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
"""

# The Cavazos-lab manual version distributes the nest and parallelizes
# the tmp computation over rows.
_ATAX_KERNEL_MANUAL = """
void kernel() {
  int i, j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NX; i++) {
      tmp[i] = 0.0;
      for (int j = 0; j < NY; j++)
        tmp[i] = tmp[i] + A[i][j] * x[j];
    }
  }
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
}
"""

_ATAX_KERNEL_COLLAB = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NX; i++) {
      tmp[i] = 0.0;
      for (int j = 0; j < NY; j++)
        tmp[i] = tmp[i] + A[i][j] * x[j];
    }
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int j = 0; j < NY; j++)
      for (int i = 0; i < NX; i++)
        y[j] = y[j] + A[i][j] * tmp[i];
  }
}
"""

register(Benchmark(
    name="atax",
    sequential_source=_ATAX_KERNEL_SEQ + _ATAX_DECLS,
    reference_source=_ATAX_KERNEL_REF + _ATAX_DECLS,
    manual_source=_ATAX_KERNEL_MANUAL + _ATAX_DECLS,
    collab_source=_ATAX_KERNEL_COLLAB + _ATAX_DECLS,
    defines={"NX": "64", "NY": "64"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=3,
))

# ---------------------------------------------------------------------------
# bicg: s = A' * r ; q = A * p
# ---------------------------------------------------------------------------

_BICG_DECLS = """
double A[NX][NY];
double r[NX];
double s[NY];
double p[NY];
double q[NX];

void init() {
  int i, j;
  for (i = 0; i < NY; i++) {
    p[i] = (double)(i % 11) / 11.0;
    s[i] = 0.0;
  }
  for (i = 0; i < NX; i++) {
    r[i] = (double)(i % 13) / 13.0;
    q[i] = 0.0;
    for (j = 0; j < NY; j++)
      A[i][j] = (double)(i * (j + 2) % 19) / 19.0;
  }
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < NY; i++)
    acc = acc + s[i];
  for (i = 0; i < NX; i++)
    acc = acc + q[i] * 2.0;
  print_double(acc);
  return 0;
}
"""

_BICG_KERNEL_SEQ = """
void kernel() {
  int i, j;
  for (i = 0; i < NX; i++) {
    q[i] = 0.0;
    for (j = 0; j < NY; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"""

# The plain DOALL test finds no parallel loop in the fused nest (outer:
# s scatter; inner: q reduction), but the fission pass distributes the
# inner loop and parallelizes the s-scatter half — automatically finding
# the split the manual version applies by hand.  The reference carries
# the pragma exactly where the fissioned pipeline places it.
_BICG_KERNEL_REF = """
void kernel() {
  int i, j;
  for (i = 0; i < NX; i++) {
    q[i] = 0.0;
    #pragma omp parallel
    {
      #pragma omp for schedule(static) nowait
      for (int j = 0; j < NY; j++)
        s[j] = s[j] + r[i] * A[i][j];
    }
    for (j = 0; j < NY; j++)
      q[i] = q[i] + A[i][j] * p[j];
  }
}
"""

# Manual version (Cavazos style): distribute, parallelize the q part.
_BICG_KERNEL_MANUAL = """
void kernel() {
  int i, j;
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++)
      s[j] = s[j] + r[i] * A[i][j];
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NX; i++) {
      q[i] = 0.0;
      for (int j = 0; j < NY; j++)
        q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"""

_BICG_KERNEL_COLLAB = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int j = 0; j < NY; j++)
      for (int i = 0; i < NX; i++)
        s[j] = s[j] + r[i] * A[i][j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < NX; i++) {
      q[i] = 0.0;
      for (int j = 0; j < NY; j++)
        q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"""

register(Benchmark(
    name="bicg",
    sequential_source=_BICG_KERNEL_SEQ + _BICG_DECLS,
    reference_source=_BICG_KERNEL_REF + _BICG_DECLS,
    manual_source=_BICG_KERNEL_MANUAL + _BICG_DECLS,
    collab_source=_BICG_KERNEL_COLLAB + _BICG_DECLS,
    defines={"NX": "64", "NY": "64"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=4,
))

# ---------------------------------------------------------------------------
# doitgen: sum[r][q][p] = sum_s A[r][q][s] * C4[s][p]
# ---------------------------------------------------------------------------

_DOITGEN_DECLS = """
double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NR][NQ][NP];

void init() {
  int r, q, p;
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++)
      for (p = 0; p < NP; p++)
        A[r][q][p] = (double)((r * q + p) % 7) / 7.0;
  for (r = 0; r < NP; r++)
    for (q = 0; q < NP; q++)
      C4[r][q] = (double)(r * q % 13) / 13.0;
}

int main() {
  init();
  kernel();
  int r, q, p;
  double acc = 0.0;
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++)
      for (p = 0; p < NP; p++)
        acc = acc + A[r][q][p];
  print_double(acc);
  return 0;
}
"""

_DOITGEN_KERNEL_SEQ = """
void kernel() {
  int r, q, p, s;
  for (r = 0; r < NR; r++) {
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NP; p++) {
        sum[r][q][p] = 0.0;
        for (s = 0; s < NP; s++)
          sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < NP; p++)
        A[r][q][p] = sum[r][q][p];
    }
  }
}
"""

_DOITGEN_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int r = 0; r < NR; r++) {
      for (int q = 0; q < NQ; q++) {
        for (int p = 0; p < NP; p++) {
          sum[r][q][p] = 0.0;
          for (int s = 0; s < NP; s++)
            sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
        }
        for (int p = 0; p < NP; p++)
          A[r][q][p] = sum[r][q][p];
      }
    }
  }
}
"""

register(Benchmark(
    name="doitgen",
    sequential_source=_DOITGEN_KERNEL_SEQ + _DOITGEN_DECLS,
    reference_source=_DOITGEN_KERNEL_REF + _DOITGEN_DECLS,
    defines={"NR": "10", "NQ": "10", "NP": "10"},
    programmer_parallelized=1,
))

# ---------------------------------------------------------------------------
# gemver: A_hat = A + u1 v1' + u2 v2' ; x = beta A' y + z ; w = alpha A x
# ---------------------------------------------------------------------------

_GEMVER_DECLS = """
double A[N][N];
double u1[N];
double v1[N];
double u2[N];
double v2[N];
double w[N];
double x[N];
double y[N];
double z[N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    u1[i] = (double)i / (double)N;
    u2[i] = (double)(i + 1) / (double)N / 2.0;
    v1[i] = (double)(i + 4) / (double)N / 4.0;
    v2[i] = (double)(i + 2) / (double)N / 6.0;
    y[i] = (double)(i + 3) / (double)N / 8.0;
    z[i] = (double)(i + 5) / (double)N / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < N; j++)
      A[i][j] = (double)(i * j % 7) / 7.0;
  }
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + w[i] * (double)(i % 5 + 1);
  print_double(acc);
  return 0;
}
"""

_GEMVER_KERNEL_SEQ = """
void kernel() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + 1.2 * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] = w[i] + 1.5 * A[i][j] * x[j];
}
"""

_GEMVER_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        x[i] = x[i] + 1.2 * A[j][i] * y[j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      x[i] = x[i] + z[i];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        w[i] = w[i] + 1.5 * A[i][j] * x[j];
  }
}
"""

# Manual version: the programmer parallelized the rank-2 update and the
# final matvec but left the transposed matvec and vector add alone.
_GEMVER_KERNEL_MANUAL = """
void kernel() {
  int i, j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + 1.2 * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        w[i] = w[i] + 1.5 * A[i][j] * x[j];
  }
}
"""

_GEMVER_KERNEL_COLLAB = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        x[i] = x[i] + 1.2 * A[j][i] * y[j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      x[i] = x[i] + z[i];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        w[i] = w[i] + 1.5 * A[i][j] * x[j];
  }
}
"""

register(Benchmark(
    name="gemver",
    sequential_source=_GEMVER_KERNEL_SEQ + _GEMVER_DECLS,
    reference_source=_GEMVER_KERNEL_REF + _GEMVER_DECLS,
    manual_source=_GEMVER_KERNEL_MANUAL + _GEMVER_DECLS,
    collab_source=_GEMVER_KERNEL_COLLAB + _GEMVER_DECLS,
    defines={"N": "48"},
    programmer_parallelized=2,
    is_collab_case=True,
    collab_edit_loc=2,
))

# ---------------------------------------------------------------------------
# gesummv: y = alpha*A*x + beta*B*x
# ---------------------------------------------------------------------------

_GESUMMV_DECLS = """
double A[N][N];
double B[N][N];
double tmp[N];
double x[N];
double y[N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = (double)(i % 9) / 9.0;
    for (j = 0; j < N; j++) {
      A[i][j] = (double)(i * j % 7) / 7.0;
      B[i][j] = (double)(i * j % 11) / 11.0;
    }
  }
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + y[i] * (double)(i % 3 + 1);
  print_double(acc);
  return 0;
}
"""

_GESUMMV_KERNEL_SEQ = """
void kernel() {
  int i, j;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = 1.5 * tmp[i] + 1.2 * y[i];
  }
}
"""

_GESUMMV_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++) {
      tmp[i] = 0.0;
      y[i] = 0.0;
      for (int j = 0; j < N; j++) {
        tmp[i] = A[i][j] * x[j] + tmp[i];
        y[i] = B[i][j] * x[j] + y[i];
      }
      y[i] = 1.5 * tmp[i] + 1.2 * y[i];
    }
  }
}
"""

# Manual version: the programmer parallelized the inner products per row
# but kept a sequential final combine (a common conservative pattern).
_GESUMMV_KERNEL_MANUAL = """
void kernel() {
  int i;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++) {
      tmp[i] = 0.0;
      y[i] = 0.0;
      for (int j = 0; j < N; j++)
        tmp[i] = A[i][j] * x[j] + tmp[i];
    }
  }
  for (i = 0; i < N; i++) {
    int j;
    for (j = 0; j < N; j++)
      y[i] = B[i][j] * x[j] + y[i];
    y[i] = 1.5 * tmp[i] + 1.2 * y[i];
  }
}
"""

register(Benchmark(
    name="gesummv",
    sequential_source=_GESUMMV_KERNEL_SEQ + _GESUMMV_DECLS,
    reference_source=_GESUMMV_KERNEL_REF + _GESUMMV_DECLS,
    manual_source=_GESUMMV_KERNEL_MANUAL + _GESUMMV_DECLS,
    collab_source=_GESUMMV_KERNEL_REF + _GESUMMV_DECLS,
    defines={"N": "48"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=2,
))

# ---------------------------------------------------------------------------
# mvt: x1 += A*y1 ; x2 += A'*y2
# ---------------------------------------------------------------------------

_MVT_DECLS = """
double A[N][N];
double x1[N];
double x2[N];
double y1[N];
double y2[N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    x1[i] = (double)(i % 7) / 7.0;
    x2[i] = (double)(i % 13) / 13.0;
    y1[i] = (double)(i % 5) / 5.0;
    y2[i] = (double)(i % 3) / 3.0;
    for (j = 0; j < N; j++)
      A[i][j] = (double)(i * j % 17) / 17.0;
  }
}

int main() {
  init();
  kernel();
  int i;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    acc = acc + x1[i] + x2[i] * 2.0;
  print_double(acc);
  return 0;
}
"""

_MVT_KERNEL_SEQ = """
void kernel() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}
"""

_MVT_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        x1[i] = x1[i] + A[i][j] * y1[j];
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        x2[i] = x2[i] + A[j][i] * y2[j];
  }
}
"""

# Manual version: only the first matvec was parallelized (the transposed
# one was left sequential over cache worries).
_MVT_KERNEL_MANUAL = """
void kernel() {
  int i, j;
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        x1[i] = x1[i] + A[i][j] * y1[j];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}
"""

register(Benchmark(
    name="mvt",
    sequential_source=_MVT_KERNEL_SEQ + _MVT_DECLS,
    reference_source=_MVT_KERNEL_REF + _MVT_DECLS,
    manual_source=_MVT_KERNEL_MANUAL + _MVT_DECLS,
    collab_source=_MVT_KERNEL_REF + _MVT_DECLS,
    defines={"N": "48"},
    programmer_parallelized=1,
    is_collab_case=True,
    collab_edit_loc=2,
))

# ---------------------------------------------------------------------------
# syrk: C = alpha*A*A' + beta*C
# ---------------------------------------------------------------------------

_SYRK_DECLS = """
double A[N][M];
double C[N][N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++)
      A[i][j] = (double)(i * j % 9) / 9.0;
    for (j = 0; j < N; j++)
      C[i][j] = (double)(i * j % 5) / 5.0;
  }
}

int main() {
  init();
  kernel();
  int i, j;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      acc = acc + C[i][j];
  print_double(acc);
  return 0;
}
"""

_SYRK_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      C[i][j] = C[i][j] * 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < M; k++)
        C[i][j] = C[i][j] + 1.5 * A[i][k] * A[j][k];
}
"""

_SYRK_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        C[i][j] = C[i][j] * 1.2;
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        for (int k = 0; k < M; k++)
          C[i][j] = C[i][j] + 1.5 * A[i][k] * A[j][k];
  }
}
"""

register(Benchmark(
    name="syrk",
    sequential_source=_SYRK_KERNEL_SEQ + _SYRK_DECLS,
    reference_source=_SYRK_KERNEL_REF + _SYRK_DECLS,
    defines={"N": "16", "M": "16"},
    programmer_parallelized=1,
))

# ---------------------------------------------------------------------------
# syr2k: C = alpha*A*B' + alpha*B*A' + beta*C
# ---------------------------------------------------------------------------

_SYR2K_DECLS = """
double A[N][M];
double B[N][M];
double C[N][N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      A[i][j] = (double)(i * j % 9) / 9.0;
      B[i][j] = (double)(i * j % 7) / 7.0;
    }
    for (j = 0; j < N; j++)
      C[i][j] = (double)(i * j % 5) / 5.0;
  }
}

int main() {
  init();
  kernel();
  int i, j;
  double acc = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      acc = acc + C[i][j] * (double)(i % 2 + 1);
  print_double(acc);
  return 0;
}
"""

_SYR2K_KERNEL_SEQ = """
void kernel() {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      C[i][j] = C[i][j] * 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < M; k++)
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[j][k] + 1.5 * B[i][k] * A[j][k];
}
"""

_SYR2K_KERNEL_REF = """
void kernel() {
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        C[i][j] = C[i][j] * 1.2;
  }
  #pragma omp parallel
  {
    #pragma omp for schedule(static) nowait
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        for (int k = 0; k < M; k++)
          C[i][j] = C[i][j] + 1.5 * A[i][k] * B[j][k] + 1.5 * B[i][k] * A[j][k];
  }
}
"""

register(Benchmark(
    name="syr2k",
    sequential_source=_SYR2K_KERNEL_SEQ + _SYR2K_DECLS,
    reference_source=_SYR2K_KERNEL_REF + _SYR2K_DECLS,
    defines={"N": "14", "M": "14"},
    programmer_parallelized=1,
))
