"""The PolyBench benchmark registry (the paper's 16-benchmark subset).

Each :class:`Benchmark` carries the sequential mini-C source, the
hand-written OpenMP *reference* source (pragmas placed where Polly
parallelizes, per §5.1.2), dataset-size defines (miniaturized so the
IR interpreter finishes in seconds), and bookkeeping for Table 3 /
Figure 9 (the programmer-parallelized loop counts and, for the seven
collaboration benchmarks, a manually-parallelized variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Benchmark:
    name: str
    sequential_source: str
    reference_source: str
    defines: Dict[str, str]
    kernel_functions: List[str] = field(default_factory=lambda: ["kernel"])
    # Table 3 bookkeeping (programmer column reconstructed from the
    # Cavazos-lab PolyBench OpenMP versions; see DESIGN.md).
    programmer_parallelized: int = 0
    manual_source: Optional[str] = None        # Fig 9 manual-only variant
    collab_source: Optional[str] = None        # Fig 9 SPLENDID + manual edits
    collab_edit_loc: int = 0                   # Fig 9 bar annotations
    is_collab_case: bool = False

    def __repr__(self) -> str:
        return f"<Benchmark {self.name}>"


_REGISTRY: Dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get(name: str) -> Benchmark:
    _ensure_loaded()
    return _REGISTRY[name]


def names() -> List[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def all_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def collab_benchmarks() -> List[Benchmark]:
    return [b for b in all_benchmarks() if b.is_collab_case]


# ---------------------------------------------------------------------------
# Fission demonstration kernels
#
# Solver-style kernels whose single mixed loop the plain DOALL test
# rejects wholesale, but the fission pipeline partially parallelizes.
# They live in their own registry so the paper's 16-benchmark tables
# (Figures 6-9, Tables 3-4) are unaffected; the fission report and the
# fission speedup benchmark iterate this set.
# ---------------------------------------------------------------------------

_FISSION_REGISTRY: Dict[str, Benchmark] = {}


def register_fission(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _FISSION_REGISTRY:
        raise ValueError(f"duplicate fission benchmark {benchmark.name!r}")
    _FISSION_REGISTRY[benchmark.name] = benchmark
    return benchmark


def get_fission(name: str) -> Benchmark:
    _ensure_loaded()
    return _FISSION_REGISTRY[name]


def fission_benchmarks() -> List[Benchmark]:
    _ensure_loaded()
    return list(_FISSION_REGISTRY.values())


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        from . import (kernels_fission, kernels_linalg,  # noqa: F401
                       kernels_solver, kernels_stencil)
        _loaded = True
