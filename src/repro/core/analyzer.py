"""Parallel Semantic Analyzer (§4.1.1).

Collects the OpenMP runtime calls and recovers the structure of each
outlined parallel region: which function is the microtask, where the
worksharing init/fini calls are, which stack slots carry the bounds,
what the original (sequential) bounds were, and which schedule the
runtime parameters encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.induction import CountedLoop, analyze_counted_loop
from ..analysis.loops import Loop
from ..analysis.manager import (AnalysisManager, get_loop_info,
                                register_module_analysis)
from ..ir.instructions import (Alloca, Call, Instruction, Load, Store)
from ..ir.module import Function, Module
from ..ir.values import Argument, ConstantInt, Value
from ..polly.runtime_decls import BARRIER, FORK_CALL, STATIC_FINI, STATIC_INIT


class ParallelAnalysisError(Exception):
    pass


@dataclass
class MicrotaskInfo:
    """Everything the detransformer needs about one outlined region."""

    function: Function
    init_call: Call
    fini_call: Call
    loop: Loop
    counted: CountedLoop
    lb_slot: Alloca
    ub_slot: Alloca
    lb_source: Value                 # value stored to the slot BEFORE init
    ub_source: Value                 # (these are the sequential bounds)
    thread_loads: Dict[Value, Value] = field(default_factory=dict)
    schedule: str = "static"
    chunk: Optional[int] = None
    nowait: bool = True

    @property
    def shared_params(self) -> List[Argument]:
        return list(self.function.arguments[4:])


@dataclass
class ForkSite:
    call: Call
    microtask: Function
    lb_arg: Value
    ub_arg: Value
    shared_args: List[Value]


def find_fork_sites(function: Function) -> List[ForkSite]:
    sites = []
    for inst in function.instructions():
        if isinstance(inst, Call) and inst.callee_name == FORK_CALL:
            args = inst.args
            microtask = args[0]
            if not isinstance(microtask, Function):
                raise ParallelAnalysisError(
                    "fork call without a direct microtask reference")
            sites.append(ForkSite(inst, microtask, args[1], args[2],
                                  list(args[3:])))
    return sites


def _slot_of(pointer: Value) -> Alloca:
    if not isinstance(pointer, Alloca):
        raise ParallelAnalysisError(
            f"worksharing bound is not a stack slot: {pointer}")
    return pointer


def _stored_before(slot: Alloca, before: Call) -> Value:
    """The value stored to ``slot`` before the init call — the paper's
    'loop parameters ... used as arguments for the initialization call'."""
    block = before.parent
    init_index = block.index_of(before)
    stored: Optional[Value] = None
    for user in slot.users:
        if isinstance(user, Store) and user.pointer is slot:
            if user.parent is block and block.index_of(user) < init_index:
                stored = user.value
    if stored is None:
        raise ParallelAnalysisError("no pre-init store of the loop bound")
    return stored


def _loads_after(slot: Alloca, after: Call) -> List[Load]:
    block = after.parent
    init_index = block.index_of(after)
    loads = []
    for user in slot.users:
        if isinstance(user, Load) and user.parent is block \
                and block.index_of(user) > init_index:
            loads.append(user)
    return loads


def analyze_microtask(microtask: Function,
                      analysis_manager: Optional[AnalysisManager] = None
                      ) -> MicrotaskInfo:
    """Recover the parallel-region structure of one outlined function."""
    init_call: Optional[Call] = None
    fini_call: Optional[Call] = None
    saw_barrier = False
    for inst in microtask.instructions():
        if isinstance(inst, Call):
            if inst.callee_name == STATIC_INIT:
                init_call = inst
            elif inst.callee_name == STATIC_FINI:
                fini_call = inst
            elif inst.callee_name == BARRIER:
                saw_barrier = True
    if init_call is None or fini_call is None:
        raise ParallelAnalysisError(
            f"@{microtask.name}: missing worksharing init/fini calls")

    sched_arg = init_call.args[2]
    schedule, chunk = "static", None
    if isinstance(sched_arg, ConstantInt):
        if sched_arg.value == 33:
            schedule = "static"
            chunk_arg = init_call.args[7]
            if isinstance(chunk_arg, ConstantInt):
                chunk = chunk_arg.value
        elif sched_arg.value == 35:
            schedule = "dynamic"
            chunk_arg = init_call.args[7]
            if isinstance(chunk_arg, ConstantInt) and chunk_arg.value > 1:
                chunk = chunk_arg.value

    lb_slot = _slot_of(init_call.args[3])
    ub_slot = _slot_of(init_call.args[4])
    lb_source = _stored_before(lb_slot, init_call)
    ub_source = _stored_before(ub_slot, init_call)

    info_loads: Dict[Value, Value] = {}
    for load in _loads_after(lb_slot, init_call):
        info_loads[load] = lb_source
    for load in _loads_after(ub_slot, init_call):
        info_loads[load] = ub_source

    # The parallelized loop lies between the init and fini calls.
    loop_info = get_loop_info(microtask, analysis_manager)
    if len(loop_info.top_level) != 1:
        raise ParallelAnalysisError(
            f"@{microtask.name}: expected exactly one worksharing loop, "
            f"found {len(loop_info.top_level)}")
    loop = loop_info.top_level[0]
    counted = analyze_counted_loop(loop)
    if counted is None:
        raise ParallelAnalysisError(
            f"@{microtask.name}: worksharing loop is not counted")

    return MicrotaskInfo(
        function=microtask, init_call=init_call, fini_call=fini_call,
        loop=loop, counted=counted, lb_slot=lb_slot, ub_slot=ub_slot,
        lb_source=lb_source, ub_source=ub_source, thread_loads=info_loads,
        schedule=schedule, chunk=chunk, nowait=not saw_barrier)


def outlined_functions(module: Module) -> List[Function]:
    """Microtasks = functions referenced by fork calls (pattern-matched,
    not trusted from flags)."""
    result: List[Function] = []
    for function in module.defined_functions():
        for site in find_fork_sites(function):
            if site.microtask not in result:
                result.append(site.microtask)
    return result


# Module-level analysis: lets consumers holding an AnalysisManager share
# the fork-site scan (`am.get_module("outlined-functions", module)`).
register_module_analysis("outlined-functions",
                         lambda module, am: outlined_functions(module))
