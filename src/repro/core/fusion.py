"""AST-level loop re-fusion — the decompile-side half of loop fission.

The fission driver (:mod:`repro.polly.fission`) distributes a mixed loop
so its clean statement groups can be parallelized.  When a sub-loop ends
up parallel, the distributed shape *is* the natural source form (it is
exactly what a programmer writes to expose the parallelism: a pragma'd
loop next to the sequential remainder).  But when a sub-loop stays
sequential — the parallelizer rejected it after the split, or the module
is decompiled without parallelization — the fission seam is compiler
noise, and SPLENDID's de-transformation contract says emitted C should
read like the source the programmer would have written.  This pass
re-fuses those seams on the way out.

The contract, precisely:

* Only loop pairs the fission pass itself produced are candidates: the
  emitter tags every counted ``for`` with the IR header name it came
  from, and a pair fuses only when the second tag is the first tag plus
  a ``.dist`` suffix chain (the name :func:`distribute_loop` gives the
  split-off loop).  Programmer-written adjacent loops are never touched.
* Both loops must be pragma-free (a parallelized sub-loop keeps its
  distributed shape), share identical bounds/step up to induction-
  variable renaming, and have flat bodies of pure array assignments.
* Fusion is refused when any colliding access pair would have the
  first loop's access land at a *later* iteration than the second
  loop's (distance ``d = i1 - i2 > 0``): those are exactly the orders
  that running loop 1 to completion first made legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.dependence import PURE_MATH_FUNCTIONS
from ..minic import c_ast as ast

_DIST_SUFFIX = ".dist"

#: Compound-assignment operators that read *and* write their target.
_COMPOUND_ASSIGN = frozenset({"+=", "-=", "*=", "/="})


def _is_fission_successor(first: ast.For, second: ast.For) -> bool:
    """True when ``second`` is a ``.dist``-chain descendant of ``first``
    (i.e. both came out of the same fissioned source loop)."""
    a = getattr(first, "ir_header", None)
    b = getattr(second, "ir_header", None)
    if not a or not b or not b.startswith(a):
        return False
    rest = b[len(a):]
    if not rest or len(rest) % len(_DIST_SUFFIX) != 0:
        return False
    return rest == _DIST_SUFFIX * (len(rest) // len(_DIST_SUFFIX))


# ---------------------------------------------------------------------------
# Loop shape


@dataclass
class _Shape:
    iv: str
    start: ast.Expr
    cmp_op: str
    bound: ast.Expr
    step_delta: int


def _loop_shape(loop: ast.For) -> Optional[_Shape]:
    init, cond, step = loop.init, loop.condition, loop.step
    if not (isinstance(init, ast.ExprStmt)
            and isinstance(init.expr, ast.Assign) and init.expr.op == "="
            and isinstance(init.expr.target, ast.Ident)):
        return None
    iv = init.expr.target.name
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.lhs, ast.Ident) and cond.lhs.name == iv):
        return None
    delta = _step_delta(step, iv)
    if delta is None:
        return None
    return _Shape(iv, init.expr.value, cond.op, cond.rhs, delta)


def _step_delta(step: Optional[ast.Expr], iv: str) -> Optional[int]:
    if isinstance(step, ast.Unary) and step.op in ("++", "--") \
            and isinstance(step.operand, ast.Ident) \
            and step.operand.name == iv:
        return 1 if step.op == "++" else -1
    if isinstance(step, ast.Assign) and step.op == "=" \
            and isinstance(step.target, ast.Ident) \
            and step.target.name == iv \
            and isinstance(step.value, ast.Binary) \
            and step.value.op in ("+", "-") \
            and isinstance(step.value.lhs, ast.Ident) \
            and step.value.lhs.name == iv \
            and isinstance(step.value.rhs, ast.IntLit):
        return step.value.rhs.value if step.value.op == "+" \
            else -step.value.rhs.value
    return None


def _expr_equal(a: ast.Expr, b: ast.Expr,
                rename: Optional[Dict[str, str]] = None) -> bool:
    """Structural expression equality (``rename`` maps b-side identifier
    names onto a-side names before comparing)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Ident):
        return a.name == (rename or {}).get(b.name, b.name)
    if isinstance(a, ast.IntLit):
        return a.value == b.value and a.suffix == b.suffix
    if isinstance(a, ast.FloatLit):
        return a.value == b.value
    if isinstance(a, ast.Unary):
        return a.op == b.op and a.postfix == b.postfix \
            and _expr_equal(a.operand, b.operand, rename)
    if isinstance(a, ast.Binary):
        return a.op == b.op and _expr_equal(a.lhs, b.lhs, rename) \
            and _expr_equal(a.rhs, b.rhs, rename)
    if isinstance(a, ast.Index):
        return _expr_equal(a.base, b.base, rename) \
            and _expr_equal(a.index, b.index, rename)
    if isinstance(a, ast.CastExpr):
        return a.ctype == b.ctype and _expr_equal(a.operand, b.operand, rename)
    if isinstance(a, ast.CallExpr):
        return a.callee == b.callee and len(a.args) == len(b.args) \
            and all(_expr_equal(x, y, rename)
                    for x, y in zip(a.args, b.args))
    return False


# ---------------------------------------------------------------------------
# Body legality and memory accesses


@dataclass
class _Access:
    base: str
    indices: List[ast.Expr]
    is_write: bool


def _flatten_index(expr: ast.Index) -> Optional[Tuple[str, List[ast.Expr]]]:
    indices: List[ast.Expr] = []
    node: ast.Expr = expr
    while isinstance(node, ast.Index):
        indices.append(node.index)
        node = node.base
    if not isinstance(node, ast.Ident):
        return None
    indices.reverse()
    return node.name, indices


def _collect_reads(expr: ast.Expr, iv: str,
                   accesses: List[_Access],
                   scalars: List[str]) -> bool:
    """Record array reads / scalar reads under ``expr``; False when the
    expression is not provably pure."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return True
    if isinstance(expr, ast.Ident):
        if expr.name != iv:
            scalars.append(expr.name)
        return True
    if isinstance(expr, ast.Index):
        flat = _flatten_index(expr)
        if flat is None:
            return False
        base, indices = flat
        accesses.append(_Access(base, indices, is_write=False))
        return all(_collect_reads(ix, iv, accesses, scalars)
                   for ix in indices)
    if isinstance(expr, ast.Unary):
        if expr.op in ("-", "+", "!", "~"):
            return _collect_reads(expr.operand, iv, accesses, scalars)
        return False
    if isinstance(expr, ast.Binary):
        return _collect_reads(expr.lhs, iv, accesses, scalars) \
            and _collect_reads(expr.rhs, iv, accesses, scalars)
    if isinstance(expr, ast.CastExpr):
        return _collect_reads(expr.operand, iv, accesses, scalars)
    if isinstance(expr, ast.CallExpr):
        if expr.callee not in PURE_MATH_FUNCTIONS:
            return False
        return all(_collect_reads(arg, iv, accesses, scalars)
                   for arg in expr.args)
    return False


def _body_stmts(body: ast.Stmt) -> Optional[List[ast.Stmt]]:
    if isinstance(body, ast.Compound):
        if body.pragmas:
            return None
        return list(body.body)
    return [body]


def _body_accesses(stmts: List[ast.Stmt], iv: str
                   ) -> Optional[Tuple[List[_Access], List[str]]]:
    """Validate a flat loop body (pure array assignments only) and return
    its memory accesses plus the scalar names it reads."""
    accesses: List[_Access] = []
    scalars: List[str] = []
    for stmt in stmts:
        if not isinstance(stmt, ast.ExprStmt):
            return None
        assign = stmt.expr
        if not isinstance(assign, ast.Assign):
            return None
        if assign.op != "=" and assign.op not in _COMPOUND_ASSIGN:
            return None
        if not isinstance(assign.target, ast.Index):
            return None  # scalar writes would need their own dependence story
        flat = _flatten_index(assign.target)
        if flat is None:
            return None
        base, indices = flat
        accesses.append(_Access(base, indices, is_write=True))
        if assign.op in _COMPOUND_ASSIGN:
            accesses.append(_Access(base, indices, is_write=False))
        for ix in indices:
            if not _collect_reads(ix, iv, accesses, scalars):
                return None
        if not _collect_reads(assign.value, iv, accesses, scalars):
            return None
    return accesses, scalars


# ---------------------------------------------------------------------------
# Affine forms and the fusion dependence test


def _affine(expr: ast.Expr, iv: str
            ) -> Optional[Tuple[int, int, Tuple[Tuple[str, int], ...]]]:
    """``expr`` as ``iv_coeff * iv + const + sum(sym_coeff * sym)``."""
    if isinstance(expr, ast.IntLit):
        return 0, expr.value, ()
    if isinstance(expr, ast.Ident):
        if expr.name == iv:
            return 1, 0, ()
        return 0, 0, ((expr.name, 1),)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _affine(expr.operand, iv)
        if inner is None:
            return None
        c, k, syms = inner
        return -c, -k, tuple((n, -s) for n, s in syms)
    if isinstance(expr, ast.CastExpr):
        return _affine(expr.operand, iv)
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        lhs = _affine(expr.lhs, iv)
        rhs = _affine(expr.rhs, iv)
        if lhs is None or rhs is None:
            return None
        sign = 1 if expr.op == "+" else -1
        merged: Dict[str, int] = dict(lhs[2])
        for name, coeff in rhs[2]:
            merged[name] = merged.get(name, 0) + sign * coeff
        syms = tuple(sorted((n, c) for n, c in merged.items() if c))
        return lhs[0] + sign * rhs[0], lhs[1] + sign * rhs[1], syms
    if isinstance(expr, ast.Binary) and expr.op == "*":
        for factor, other in ((expr.lhs, expr.rhs), (expr.rhs, expr.lhs)):
            if isinstance(factor, ast.IntLit):
                inner = _affine(other, iv)
                if inner is None:
                    return None
                c, k, syms = inner
                m = factor.value
                return c * m, k * m, tuple((n, s * m) for n, s in syms)
        return None
    return None


def _pair_blocks_fusion(a: _Access, iv1: str,
                        b: _Access, iv2: str) -> bool:
    """True when the (loop-1 access, loop-2 access) pair forbids fusion.

    Collisions are solved per dimension for the iteration distance
    ``d = i1 - i2``.  Fusion preserves the original order for ``d <= 0``
    (the loop-1 access still executes first); any realizable ``d > 0``
    — or a pair we cannot analyze — blocks the fusion.
    """
    if len(a.indices) != len(b.indices):
        return True  # shapes we cannot compare: be conservative
    distance: Optional[int] = None
    constrained = False
    for ia, ib in zip(a.indices, b.indices):
        fa = _affine(ia, iv1)
        fb = _affine(ib, iv2)
        if fa is None or fb is None:
            return True
        c1, k1, s1 = fa
        c2, k2, s2 = fb
        if s1 != s2 or c1 != c2:
            return True  # incomparable symbolic parts: conservative
        if c1 == 0:
            if k1 != k2:
                return False  # this dimension never collides
            continue
        delta = k2 - k1
        if delta % c1 != 0:
            return False  # no integer iteration distance: no collision
        d = delta // c1
        if constrained and d != distance:
            return False  # dimensions demand different distances
        distance, constrained = d, True
    if not constrained:
        return True  # same element every iteration: d > 0 collisions exist
    return distance > 0


def _fusion_legal(body1: List[ast.Stmt], iv1: str,
                  body2: List[ast.Stmt], iv2: str) -> bool:
    acc1 = _body_accesses(body1, iv1)
    acc2 = _body_accesses(body2, iv2)
    if acc1 is None or acc2 is None:
        return False
    accesses1, scalars1 = acc1
    accesses2, scalars2 = acc2
    # Bodies only ever write array elements, so scalar reads are loop
    # invariant — but the second body must not read the first loop's IV
    # as a stray scalar (it would alias the renamed IV), and vice versa.
    if iv1 in scalars2 or iv2 in scalars1:
        return False
    for a in accesses1:
        for b in accesses2:
            if a.base != b.base:
                continue
            if not (a.is_write or b.is_write):
                continue
            if _pair_blocks_fusion(a, iv1, b, iv2):
                return False
    return True


# ---------------------------------------------------------------------------
# The rewrite


def _rename_ident(expr: ast.Expr, old: str, new: str) -> None:
    for node in ast.walk_exprs(expr):
        if isinstance(node, ast.Ident) and node.name == old:
            node.name = new


def _ident_count(root, name: str) -> int:
    """Occurrences of ``name`` as an identifier anywhere under ``root``
    (a statement or expression)."""
    return sum(1 for node in ast.walk_exprs(root)
               if isinstance(node, ast.Ident) and node.name == name)


def _try_fuse(first: ast.For, second: ast.For,
              function_body: ast.Stmt,
              dead_ivs: List[str]) -> bool:
    if first.pragmas or second.pragmas:
        return False
    if not _is_fission_successor(first, second):
        return False
    shape1 = _loop_shape(first)
    shape2 = _loop_shape(second)
    if shape1 is None or shape2 is None:
        return False
    rename = {shape2.iv: shape1.iv} if shape2.iv != shape1.iv else None
    if shape1.cmp_op != shape2.cmp_op \
            or shape1.step_delta != shape2.step_delta \
            or not _expr_equal(shape1.start, shape2.start, rename) \
            or not _expr_equal(shape1.bound, shape2.bound, rename):
        return False
    body1 = _body_stmts(first.body)
    body2 = _body_stmts(second.body)
    if body1 is None or body2 is None:
        return False
    if any(isinstance(s, ast.For) and s.pragmas
           for s in body1 + body2):
        return False
    if not _fusion_legal(body1, shape1.iv, body2, shape2.iv):
        return False
    if rename:
        # The second IV must die with its loop: any other use in the
        # function would observe a value the fused loop never computes.
        if _ident_count(function_body, shape2.iv) \
                != _ident_count(second, shape2.iv):
            return False
        for stmt in body2:
            if isinstance(stmt, ast.ExprStmt):
                _rename_ident(stmt.expr, shape2.iv, shape1.iv)
        dead_ivs.append(shape2.iv)
    first.body = ast.Compound(body1 + body2)
    return True


def refuse_adjacent_loops(definition: ast.FunctionDef) -> int:
    """Re-fuse fission seams in one decompiled function.

    Walks every compound statement and fuses adjacent ``for`` pairs the
    fission pass produced whenever the merge is provably order
    preserving.  Returns the number of pairs fused.
    """
    if definition.body is None:
        return 0
    fused = 0
    dead_ivs: List[str] = []
    for stmt in ast.walk_stmts(definition.body):
        if not isinstance(stmt, ast.Compound):
            continue
        i = 0
        while i + 1 < len(stmt.body):
            a, b = stmt.body[i], stmt.body[i + 1]
            if isinstance(a, ast.For) and isinstance(b, ast.For) \
                    and _try_fuse(a, b, definition.body, dead_ivs):
                stmt.body.pop(i + 1)
                fused += 1
                continue  # a may now chain with the next .dist sibling
            i += 1
    _prune_dead_declarations(definition.body, dead_ivs)
    return fused


def _prune_dead_declarations(body: ast.Stmt, dead_ivs: List[str]) -> None:
    """Drop the (now unused) declarations of renamed second-loop IVs."""
    for name in dead_ivs:
        if _ident_count(body, name):
            continue
        for stmt in ast.walk_stmts(body):
            if isinstance(stmt, ast.Compound):
                stmt.body[:] = [
                    s for s in stmt.body
                    if not (isinstance(s, ast.Declaration)
                            and s.name == name and s.init is None
                            and not s.array_dims)]
