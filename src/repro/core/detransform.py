"""Parallel Region Detransformer + Loop Inliner (§4.1.2, §3.4).

For each ``__kmpc_fork_call`` site this module:

1. restores the parallelized loop's parameters — the thread-local
   ``lb``/``ub`` loads are replaced by the *sequential* bounds that were
   stored to the slots before the init call, which themselves map back
   to the fork-call arguments in the caller;
2. removes every parallelization setup instruction (allocas, stores,
   the init/fini calls, the chunk-nonempty guard) by never emitting
   them;
3. inlines the loop into the sequential code region, substituting the
   fork-call arguments for the outlined function's parameters (this is
   also how argB inherits the caller name B, §3.4);
4. wraps the restored loop in the pragmas chosen by the Pragma
   Generator.

The result is a statement list the decompilation engine splices in
place of the fork call.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..decompilers.engine import FunctionEmitter, _LoopContext
from ..ir.instructions import Call, Instruction
from ..ir.values import Value
from ..minic import c_ast as ast
from .analyzer import (ForkSite, MicrotaskInfo, ParallelAnalysisError,
                       analyze_microtask)
from .pragma_gen import pragmas_for_region


class DetransformError(Exception):
    pass


def translate_fork_call(caller: FunctionEmitter, call: Call,
                        info_cache: Dict[str, MicrotaskInfo]) -> List[ast.Stmt]:
    """Produce the OpenMP-C statements replacing one fork call."""
    microtask = call.args[0]
    info = info_cache.get(microtask.name)
    if info is None:
        info = analyze_microtask(
            microtask,
            analysis_manager=getattr(caller.module_ctx, "analysis", None))
        info_cache[microtask.name] = info

    # --- Loop Inliner: params <- fork-call arguments (in caller exprs).
    overrides: Dict[Value, ast.Expr] = {}
    lb_expr = caller.expr(call.args[1])
    ub_expr = caller.expr(call.args[2])
    overrides[microtask.arguments[2]] = lb_expr
    overrides[microtask.arguments[3]] = ub_expr
    for param, arg in zip(info.shared_params, call.args[3:]):
        overrides[param] = caller.expr(arg)

    # --- Loop Parameter Restoration: thread-local bound loads map back
    # to the sequential bounds (which are the lb/ub params, substituted
    # above to the caller expressions).
    for load, source in info.thread_loads.items():
        target = overrides.get(source)
        if target is None:
            target = lb_expr if source is info.lb_source else ub_expr
        overrides[load] = target

    # Width adjustments of the restored bounds (trunc/sext of the loads)
    # carry the same restored expression.
    from ..ir.instructions import Cast
    for inst in info.function.instructions():
        if isinstance(inst, Cast) and inst.opcode in ("sext", "zext",
                                                      "trunc") \
                and inst.value in overrides:
            overrides[inst] = overrides[inst.value]

    child = FunctionEmitter(info.function, caller.options, caller.module_ctx,
                            expr_overrides=overrides, names=caller.names)

    # Use the child's own Loop object (its LoopInfo re-discovers the
    # forest): identity matters for the emitter's "is this my own
    # header?" checks.
    counted = child._counted_plan.get(info.loop.header)
    if counted is None:
        raise DetransformError(
            f"@{info.function.name}: worksharing loop is not "
            "for-constructible")

    ctx = _LoopContext(counted.loop, counted.loop.unique_exit, None)

    # Non-IV header phis (e.g. rotation's merge phis over hoisted header
    # computations) receive their loop-entry value from the microtask's
    # entry block, which is never emitted; synthesize the initializing
    # assignments explicitly.
    loop = counted.loop
    entry_preds = [p for p in loop.header.predecessors
                   if p not in loop.blocks]
    init_stmts: List[ast.Stmt] = []
    if len(entry_preds) == 1:
        for phi in loop.header_phis():
            if phi is counted.phi or phi in child.skip:
                continue
            incoming = phi.incoming_for(entry_preds[0])
            if incoming is None:
                continue
            name = child.declare_top(phi)
            init_stmts.append(ast.ExprStmt(ast.Assign(
                "=", ast.Ident(name), child.expr(incoming))))

    for_stmt = child.emit_for_loop(counted, ctx)
    if not isinstance(for_stmt, ast.For):
        raise DetransformError("expected a for loop from the detransformer")

    # The induction variable's earliest definition is inside the parallel
    # region, so declare it in the for-init: that makes it private without
    # a `private` clause (§4.1.3's clause minimization).
    iv_name: Optional[str] = None
    if isinstance(for_stmt.init, ast.ExprStmt) \
            and isinstance(for_stmt.init.expr, ast.Assign) \
            and isinstance(for_stmt.init.expr.target, ast.Ident):
        assign = for_stmt.init.expr
        iv_name = assign.target.name
        iv_decl = child.top_decls.get(iv_name)
        if iv_decl is not None:
            for_stmt.init = ast.Declaration(iv_decl.ctype, iv_name,
                                            init=assign.value)

    # Other hoisted declarations from the region (temporaries, privates)
    # surface inside the parallel region, keeping them private.
    region_decls = [decl for name, decl in child.top_decls.items()
                    if name != iv_name and name not in caller.top_decls]

    # --- Pragma Generation.
    region_pragma, loop_pragma = pragmas_for_region(info)

    # Reduction clauses (§7 extension): reassociable chains in the
    # worksharing loop decompile to `reduction(op: var)`, named with the
    # same expressions the emitted body uses.
    from ..analysis.reduction import find_reductions
    from ..minic.printer import format_expr
    reductions = find_reductions(counted)
    if reductions:
        symbols = {r.symbol for r in reductions}
        if len(symbols) == 1:
            import re
            names = []
            for reduction in reductions:
                target = child.lvalue(reduction.store.pointer)
                rendered = format_expr(target)
                if rendered not in names:
                    names.append(rendered)
            # OpenMP reduction list items must be variables; reductions
            # into non-identifier lvalues (e.g. *q_idx inside an outer
            # loop) stay clause-less — the accumulation is still exact in
            # this repo's runtime, which shares the target by reference.
            if all(re.fullmatch(r"[A-Za-z_]\w*", n) for n in names):
                loop_pragma.reduction = (symbols.pop(), tuple(names))

    for_stmt.pragmas = [loop_pragma]
    region = ast.Compound(region_decls + init_stmts + [for_stmt])
    region.pragmas = [region_pragma]
    _restore_scoped_names(caller, child, region, iv_name, region_decls)
    return [region]


def _restore_scoped_names(caller: FunctionEmitter, child: FunctionEmitter,
                          region: ast.Compound, iv_name: Optional[str],
                          region_decls) -> None:
    """Undo allocator uniquification for region-scoped variables.

    Each parallel region declares its induction variable and temporaries
    in its own scope, so `i1`/`j2`-style names (uniquified because other
    regions' variables took `i`/`j` in the shared allocator) can safely
    revert to their source names — unless that name already appears in
    the region with another meaning.
    """
    scoped = {decl.name for decl in region_decls}
    if iv_name is not None:
        scoped.add(iv_name)

    desired: Dict[str, str] = {}
    for value, current in child.names.assigned.items():
        if current not in scoped:
            continue
        source = caller.module_ctx.source_names.get(value)
        if not source:
            continue
        from ..decompilers.naming import sanitize_identifier
        target = sanitize_identifier(source)
        if target != current:
            desired.setdefault(current, target)

    if not desired:
        return

    # Names already visible in the region (any identifier not being
    # renamed) must not be captured.
    used = set()
    for expr in ast.walk_exprs(region):
        if isinstance(expr, ast.Ident):
            used.add(expr.name)
    for stmt in ast.walk_stmts(region):
        if isinstance(stmt, ast.Declaration):
            used.add(stmt.name)

    renames: Dict[str, str] = {}
    for current, target in desired.items():
        if target in used or target in renames.values():
            continue
        renames[current] = target

    if not renames:
        return
    for expr in ast.walk_exprs(region):
        if isinstance(expr, ast.Ident) and expr.name in renames:
            expr.name = renames[expr.name]
    for stmt in ast.walk_stmts(region):
        if isinstance(stmt, ast.Declaration) and stmt.name in renames:
            stmt.name = renames[stmt.name]
        if isinstance(stmt, ast.For) and isinstance(stmt.init,
                                                    ast.Declaration) \
                and stmt.init.name in renames:
            stmt.init.name = renames[stmt.init.name]
        if isinstance(stmt, ast.For) and stmt.pragmas:
            for pragma in stmt.pragmas:
                if pragma.reduction is not None:
                    op, names = pragma.reduction
                    pragma.reduction = (op, tuple(
                        renames.get(n, n) for n in names))
                pragma.private = tuple(
                    renames.get(n, n) for n in pragma.private)
