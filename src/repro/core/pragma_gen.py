"""Pragma Generator (§4.1.3).

Maps runtime-call patterns to OpenMP pragmas, choosing the most
performing legal translation: a static-init/fini pair with no barrier
becomes ``#pragma omp for schedule(static) nowait`` (the paper's
example of preferring the no-implicit-barrier form).  Clause use is
minimized: values first defined inside the region are declared inside
it, which makes them private without a ``private`` clause.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..minic.c_ast import OmpPragma
from .analyzer import MicrotaskInfo


def parallel_pragma(info: MicrotaskInfo,
                    private: Tuple[str, ...] = ()) -> OmpPragma:
    return OmpPragma(directive="parallel", private=private)


def worksharing_pragma(info: MicrotaskInfo) -> OmpPragma:
    pragma = OmpPragma(directive="for")
    pragma.schedule = info.schedule
    # Emit the chunk whenever the runtime init call carried one: an
    # explicit schedule(static, 1) is not the same schedule as
    # schedule(static), so chunk == 1 must survive the round trip.
    if info.chunk is not None:
        pragma.chunk = info.chunk
    pragma.nowait = info.nowait
    return pragma


def pragmas_for_region(info: MicrotaskInfo) -> Tuple[OmpPragma, OmpPragma]:
    """(region pragma, loop pragma) for one fork site."""
    return parallel_pragma(info), worksharing_pragma(info)
