"""repro.core — SPLENDID, the paper's primary contribution.

An LLVM-IR-to-C/OpenMP decompiler producing portable, natural parallel
source: parallel semantic analysis, parallel-region de-transformation
with loop-parameter restoration and inlining, pragma generation,
loop-rotation de-transformation, and debug-metadata-driven variable
renaming with conflict elimination.
"""

from .analyzer import (ForkSite, MicrotaskInfo, ParallelAnalysisError,
                       analyze_microtask, find_fork_sites,
                       outlined_functions)
from .detransform import DetransformError, translate_fork_call
from .pipeline import (DecompilationResult, Splendid, VARIANTS, decompile,
                       decompile_checked, decompile_unit, options_for)
from .pragma_gen import pragmas_for_region, parallel_pragma, worksharing_pragma
from .variables import (MostRecentDefinitions, RestorationStats,
                        VariableProposal, generate_module_names,
                        generate_variable_names, propose_variables,
                        remove_conflicts)

__all__ = [
    "ForkSite", "MicrotaskInfo", "ParallelAnalysisError",
    "analyze_microtask", "find_fork_sites", "outlined_functions",
    "DetransformError", "translate_fork_call",
    "DecompilationResult", "Splendid", "VARIANTS", "decompile",
    "decompile_checked", "decompile_unit", "options_for",
    "pragmas_for_region", "parallel_pragma", "worksharing_pragma",
    "MostRecentDefinitions", "RestorationStats", "VariableProposal",
    "generate_module_names", "generate_variable_names",
    "propose_variables", "remove_conflicts",
]
