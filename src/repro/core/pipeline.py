"""The SPLENDID decompiler pipeline and its evaluation variants.

Variants (matching §5.3's ablation):

* ``v1``       — natural control-flow construction only: structured CFG,
  for-loop construction, loop-rotation de-transformation (guard
  elimination).  Parallel runtime calls stay exposed, names are
  register-style.
* ``portable`` (a.k.a. v2) — v1 plus explicit parallelism translation:
  parallel regions are inlined back as pragma-annotated for loops, so
  the output recompiles with any OpenMP compiler.
* ``full``     — portable plus source variable renaming (Metadata
  Interpreter + Algorithms 1-2 conflict elimination).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set

from ..decompilers.engine import (DecompilerOptions, FunctionEmitter,
                                  ModuleDecompiler)
from ..ir.instructions import Call
from ..ir.module import Module
from ..minic import c_ast as ast
from .analyzer import MicrotaskInfo
from .detransform import translate_fork_call
from .variables import generate_module_groups, generate_module_names

VARIANTS = ("v1", "portable", "full")

_BASE = DecompilerOptions(
    name="splendid",
    structure_cfg=True,
    construct_for_loops=True,
    detransform_rotation=True,
    explicit_parallelism=False,
    rename_variables=False,
    naming_style="val",
    elide_widening_casts=False,
    byte_level_addressing=False,
    strip_debug_names=False,
    increment_style="compact",
    refuse_adjacent_loops=True,
)


def options_for(variant: str) -> DecompilerOptions:
    if variant == "v1":
        return replace(_BASE, name="splendid-v1")
    if variant in ("v2", "portable"):
        return replace(_BASE, name="splendid-portable",
                       explicit_parallelism=True,
                       elide_widening_casts=True,
                       rematerialize_addresses=True)
    if variant == "full":
        return replace(_BASE, name="splendid",
                       explicit_parallelism=True,
                       elide_widening_casts=True,
                       rematerialize_addresses=True,
                       rename_variables=True,
                       naming_style="source")
    raise ValueError(f"unknown SPLENDID variant {variant!r}; "
                     f"choose from {VARIANTS}")


class Splendid:
    """SPLENDID: parallel LLVM-IR -> portable, natural C/OpenMP."""

    def __init__(self, module: Module, variant: str = "full",
                 analysis_manager=None, type_source: str = "debug",
                 structurer: str = "legacy",
                 refuse_adjacent_loops: Optional[bool] = None):
        from ..analysis.manager import AnalysisManager
        if type_source not in ("debug", "recovered", "none"):
            raise ValueError(
                f"unknown type source {type_source!r}; "
                f"choose from ('debug', 'recovered', 'none')")
        if structurer not in ("legacy", "region"):
            raise ValueError(
                f"unknown structurer {structurer!r}; "
                f"choose from ('legacy', 'region')")
        self.module = module
        self.variant = variant
        self.type_source = type_source
        self.structurer = structurer
        self.options = replace(options_for(variant),
                               type_source=type_source,
                               structurer=structurer)
        if refuse_adjacent_loops is not None:
            # Case studies that *showcase* a distribution (Figure 3)
            # turn the re-fusion de-transformation off explicitly.
            self.options = replace(self.options,
                                   refuse_adjacent_loops=refuse_adjacent_loops)
        self.analysis = analysis_manager or AnalysisManager()
        self._info_cache: Dict[str, MicrotaskInfo] = {}
        # Debug metadata is an *input* only in 'debug' mode; under
        # 'recovered' it is demoted to a cross-check (the type lint) and
        # under 'none' it is ignored outright.
        use_metadata = self.options.rename_variables \
            and type_source == "debug"
        source_names = generate_module_names(module) if use_metadata else {}
        source_groups = generate_module_groups(module) if use_metadata else {}
        skip: Set[str] = set()
        translator = None
        if self.options.explicit_parallelism:
            skip = {fn.name for fn in self.analysis.get_module(
                "outlined-functions", module)}
            translator = self._translate_call
        self.decompiler = ModuleDecompiler(
            module, self.options, call_translator=translator,
            source_names=source_names, source_groups=source_groups,
            skip_functions=skip, analysis_manager=self.analysis)

    def _translate_call(self, emitter: FunctionEmitter,
                        call: Call) -> Optional[List[ast.Stmt]]:
        from ..polly.runtime_decls import FORK_CALL
        if call.callee_name != FORK_CALL:
            return None
        return translate_fork_call(emitter, call, self._info_cache)

    def decompile(self) -> ast.TranslationUnit:
        return self.decompiler.decompile()

    def decompile_text(self) -> str:
        return self.decompiler.decompile_text()

    def decompile_checked(self) -> "DecompilationResult":
        """Decompile and lint: every emitted pragma is re-proven.

        The IR-side linter verifies the parallelized module the pragmas
        are derived from; the AST-side linter then re-checks the emitted
        unit itself (for variants that translate parallelism).  Both
        reports are merged onto the result.
        """
        from ..lint import (lint_parallel_module, lint_recovered_types,
                            lint_translation_unit)
        from ..minic.printer import print_unit
        report = lint_parallel_module(self.module,
                                      analysis_manager=self.analysis)
        unit = self.decompile()
        if self.options.explicit_parallelism:
            report.extend(lint_translation_unit(unit))
        if self.type_source == "recovered":
            report.extend(lint_recovered_types(
                self.module, analysis_manager=self.analysis, unit=unit))
        return DecompilationResult(print_unit(unit), unit, report)

    def restoration_stats(self):
        """Fraction of emitted variables restored to source names (Fig 8).

        Only meaningful for the 'full' variant after decompiling.
        """
        from .variables import RestorationStats
        if not self.decompiler.decompiled:
            raise ValueError(
                "restoration_stats() called before decompile(): run "
                "decompile(), decompile_text(), or decompile_checked() "
                "first so the emitters (and their name origins) exist")
        stats = RestorationStats()
        for emitter in self.decompiler.emitters:
            for value, origin in emitter.names.origin.items():
                stats.total += 1
                if origin == "source":
                    stats.restored += 1
        return stats

    def structuring_stats(self):
        """Module-wide control-flow structuring counters (see
        :class:`repro.structure.StructuringStats`) from the last run."""
        if not self.decompiler.decompiled:
            raise ValueError(
                "structuring_stats() called before decompile(): run "
                "decompile(), decompile_text(), or decompile_checked() "
                "first so the structuring counters exist")
        return self.decompiler.structuring_stats()

    def refused_loops(self) -> int:
        """Fission seams re-fused on emission by the last run (the
        decompile-side counter merged into ``FissionStats.refused``)."""
        if not self.decompiler.decompiled:
            raise ValueError(
                "refused_loops() called before decompile(): run "
                "decompile(), decompile_text(), or decompile_checked() "
                "first so the re-fusion counter exists")
        return self.decompiler.refused_loops


@dataclass
class DecompilationResult:
    """Decompiled output plus the legality diagnostics attached to it."""

    text: str
    unit: ast.TranslationUnit
    diagnostics: "LintReport"

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok


def decompile(module: Module, variant: str = "full",
              type_source: str = "debug",
              structurer: str = "legacy",
              refuse_adjacent_loops: Optional[bool] = None) -> str:
    """Decompile a parallel IR module to C/OpenMP source text."""
    return Splendid(module, variant, type_source=type_source,
                    structurer=structurer,
                    refuse_adjacent_loops=refuse_adjacent_loops
                    ).decompile_text()


def decompile_unit(module: Module, variant: str = "full",
                   type_source: str = "debug",
                   structurer: str = "legacy") -> ast.TranslationUnit:
    return Splendid(module, variant, type_source=type_source,
                    structurer=structurer).decompile()


def decompile_checked(module: Module, variant: str = "full",
                      type_source: str = "debug",
                      structurer: str = "legacy") -> DecompilationResult:
    """Decompile with pragma verification (see `Splendid.decompile_checked`)."""
    return Splendid(module, variant, type_source=type_source,
                    structurer=structurer).decompile_checked()
