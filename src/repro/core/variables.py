"""SPLENDID variable generation (§4.3, Algorithms 1 and 2).

Three stages:

1. **Variable Proposer / Metadata Interpreter** — build the proposed
   instruction→source-variable map from ``llvm.dbg.value`` intrinsics,
   and combine the incoming values of phi instructions with the phi
   itself (SSA de-transformation of names).
2. **Most Recent Variable Definitions** (Algorithm 1) — a forward
   dataflow computing, before every instruction, which IR value is the
   most recent definition of each source variable.
3. **Conflicting Definition Removal** (Algorithm 2) — at every use of a
   proposed mapping, verify the used definition is the most recent one;
   otherwise the conflicting mapping is dropped, because renaming two
   simultaneously-live values to one C variable would change semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.dataflow import ForwardAnalysis
from ..ir.instructions import DbgValue, Instruction, Phi
from ..ir.module import Function, Module
from ..ir.values import Argument, Constant, Value

# Sentinel for "multiple definitions reach here" in the dataflow lattice.
_CONFLICT = object()


@dataclass
class VariableProposal:
    """Proposed value -> source-variable-name mappings for one function."""

    mapping: Dict[Value, str] = field(default_factory=dict)
    # Definition events: (instruction position of dbg, value, variable).
    events: List[Tuple[Instruction, Value, str]] = field(default_factory=list)

    def variable_of(self, value: Value) -> Optional[str]:
        return self.mapping.get(value)


def propose_variables(function: Function) -> VariableProposal:
    """Stage 1: Metadata Interpreter + phi combination."""
    proposal = VariableProposal()
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, DbgValue):
                value = inst.value
                name = inst.variable.name
                if isinstance(value, Constant):
                    continue
                proposal.events.append((inst, value, name))
                proposal.mapping.setdefault(value, name)

    # Combine phi incoming values with the phi's own variable: they were
    # one source variable before SSA split them.
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in block.phis():
                name = proposal.mapping.get(phi)
                if name is None:
                    # Inherit from any incoming value that has a name.
                    for value, _ in phi.incoming:
                        inherited = proposal.mapping.get(value)
                        if inherited is not None:
                            proposal.mapping[phi] = inherited
                            changed = True
                            break
                    continue
                for value, _ in phi.incoming:
                    if isinstance(value, Constant) or value is phi:
                        continue
                    if value not in proposal.mapping:
                        proposal.mapping[value] = name
                        changed = True
    return proposal


class MostRecentDefinitions(ForwardAnalysis):
    """Algorithm 1: forward dataflow of most-recent variable definitions.

    The state maps variable name -> the IR value that most recently
    became that variable (or the conflict sentinel when paths disagree).
    """

    def __init__(self, proposal: VariableProposal):
        self.proposal = proposal

    def initial(self):
        return {}

    def meet(self, states):
        merged: Dict[str, object] = {}
        for state in states:
            for var, value in state.items():
                if var not in merged:
                    merged[var] = value
                elif merged[var] is not value:
                    merged[var] = _CONFLICT
        return merged

    def transfer(self, inst: Instruction, state):
        new_def: Optional[Tuple[str, Value]] = None
        if isinstance(inst, DbgValue):
            # A dbg.value event only *defines* the variable for values
            # with no emission point of their own (arguments).  For
            # instruction values the assignment happens where the
            # instruction is emitted, which after code motion (LICM)
            # can be far from the dbg intrinsic's position.
            name = inst.variable.name
            value = inst.value
            if not isinstance(value, (Constant, Instruction)):
                new_def = (name, value)
        else:
            name = self.proposal.mapping.get(inst)
            if name is not None:
                new_def = (name, inst)
        if new_def is None:
            return state
        updated = dict(state)
        updated[new_def[0]] = new_def[1]  # GEN kills the old definition
        return updated


def remove_conflicts(function: Function,
                     proposal: VariableProposal) -> Dict[Value, str]:
    """Algorithm 2: validate proposed mappings at every use."""
    analysis = MostRecentDefinitions(proposal)
    result = analysis.run(function)
    mapping = dict(proposal.mapping)

    for block in function.blocks:
        if not result.visited(block):
            continue  # unreachable: no state constrains these uses
        for inst in block.instructions:
            if isinstance(inst, DbgValue):
                continue
            if isinstance(inst, Phi):
                # Phi uses happen at the end of their incoming edges, so
                # each one is checked against the predecessor's OUT state
                # (the merge itself is the phi's definition).
                for value, pred in inst.incoming:
                    var = mapping.get(value)
                    if var is None or value is inst:
                        continue
                    edge_state = result.block_out.get(pred)
                    if edge_state is None:
                        continue
                    recent = edge_state.get(var)
                    if recent is _CONFLICT:
                        mapping.pop(value, None)
                    elif recent is not None and recent is not value:
                        if mapping.get(recent) == var:
                            mapping.pop(recent, None)
                continue
            state = result.state_before(inst)
            operands = inst.operands
            for op in operands:
                var = mapping.get(op)
                if var is None:
                    continue
                recent = state.get(var)
                if recent is _CONFLICT:
                    mapping.pop(op, None)
                elif recent is not None and recent is not op:
                    # The used definition is not the most recent one: the
                    # two values' lifetimes overlap.  Per §4.3.2 (and the
                    # Figure 5 walk-through) SPLENDID arbitrarily removes
                    # the MOST RECENT mapping, keeping the one in use.
                    if mapping.get(recent) == var:
                        mapping.pop(recent, None)
    return mapping


def generate_variable_names(function: Function) -> Dict[Value, str]:
    """Full per-function variable generation (stages 1-3)."""
    proposal = propose_variables(function)
    return remove_conflicts(function, proposal)


def generate_module_names(module: Module) -> Dict[Value, str]:
    """Variable names for every defined function in a module.

    Argument names are recovered from their debug intrinsics too, which
    is how outlined-region parameters inherit caller names after
    SPLENDID's Parallel Code Inlining substitutes fork-call arguments.
    """
    names: Dict[Value, str] = {}
    for function in module.defined_functions():
        names.update(generate_variable_names(function))
    return names


def generate_module_groups(module: Module) -> Dict[Value, object]:
    """Sharing groups: values proved (per function) to be the same source
    variable get one group key, so the emitter gives them ONE C variable
    instead of uniquified copies — the SSA de-transformation itself."""
    groups: Dict[Value, object] = {}
    for function in module.defined_functions():
        for value, name in generate_variable_names(function).items():
            groups[value] = (function.name, name)
    return groups


@dataclass
class RestorationStats:
    """Data behind Figure 8: how many emitted variables kept source names."""

    total: int = 0
    restored: int = 0

    @property
    def percent(self) -> float:
        return 100.0 * self.restored / self.total if self.total else 0.0
