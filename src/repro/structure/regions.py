"""Single-entry/single-exit region tree and irreducibility detection.

Two CFG-shape analyses that feed the structurer:

- :func:`build_region_tree` computes the program structure tree of
  canonical SESE regions ``(entry, exit)`` where ``exit`` is the entry's
  immediate post-dominator and every edge crossing the region boundary
  goes through ``entry`` (in) or ``exit`` (out).  The tree is the
  divide-and-conquer skeleton the schema matcher works inside, and the
  ``region`` count it yields is reported in structuring stats.

- :func:`irreducible_components` finds strongly connected components
  with more than one entry block — cycles that are *not* natural loops
  and can only be rendered with ``goto``.  The structurer counts them
  and routes their back edges through the goto fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.dominators import DominatorTree, PostDominatorTree
from ..ir.block import BasicBlock
from ..ir.module import Function


@dataclass
class RegionNode:
    """One SESE region: control enters only at ``entry`` and leaves only
    to ``exit`` (``None`` for the top-level function region)."""

    entry: BasicBlock
    exit: Optional[BasicBlock]
    blocks: Set[BasicBlock] = field(default_factory=set)
    children: List["RegionNode"] = field(default_factory=list)
    parent: Optional["RegionNode"] = None

    @property
    def size(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        exit_name = self.exit.name if self.exit is not None else "<exit>"
        return (f"<Region {self.entry.name}..{exit_name} "
                f"blocks={self.size} children={len(self.children)}>")


def _candidate_blocks(entry: BasicBlock, exit_block: Optional[BasicBlock],
                      domtree: DominatorTree,
                      postdom: PostDominatorTree) -> Set[BasicBlock]:
    return {b for b in domtree.reachable
            if b is not exit_block
            and domtree.dominates(entry, b)
            and (exit_block is None or postdom.post_dominates(exit_block, b))}


def _is_sese(blocks: Set[BasicBlock], entry: BasicBlock,
             exit_block: Optional[BasicBlock]) -> bool:
    for block in blocks:
        if block is not entry:
            if any(p not in blocks for p in block.predecessors):
                return False
        for succ in block.successors:
            if succ not in blocks and succ is not exit_block:
                return False
    return True


def build_region_tree(function: Function, domtree: DominatorTree,
                      postdom: PostDominatorTree) -> RegionNode:
    """The program structure tree of ``function``'s canonical SESE
    regions, rooted at the whole-function region."""
    reachable = domtree.reachable
    if not reachable:
        return RegionNode(entry=None, exit=None)  # type: ignore[arg-type]
    root = RegionNode(reachable[0], None, set(reachable))
    nodes: List[RegionNode] = []
    for entry in reachable:
        exit_block = postdom.immediate(entry)
        if exit_block is None or exit_block is entry:
            continue
        blocks = _candidate_blocks(entry, exit_block, domtree, postdom)
        if len(blocks) < 2 or entry not in blocks:
            continue  # a single block is not an interesting region
        if blocks == root.blocks:
            continue
        if _is_sese(blocks, entry, exit_block):
            nodes.append(RegionNode(entry, exit_block, blocks))
    # Nest by containment: parent = the smallest strictly-larger region.
    nodes.sort(key=lambda n: n.size)
    for i, inner in enumerate(nodes):
        for outer in nodes[i + 1:]:
            if inner.blocks < outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break
        else:
            inner.parent = root
            root.children.append(inner)
    return root


def count_regions(root: RegionNode) -> int:
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node.children)
    return total


def strongly_connected_components(
        blocks: List[BasicBlock]) -> List[List[BasicBlock]]:
    """Tarjan's SCCs over the CFG restricted to ``blocks`` (iterative)."""
    universe = set(blocks)
    index: Dict[BasicBlock, int] = {}
    lowlink: Dict[BasicBlock, int] = {}
    on_stack: Set[BasicBlock] = set()
    stack: List[BasicBlock] = []
    sccs: List[List[BasicBlock]] = []
    counter = [0]

    for root in blocks:
        if root in index:
            continue
        work = [(root, iter([s for s in root.successors if s in universe]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            block, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter([s for s in succ.successors
                                     if s in universe])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[block] = min(lowlink[block], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[block])
            if lowlink[block] == index[block]:
                component: List[BasicBlock] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is block:
                        break
                sccs.append(component)
    return sccs


def irreducible_components(function: Function,
                           domtree: DominatorTree) -> List[List[BasicBlock]]:
    """Cyclic SCCs with more than one entry block — the textbook
    definition of irreducible control flow.  Natural loops always have
    exactly one entry (their dominating header)."""
    blocks = list(domtree.reachable)
    result: List[List[BasicBlock]] = []
    for scc in strongly_connected_components(blocks):
        members = set(scc)
        if len(scc) == 1:
            block = scc[0]
            if block not in block.successors:
                continue  # not even a self-loop
        entries = {b for b in scc
                   if any(p not in members for p in b.predecessors)}
        if len(entries) > 1:
            result.append(scc)
    return result
