"""Region/schema control-flow structuring in the Phoenix/angr tradition.

:func:`structure_function` reduces an arbitrary (possibly irreducible)
CFG to a tree of :mod:`~repro.structure.schemas` region nodes:

1. walk the CFG between dominator/post-dominator landmarks, claiming
   each block exactly once (the *claimed set* guarantees single emission
   and termination);
2. match acyclic schemas — sequence, ``if``/``else`` (join = immediate
   post-dominator), ``switch`` recovered from dense ``ICmp eq`` chains —
   and cyclic schemas — ``while``, ``do-while``, ``while (1)`` — with
   ``break``/``continue`` from exit-edge classification;
3. refine conditions by folding single-use pure comparison blocks into
   short-circuit ``&&``/``||`` chains;
4. emit ``goto`` as a last resort (irreducible cycles, abnormal loop
   entries, multi-level breaks, already-claimed reconvergence), then
   drain residual unclaimed goto targets and mark their labels.

Every function is structurable: the fallback degrades locally to a
counted ``goto``, never aborts.  The only sanctioned constructors are
this module and the ``STRUCTURE`` analysis registration in
:mod:`repro.analysis.manager` (grep-enforced by the smoke test).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.dominators import DominatorTree, PostDominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..ir.block import BasicBlock
from ..ir.instructions import (Branch, CondBranch, DbgValue, FCmp, ICmp, Phi,
                               Ret, Unreachable)
from ..ir.module import Function
from ..ir.values import ConstantInt, Value
from .regions import (build_region_tree, count_regions, irreducible_components)
from .schemas import (BlockRegion, BreakRegion, CondAtom, CondExpr,
                      ContinueRegion, GotoRegion, IfRegion, LoopRegion,
                      Region, ReturnRegion, SeqRegion, SwitchArm,
                      SwitchRegion, cond_and, cond_or)

_SCHEMA_KEYS = ("block", "seq", "if", "if_else", "while", "dowhile",
                "endless", "switch", "return", "break", "continue")


@dataclass
class StructuringStats:
    """Counters surfaced through ``--time-passes`` and ``/v1/stats``."""

    schemas: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in _SCHEMA_KEYS})
    gotos: int = 0
    labels: int = 0
    refinements: int = 0
    irreducible: int = 0
    abnormal_loops: int = 0
    residual: int = 0
    regions: int = 0
    functions: int = 0
    fallback_functions: int = 0
    seconds: float = 0.0

    def bump(self, key: str) -> None:
        self.schemas[key] = self.schemas.get(key, 0) + 1

    @property
    def schemas_matched(self) -> int:
        return sum(self.schemas.values())

    def merge(self, other: "StructuringStats") -> None:
        for key, count in other.schemas.items():
            self.schemas[key] = self.schemas.get(key, 0) + count
        self.gotos += other.gotos
        self.labels += other.labels
        self.refinements += other.refinements
        self.irreducible += other.irreducible
        self.abnormal_loops += other.abnormal_loops
        self.residual += other.residual
        self.regions += other.regions
        self.functions += other.functions
        self.fallback_functions += other.fallback_functions
        self.seconds += other.seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "schemas": dict(self.schemas),
            "schemas_matched": self.schemas_matched,
            "gotos": self.gotos,
            "labels": self.labels,
            "refinements": self.refinements,
            "irreducible": self.irreducible,
            "abnormal_loops": self.abnormal_loops,
            "residual": self.residual,
            "regions": self.regions,
            "functions": self.functions,
            "fallback_functions": self.fallback_functions,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class StructuredFunction:
    """The structuring result for one function."""

    function: Function
    root: SeqRegion
    goto_targets: Set[BasicBlock]
    loop_nodes: Dict[BasicBlock, LoopRegion]  # header -> node
    stats: StructuringStats

    @property
    def is_goto_free(self) -> bool:
        return not self.goto_targets and self.stats.gotos == 0


class _LoopCtx:
    """Active loop nesting during the walk: where ``break``/``continue``
    transfer, and the loop they belong to.  ``continue_target`` is None
    for do-while loops — C's ``continue`` jumps to the condition and
    would skip the latch's statements and phi updates."""

    def __init__(self, loop: Loop, break_target: Optional[BasicBlock],
                 continue_target: Optional[BasicBlock],
                 parent: Optional["_LoopCtx"]):
        self.loop = loop
        self.break_target = break_target
        self.continue_target = continue_target
        self.parent = parent


def structure_function(function: Function,
                       loop_info: Optional[LoopInfo] = None,
                       domtree: Optional[DominatorTree] = None,
                       postdom: Optional[PostDominatorTree] = None
                       ) -> StructuredFunction:
    """Structure ``function`` into a region tree.  Analyses are computed
    on demand when not supplied (the ``STRUCTURE`` registration passes
    the AnalysisManager-cached ones)."""
    start = time.perf_counter()
    if domtree is None or postdom is None or loop_info is None:
        from ..analysis.manager import (DOMTREE, LOOPS, POSTDOMTREE,
                                        AnalysisManager)
        manager = AnalysisManager()
        if domtree is None:
            domtree = manager.get(DOMTREE, function)
        if postdom is None:
            postdom = manager.get(POSTDOMTREE, function)
        if loop_info is None:
            loop_info = manager.get(LOOPS, function)
    structurer = _Structurer(function, loop_info, domtree, postdom)
    result = structurer.run()
    result.stats.seconds = time.perf_counter() - start
    return result


class _Structurer:
    def __init__(self, function: Function, loop_info: LoopInfo,
                 domtree: DominatorTree, postdom: PostDominatorTree):
        self.function = function
        self.loop_info = loop_info
        self.domtree = domtree
        self.postdom = postdom
        self.stats = StructuringStats(functions=1)
        self.claimed: Set[BasicBlock] = set()
        self.goto_targets: Set[BasicBlock] = set()
        # Claim-point node for each block, so the label pass can flip
        # ``label=True`` exactly where the block's statements land.
        self.node_of: Dict[BasicBlock, Region] = {}
        self.loop_nodes: Dict[BasicBlock, LoopRegion] = {}
        self._active_stops: List[BasicBlock] = []
        self._irreducible_blocks: Set[BasicBlock] = set()
        for scc in irreducible_components(function, domtree):
            self.stats.irreducible += 1
            self._irreducible_blocks.update(scc)

    # -- entry ---------------------------------------------------------

    def run(self) -> StructuredFunction:
        root = SeqRegion(self._sequence(self._entry(), None, None))
        self.stats.bump("seq")
        # Residual drain: any goto target never claimed (irreducible
        # side entries) gets structured as a labeled tail region.
        progress = True
        while progress:
            progress = False
            for block in self.domtree.reachable:
                if block in self.goto_targets and block not in self.claimed:
                    self.stats.residual += 1
                    root.items.extend(self._sequence(block, None, None))
                    progress = True
                    break
        for target in self.goto_targets:
            node = self.node_of.get(target)
            if node is not None:
                node.label = True  # type: ignore[union-attr]
        self.stats.labels = len(self.goto_targets)
        self.stats.regions = count_regions(
            build_region_tree(self.function, self.domtree, self.postdom))
        return StructuredFunction(self.function, root, self.goto_targets,
                                  self.loop_nodes, self.stats)

    def _entry(self) -> Optional[BasicBlock]:
        return self.domtree.reachable[0] if self.domtree.reachable else None

    # -- sequences -----------------------------------------------------

    def _sequence(self, start: Optional[BasicBlock],
                  stop: Optional[BasicBlock],
                  ctx: Optional[_LoopCtx]) -> List[Region]:
        items: List[Region] = []
        current = start
        first = True
        if stop is not None:
            self._active_stops.append(stop)
        try:
            while current is not None and current is not stop:
                if not first:
                    jump = self._jump_region(current, ctx)
                    if jump is not None:
                        items.append(jump)
                        break
                elif current in self.claimed:
                    items.append(self._goto(current))
                    break
                first = False
                inner = self.loop_info.loop_with_header(current)
                if inner is not None and (ctx is None
                                          or inner is not ctx.loop):
                    node = self._loop_region(inner, ctx, stop)
                    if node is not None:
                        items.append(node)
                        current = node.exit
                        continue
                current = self._acyclic(current, stop, ctx, items)
        finally:
            if stop is not None:
                self._active_stops.pop()
        return items

    def _goto(self, target: BasicBlock) -> GotoRegion:
        self.goto_targets.add(target)
        self.stats.gotos += 1
        return GotoRegion(target)

    def _jump_region(self, target: BasicBlock,
                     ctx: Optional[_LoopCtx]) -> Optional[Region]:
        walk = ctx
        innermost = True
        while walk is not None:
            if target is walk.break_target:
                if innermost:
                    self.stats.bump("break")
                    return BreakRegion()
                return self._goto(target)  # multi-level break needs goto
            if target is walk.continue_target:
                if innermost:
                    self.stats.bump("continue")
                    return ContinueRegion()
                return self._goto(target)
            walk = walk.parent
            innermost = False
        if target in self.claimed:
            return self._goto(target)
        return None

    # -- acyclic schemas -----------------------------------------------

    def _acyclic(self, block: BasicBlock, stop: Optional[BasicBlock],
                 ctx: Optional[_LoopCtx],
                 items: List[Region]) -> Optional[BasicBlock]:
        """Claim ``block``, append its region(s), return the block the
        sequence continues at (or None)."""
        self.claimed.add(block)
        node = BlockRegion(block)
        self.node_of[block] = node
        items.append(node)
        self.stats.bump("block")
        term = block.terminator
        if isinstance(term, Ret):
            items.append(ReturnRegion(term))
            self.stats.bump("return")
            return None
        if term is None or isinstance(term, Unreachable):
            return None
        if isinstance(term, Branch):
            target = term.target
            if target is stop:
                return None
            jump = self._jump_region(target, ctx)
            if jump is not None:
                items.append(jump)
                return None
            return target
        assert isinstance(term, CondBranch)
        switch = self._match_switch(block, term, ctx)
        if switch is not None:
            items.append(switch)
            return switch.join
        cond, if_true, if_false = self._refine_condition(
            CondAtom(term.condition), term.if_true, term.if_false, block)
        join = self.postdom.immediate(block)
        if join is not None and join not in self.domtree.reachable:
            join = None
        if join is None or not self._join_usable(join, if_true, if_false,
                                                 stop, ctx):
            # The post-dominator join is outside the structurable region
            # (typically a break target).  A multi-predecessor arm
            # target is the next-best continuation: the other arm keeps
            # walking until it reaches it (or leaves via a jump).
            join = None
            for candidate in (if_true, if_false):
                if len(candidate.predecessors) > 1 \
                        and self._join_usable(candidate, if_true, if_false,
                                              stop, ctx):
                    join = candidate
                    break
            if join is None and self._join_usable(stop, if_true, if_false,
                                                  stop, ctx):
                join = stop
        then_region = self._arm(if_true, join, ctx)
        else_region = self._arm(if_false, join, ctx)
        self.stats.bump("if_else" if then_region is not None
                        and else_region is not None else "if")
        items.append(IfRegion(block, cond, then_region, else_region, join))
        return join

    def _join_usable(self, join: Optional[BasicBlock],
                     if_true: BasicBlock, if_false: BasicBlock,
                     stop: Optional[BasicBlock],
                     ctx: Optional[_LoopCtx]) -> bool:
        """A join block is usable as the if's continuation when the
        sequence may legally run into it: it must not be an outer stop
        (other than ours), a loop boundary jump, or already claimed."""
        if join is None:
            return False
        if join is stop:
            return True
        if join in self.claimed:
            return False
        if self._jump_region_peek(join, ctx):
            return False
        if join in self._active_stops:
            return False
        loop = self.loop_info.loop_for(join)
        here = ctx.loop if ctx is not None else None
        if loop is not None and loop.header is join \
                and loop.parent is here:
            # Both arms converge on the header of a loop nested
            # directly below us: the sequence continues by *entering*
            # that loop, which _sequence structures as a loop region.
            return True
        return loop is here or (loop is not None and here is not None
                                and here in _ancestors(loop))

    def _jump_region_peek(self, target: BasicBlock,
                          ctx: Optional[_LoopCtx]) -> bool:
        walk = ctx
        while walk is not None:
            if target is walk.break_target or target is walk.continue_target:
                return True
            walk = walk.parent
        return False

    def _arm(self, target: BasicBlock, join: Optional[BasicBlock],
             ctx: Optional[_LoopCtx]) -> Optional[Region]:
        if target is join:
            return None
        jump = self._jump_region(target, ctx)
        if jump is not None:
            return jump
        body = self._sequence(target, join, ctx)
        if not body:
            return None
        if len(body) == 1:
            return body[0]
        self.stats.bump("seq")
        return SeqRegion(body)

    # -- condition refinement ------------------------------------------

    def _refine_condition(self, cond: CondExpr, if_true: BasicBlock,
                          if_false: BasicBlock, head: BasicBlock
                          ) -> Tuple[CondExpr, BasicBlock, BasicBlock]:
        """Fold consumable pure-compare blocks into ``&&``/``||`` chains.

        ``head && C`` when the true arm re-tests and shares the false
        target; ``head || C`` when the false arm re-tests and shares the
        true target.  Consumed blocks are claimed and never emitted."""
        changed = True
        while changed and if_true is not if_false:
            changed = False
            for candidate, on_true in ((if_true, True), (if_false, False)):
                other = if_false if on_true else if_true
                if not self._consumable(candidate, head):
                    continue
                cterm = candidate.terminator
                assert isinstance(cterm, CondBranch)
                atom = CondAtom(cterm.condition)
                if on_true and cterm.if_false is other:
                    cond, if_true = cond_and(cond, atom), cterm.if_true
                elif on_true and cterm.if_true is other:
                    cond = cond_and(cond, CondAtom(cterm.condition, True))
                    if_true = cterm.if_false
                elif not on_true and cterm.if_true is other:
                    cond, if_false = cond_or(cond, atom), cterm.if_false
                elif not on_true and cterm.if_false is other:
                    cond = cond_or(cond, CondAtom(cterm.condition, True))
                    if_false = cterm.if_true
                else:
                    continue
                self.claimed.add(candidate)
                self.stats.refinements += 1
                changed = True
                break
        return cond, if_true, if_false

    def _consumable(self, block: BasicBlock, head: BasicBlock) -> bool:
        """A block that can vanish into a short-circuit condition: only
        reachable from the chain, side-effect free, no phi obligations."""
        if block in self.claimed or block is head:
            return False
        if len(block.predecessors) != 1:
            return False
        if not isinstance(block.terminator, CondBranch):
            return False
        if self.loop_info.loop_with_header(block) is not None:
            return False
        if self.loop_info.loop_for(block) is not self.loop_info.loop_for(head):
            return False
        if block in self._active_stops or block in self._irreducible_blocks:
            return False
        if not _pure_compare_block(block):
            return False
        # Consuming the block erases its phi-edge assignments, so every
        # successor phi must receive the same value along the head's own
        # edge (which IS emitted): then the head's assignment covers the
        # folded edge too.
        for succ in block.successors:
            for phi in succ.phis():
                head_value = phi.incoming_for(head)
                if head_value is None:
                    return False
                if not (head_value is phi.incoming_for(block)
                        or head_value == phi.incoming_for(block)):
                    return False
        return True

    # -- switch recovery -----------------------------------------------

    def _match_switch(self, head: BasicBlock, term: CondBranch,
                      ctx: Optional[_LoopCtx]) -> Optional[SwitchRegion]:
        chain = self._collect_switch_chain(head, term)
        if chain is None:
            return None
        control, cases, default = chain
        join = self.postdom.immediate(head)
        if join is None or join not in self.domtree.reachable:
            return None
        if not self._join_usable(join, default, default, None, ctx):
            return None
        for _, _, _, target in cases:
            if target is join:
                return None
        if default in (t for _, _, _, t in cases):
            return None
        # Commit: claim the interior chain blocks.
        for block, _, _, _ in cases[1:]:
            self.claimed.add(block)
        arms = []
        for _, compare, negated, target in cases:
            arms.append(SwitchArm(
                value=_case_value(compare), compare=compare,
                negated=negated, body=self._arm(target, join, ctx)))
        default_region = (None if default is join
                          else self._arm(default, join, ctx))
        self.stats.bump("switch")
        return SwitchRegion(control=control, arms=arms,
                            default=default_region, join=join)

    def _collect_switch_chain(self, head: BasicBlock, term: CondBranch):
        """Walk ``if (c==K0) ... else if (c==K1) ...`` chains.  Returns
        ``(control, [(block, compare, negated, case_target)], default)``
        or None.  Requires >= 3 distinct cases, chain blocks that are
        pure single-use compares, and phi-free case/default targets."""
        cases: List[Tuple[BasicBlock, Value, bool, BasicBlock]] = []
        block, current = head, term
        control: Optional[Value] = None
        seen_values: Set[int] = set()
        while True:
            match = _eq_case(current)
            if match is None:
                break
            compare, negated, case_target, next_block = match
            value = _case_value(compare)
            ctrl = compare.lhs if isinstance(compare.rhs, ConstantInt) \
                else compare.rhs
            if control is None:
                control = ctrl
            elif ctrl is not control:
                break
            if value is None or value in seen_values:
                break
            if case_target.phis() or len(case_target.predecessors) != 1:
                break
            seen_values.add(value)
            cases.append((block, compare, negated, case_target))
            if (len(next_block.predecessors) != 1
                    or not isinstance(next_block.terminator, CondBranch)
                    or next_block in self.claimed
                    or next_block in self._active_stops
                    or next_block in self._irreducible_blocks
                    or next_block.phis()
                    or self.loop_info.loop_with_header(next_block) is not None
                    or self.loop_info.loop_for(next_block)
                    is not self.loop_info.loop_for(head)
                    or not _pure_compare_block(next_block)):
                # next_block is the default, not another chain link.
                if len(cases) >= 3 and not next_block.phis():
                    return control, cases, next_block
                return None
            block = next_block
            current = next_block.terminator  # type: ignore[assignment]
        # Chain ended because `block`'s terminator is not an eq-case;
        # the block itself (entered only through the chain) is the
        # default.  It was vetted by the link checks above.
        if len(cases) >= 3 and block is not head and not block.phis():
            return control, cases, block
        return None

    # -- cyclic schemas ------------------------------------------------

    def _loop_region(self, loop: Loop, parent_ctx: Optional[_LoopCtx],
                     stop: Optional[BasicBlock]) -> Optional[LoopRegion]:
        header = loop.header
        # Abnormal (side) entries make the loop unstructurable as a C
        # loop statement; fall back to straight-line + goto treatment.
        for block in loop.blocks:
            if block is header:
                continue
            if any(p not in loop.blocks for p in block.predecessors):
                self.stats.abnormal_loops += 1
                return None
        exit_block = self._primary_exit(loop, stop)
        latch = loop.latch
        if (loop.is_rotated and latch is not None
                and isinstance(latch.terminator, CondBranch)):
            return self._dowhile(loop, latch, exit_block, parent_ctx)
        if self._while_shape(loop, exit_block):
            return self._while(loop, exit_block, parent_ctx)
        return self._endless(loop, exit_block, parent_ctx)

    def _primary_exit(self, loop: Loop,
                      stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        exits = loop.exit_blocks
        if not exits:
            return None
        if stop is not None and stop in exits:
            return stop
        if loop.unique_exit is not None:
            return loop.unique_exit
        # Most-targeted exit wins; layout order breaks ties.
        counts: Dict[BasicBlock, int] = {}
        for exiting in loop.exiting_blocks:
            for succ in exiting.successors:
                if succ not in loop.blocks:
                    counts[succ] = counts.get(succ, 0) + 1
        best = max(counts.values())
        for candidate in exits:
            if counts.get(candidate, 0) == best:
                return candidate
        return exits[0]

    def _dowhile(self, loop: Loop, latch: BasicBlock,
                 exit_block: Optional[BasicBlock],
                 parent_ctx: Optional[_LoopCtx]) -> LoopRegion:
        header = loop.header
        term = latch.terminator
        assert isinstance(term, CondBranch)
        ctx = _LoopCtx(loop, exit_block, None, parent_ctx)
        # Claim the latch up front: a mid-body jump to it must become a
        # labeled goto (C `continue` would skip its statements).
        self.claimed.add(latch)
        if header is latch:
            body_items: List[Region] = []
        else:
            body_items = self._sequence(header, latch, ctx)
        tail = BlockRegion(latch)
        self.node_of[latch] = tail
        body_items.append(tail)
        cond = CondAtom(term.condition,
                        negated=term.if_true not in loop.blocks)
        body: Region = (body_items[0] if len(body_items) == 1
                        else SeqRegion(body_items))
        node = LoopRegion(loop, "dowhile", cond, body, exit_block)
        self.stats.bump("dowhile")
        self.loop_nodes[header] = node
        return node

    def _while_shape(self, loop: Loop,
                     exit_block: Optional[BasicBlock]) -> bool:
        header = loop.header
        term = header.terminator
        if not loop.is_top_test or not isinstance(term, CondBranch):
            return False
        if exit_block is None:
            return False
        if term.if_true is not exit_block and term.if_false is not exit_block:
            return False
        # The header may only hold phis and the condition computation —
        # its block statements are never emitted (the condition is
        # inlined into the `while`), so anything else would be lost.
        for inst in header:
            if isinstance(inst, (Phi, DbgValue, ICmp, FCmp)) \
                    or inst is term:
                continue
            return False
        # The header's edge phi-assignments are never emitted either:
        # the body entry must not owe phi updates to that edge.
        body_entry = (term.if_true if term.if_true in loop.blocks
                      else term.if_false)
        for phi in body_entry.phis():
            incoming = phi.incoming_for(header)
            if incoming is not None and incoming is not phi:
                return False
        return True

    def _while(self, loop: Loop, exit_block: Optional[BasicBlock],
               parent_ctx: Optional[_LoopCtx]) -> LoopRegion:
        header = loop.header
        term = header.terminator
        assert isinstance(term, CondBranch)
        body_entry = (term.if_true if term.if_true in loop.blocks
                      else term.if_false)
        cond = CondAtom(term.condition,
                        negated=term.if_true not in loop.blocks)
        ctx = _LoopCtx(loop, exit_block, header, parent_ctx)
        # The header never appears as a block: its condition is inlined
        # into the `while`, and its exit-edge (LCSSA) phi assignments
        # are placed right after the loop by the lowering.
        self.claimed.add(header)
        body_items = self._sequence(body_entry, header, ctx)
        if body_items and isinstance(body_items[-1], ContinueRegion):
            body_items.pop()
        body: Region = (body_items[0] if len(body_items) == 1
                        else SeqRegion(body_items))
        node = LoopRegion(loop, "while", cond, body, exit_block)
        self.node_of[header] = node
        self.stats.bump("while")
        self.loop_nodes[header] = node
        return node

    def _endless(self, loop: Loop, exit_block: Optional[BasicBlock],
                 parent_ctx: Optional[_LoopCtx]) -> LoopRegion:
        header = loop.header
        ctx = _LoopCtx(loop, exit_block, header, parent_ctx)
        body_items = self._sequence(header, None, ctx)
        if body_items and isinstance(body_items[-1], ContinueRegion):
            body_items.pop()
        body: Region = (body_items[0] if len(body_items) == 1
                        else SeqRegion(body_items))
        node = LoopRegion(loop, "endless", None, body, exit_block)
        self.stats.bump("endless")
        self.loop_nodes[header] = node
        return node


def _ancestors(loop: Optional[Loop]) -> Set[Loop]:
    out: Set[Loop] = set()
    while loop is not None:
        out.add(loop)
        loop = loop.parent
    return out


def _pure_compare_block(block: BasicBlock) -> bool:
    """Only compares/dbg feeding the terminator — safe to consume."""
    term = block.terminator
    for inst in block:
        if inst is term or isinstance(inst, DbgValue):
            continue
        if isinstance(inst, Phi):
            return False
        if not isinstance(inst, (ICmp, FCmp)):
            return False
        if not all(isinstance(u, (ICmp, FCmp, CondBranch))
                   for u in inst.users):
            return False
    return True


def _eq_case(term: CondBranch):
    """Match one ``if (control == K)`` chain link.  Returns
    ``(compare, negated, case_target, next_block)`` or None."""
    cond = term.condition
    if not isinstance(cond, ICmp):
        return None
    if isinstance(cond.rhs, ConstantInt) is isinstance(cond.lhs, ConstantInt):
        return None  # exactly one side must be the constant
    if cond.predicate == "eq":
        return cond, False, term.if_true, term.if_false
    if cond.predicate == "ne":
        return cond, True, term.if_false, term.if_true
    return None


def _case_value(compare: Value) -> Optional[int]:
    if isinstance(compare, ICmp):
        if isinstance(compare.rhs, ConstantInt):
            return compare.rhs.value
        if isinstance(compare.lhs, ConstantInt):
            return compare.lhs.value
    return None
