"""Region/schema-based control-flow structuring (the Phoenix/angr
tradition): turn an arbitrary — possibly irreducible — CFG into a tree
of structured regions that lowers to natural C with ``goto`` strictly
as a counted last resort.

Use the ``STRUCTURE`` analysis
(:func:`repro.analysis.manager.get_structure`) or
:func:`structure_function`; both are grep-enforced construction choke
points (see ``tests/test_structure_smoke.py``).
"""

from .regions import (RegionNode, build_region_tree, count_regions,
                      irreducible_components, strongly_connected_components)
from .schemas import (BlockRegion, BreakRegion, CondAnd, CondAtom, CondExpr,
                      CondOr, ContinueRegion, GotoRegion, IfRegion,
                      LoopRegion, Region, ReturnRegion, SeqRegion, SwitchArm,
                      SwitchRegion, cond_and, cond_atoms, cond_negate,
                      cond_or, contains_loose_break, walk_regions)
from .structurer import (StructuredFunction, StructuringStats,
                         structure_function)

__all__ = [
    "RegionNode", "build_region_tree", "count_regions",
    "irreducible_components", "strongly_connected_components",
    "BlockRegion", "BreakRegion", "CondAnd", "CondAtom", "CondExpr",
    "CondOr", "ContinueRegion", "GotoRegion", "IfRegion", "LoopRegion",
    "Region", "ReturnRegion", "SeqRegion", "SwitchArm", "SwitchRegion",
    "cond_and", "cond_atoms", "cond_negate", "cond_or",
    "contains_loose_break", "walk_regions",
    "StructuredFunction", "StructuringStats", "structure_function",
]
