"""Region and condition schemas for the structuring engine.

The structurer (:mod:`repro.structure.structurer`) reduces a CFG to a
tree of the region nodes defined here — the schema catalog of the
Phoenix/angr structuring tradition: sequences, two-way conditionals,
switches recovered from ``ICmp eq`` chains, the three cyclic shapes
(``while``, ``do-while``, and the always-sound ``while (1)`` natural
loop), and explicit ``break``/``continue``/``goto``/``return`` leaves.
Conditions are trees too (:class:`CondAtom` / :class:`CondAnd` /
:class:`CondOr`) so condition refinement can fold single-use pure
comparison blocks into short-circuit ``&&``/``||`` chains before
lowering ever sees them.

The nodes are deliberately *IR-facing*: they reference
:class:`~repro.ir.block.BasicBlock` and :class:`~repro.ir.values.Value`
objects, never C constructs.  Lowering to mini-C happens in
:mod:`repro.structure.lower`, which owns every naming/typing decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.block import BasicBlock
from ..ir.instructions import Ret
from ..ir.values import Value

# ---------------------------------------------------------------------------
# Condition trees
# ---------------------------------------------------------------------------


class CondExpr:
    """Base class of structured branch conditions."""


@dataclass
class CondAtom(CondExpr):
    """A single IR condition value, possibly logically negated."""

    value: Value
    negated: bool = False


@dataclass
class CondAnd(CondExpr):
    """Short-circuit conjunction (``a && b && ...``)."""

    parts: List[CondExpr]


@dataclass
class CondOr(CondExpr):
    """Short-circuit disjunction (``a || b || ...``)."""

    parts: List[CondExpr]


def cond_negate(cond: CondExpr) -> CondExpr:
    """Logical negation with De Morgan push-down (keeps atoms printable)."""
    if isinstance(cond, CondAtom):
        return CondAtom(cond.value, not cond.negated)
    if isinstance(cond, CondAnd):
        return CondOr([cond_negate(p) for p in cond.parts])
    if isinstance(cond, CondOr):
        return CondAnd([cond_negate(p) for p in cond.parts])
    raise TypeError(f"unknown condition {cond!r}")


def cond_and(lhs: CondExpr, rhs: CondExpr) -> CondExpr:
    parts = lhs.parts if isinstance(lhs, CondAnd) else [lhs]
    return CondAnd(parts + [rhs])


def cond_or(lhs: CondExpr, rhs: CondExpr) -> CondExpr:
    parts = lhs.parts if isinstance(lhs, CondOr) else [lhs]
    return CondOr(parts + [rhs])


def cond_atoms(cond: CondExpr) -> List[CondAtom]:
    if isinstance(cond, CondAtom):
        return [cond]
    atoms: List[CondAtom] = []
    for part in cond.parts:  # type: ignore[union-attr]
        atoms.extend(cond_atoms(part))
    return atoms


# ---------------------------------------------------------------------------
# Region nodes
# ---------------------------------------------------------------------------


class Region:
    """Base class of structured regions."""

    kind: str = "region"


@dataclass
class BlockRegion(Region):
    """The straight-line statements of one basic block (terminator
    excluded).  ``label`` marks it as a ``goto`` target."""

    block: BasicBlock
    label: bool = False
    kind = "block"


@dataclass
class SeqRegion(Region):
    """A sequence of regions executed in order."""

    items: List[Region] = field(default_factory=list)
    kind = "seq"


@dataclass
class IfRegion(Region):
    """Two-way conditional.  ``head`` is the branching block (its
    straight-line statements are a separate preceding
    :class:`BlockRegion`); an arm of ``None`` is empty."""

    head: BasicBlock
    cond: CondExpr
    then_region: Optional[Region]
    else_region: Optional[Region]
    join: Optional[BasicBlock]
    kind = "if"


@dataclass
class SwitchArm(Region):
    """One recovered case of a switch chain: the chain block's compare
    (``control == value``), its orientation, and the case body."""

    value: int
    compare: Value
    negated: bool
    body: Optional[Region]
    kind = "switch-arm"


@dataclass
class SwitchRegion(Region):
    """A switch recovered from a dense ``ICmp eq`` chain over one
    control value."""

    control: Value
    arms: List[SwitchArm]
    default: Optional[Region]
    join: Optional[BasicBlock]
    kind = "switch"


@dataclass
class LoopRegion(Region):
    """A cyclic region.  ``shape`` is one of:

    - ``"while"``     — top-test loop, condition in the header;
    - ``"dowhile"``   — rotated loop, condition in the (unique) latch;
    - ``"endless"``   — natural loop of any other shape, lowered as
      ``while (1)`` with exit edges as ``break`` (always sound).
    """

    loop: object                   # analysis.loops.Loop
    shape: str
    cond: Optional[CondExpr]
    body: Region
    exit: Optional[BasicBlock]     # the primary (break-target) exit
    label: bool = False            # goto target at the loop statement
    kind = "loop"


@dataclass
class BreakRegion(Region):
    kind = "break"


@dataclass
class ContinueRegion(Region):
    kind = "continue"


@dataclass
class GotoRegion(Region):
    """Last-resort transfer to a labeled block (irreducible or residual
    control flow, or a break/continue out of a non-innermost loop)."""

    target: BasicBlock
    kind = "goto"


@dataclass
class ReturnRegion(Region):
    ret: Ret
    kind = "return"


def walk_regions(region: Optional[Region]):
    """Yield every region in a subtree, pre-order."""
    if region is None:
        return
    yield region
    if isinstance(region, SeqRegion):
        for item in region.items:
            yield from walk_regions(item)
    elif isinstance(region, IfRegion):
        yield from walk_regions(region.then_region)
        yield from walk_regions(region.else_region)
    elif isinstance(region, SwitchRegion):
        for arm in region.arms:
            yield from walk_regions(arm.body)
        yield from walk_regions(region.default)
    elif isinstance(region, LoopRegion):
        yield from walk_regions(region.body)


def contains_loose_break(region: Optional[Region]) -> bool:
    """True when the region contains a ``break`` that would be captured
    by an enclosing C ``switch`` (i.e. not nested inside an inner loop
    or switch of its own).  Decides switch-vs-if-chain lowering."""
    if region is None:
        return False
    if isinstance(region, BreakRegion):
        return True
    if isinstance(region, SeqRegion):
        return any(contains_loose_break(i) for i in region.items)
    if isinstance(region, IfRegion):
        return (contains_loose_break(region.then_region)
                or contains_loose_break(region.else_region))
    # LoopRegion / SwitchRegion re-bind `break`; nothing below them leaks.
    return False
