"""Lower a structured region tree to mini-C statements.

:class:`StructuredLowering` walks the :mod:`~repro.structure.schemas`
tree produced by the structurer and emits :mod:`repro.minic.c_ast`
statements through the owning
:class:`~repro.decompilers.engine.FunctionEmitter` — every naming,
typing, expression-inlining and phi de-SSA decision stays in the engine
(``emit_block_stmts`` already appends the edge phi assignments each
block owes its successors, which is what makes ``break``/``continue``/
``goto`` leaves safe to emit right after a block's statements).

Lowering also owns the two C-specific judgement calls the region tree
defers:

- a recovered switch demotes to an ``if``/``else if`` chain when any
  case body contains a loose ``break`` (C's ``switch`` would capture
  it away from the enclosing loop);
- a ``do-while`` whose loop has a counted-for plan upgrades to a
  ``for`` statement, and the §4.2 guard elision drops a redundant
  entry guard around such a loop entirely.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.instructions import CondBranch, ICmp
from ..minic import c_ast as ast
from .schemas import (BlockRegion, CondAtom, CondExpr, IfRegion, LoopRegion,
                      Region, SwitchRegion, cond_negate, contains_loose_break)
from .structurer import StructuredFunction


class StructuredLowering:
    def __init__(self, emitter, structured: StructuredFunction):
        self.emitter = emitter
        self.structured = structured
        self.guard_elisions = 0

    def lower(self) -> List[ast.Stmt]:
        stmts = self._stmts(self.structured.root)
        # Implicit return at the end of a void function.
        if self.emitter.function.return_type.is_void and stmts \
                and isinstance(stmts[-1], ast.Return) \
                and stmts[-1].value is None:
            stmts.pop()
        return stmts

    # -- dispatch ------------------------------------------------------

    def _stmts(self, region: Optional[Region]) -> List[ast.Stmt]:
        if region is None:
            return []
        kind = region.kind
        if kind == "seq":
            out: List[ast.Stmt] = []
            for item in region.items:          # type: ignore[attr-defined]
                out.extend(self._stmts(item))
            return out
        if kind == "block":
            return self._block(region)         # type: ignore[arg-type]
        if kind == "if":
            return self._if(region)            # type: ignore[arg-type]
        if kind == "switch":
            return self._switch(region)        # type: ignore[arg-type]
        if kind == "loop":
            return self._loop(region)          # type: ignore[arg-type]
        if kind == "return":
            ret = region.ret                   # type: ignore[attr-defined]
            if ret.value is not None:
                return [ast.Return(self.emitter.expr(ret.value))]
            return [ast.Return()]
        if kind == "break":
            return [ast.Break()]
        if kind == "continue":
            return [ast.Continue()]
        if kind == "goto":
            return [ast.Goto(self._label(region.target))]  # type: ignore[attr-defined]
        from ..decompilers.engine import DecompileError
        raise DecompileError(f"cannot lower region kind {kind!r}")

    def _label(self, block) -> str:
        from ..decompilers.engine import _label
        return _label(block)

    def _block(self, region: BlockRegion) -> List[ast.Stmt]:
        stmts = self.emitter.emit_block_stmts(region.block)
        if region.label:
            return [ast.Label(self._label(region.block))] + stmts
        return stmts

    # -- conditions ----------------------------------------------------

    def _cond(self, cond: CondExpr) -> ast.Expr:
        from ..decompilers.engine import _negate
        from .schemas import CondAnd
        if isinstance(cond, CondAtom):
            expr = self.emitter.condition_expr(cond.value)
            return _negate(expr) if cond.negated else expr
        op = "&&" if isinstance(cond, CondAnd) else "||"
        parts = cond.parts                             # type: ignore[attr-defined]
        expr = self._cond(parts[0])
        for part in parts[1:]:
            expr = ast.Binary(op, expr, self._cond(part))
        return expr

    # -- conditionals --------------------------------------------------

    def _if(self, region: IfRegion) -> List[ast.Stmt]:
        guard = self._guard_elision(region)
        if guard is not None:
            return guard
        then_stmts = self._stmts(region.then_region)
        else_stmts = self._stmts(region.else_region)
        if not then_stmts and not else_stmts:
            return []
        cond = region.cond
        if not then_stmts:
            cond = cond_negate(cond)
            then_stmts, else_stmts = else_stmts, []
        return [ast.If(self._cond(cond), ast.Compound(then_stmts),
                       ast.Compound(else_stmts) if else_stmts else None)]

    def _guard_elision(self, region: IfRegion) -> Optional[List[ast.Stmt]]:
        """§4.2 guard-check elimination, region flavor: an `if` whose
        sole content is a counted do-while and whose condition restates
        the loop's first test collapses to the bare `for`."""
        emitter = self.emitter
        if not emitter.options.detransform_rotation:
            return None
        term = region.head.terminator
        if not isinstance(term, CondBranch) \
                or not isinstance(term.condition, ICmp):
            return None
        cond = region.cond
        if not isinstance(cond, CondAtom) or cond.value is not term.condition:
            return None  # refined conditions are no longer a pure guard
        for loop_arm, other_arm, loop_target in (
                (region.then_region, region.else_region, term.if_true),
                (region.else_region, region.then_region, term.if_false)):
            if other_arm is not None or not isinstance(loop_arm, LoopRegion):
                continue
            if loop_arm.shape != "dowhile" or loop_arm.label:
                continue
            loop = loop_arm.loop
            if loop.header is not loop_target:
                continue
            counted = emitter._counted_plan.get(loop.header)
            if counted is None:
                continue
            if not emitter._guard_equivalent(term, loop_target, counted):
                continue
            emitter.skip.add(term.condition)
            body = self._stmts(loop_arm.body)
            self.guard_elisions += 1
            return [emitter.emit_for_loop(counted, None, body)]
        return None

    # -- switches ------------------------------------------------------

    def _switch(self, region: SwitchRegion) -> List[ast.Stmt]:
        bodies = [arm.body for arm in region.arms] + [region.default]
        if any(contains_loose_break(b) for b in bodies):
            # A loose `break` belongs to the enclosing loop; C's switch
            # would capture it, so demote to the equivalent if-chain.
            return self._switch_as_ifs(region)
        cases: List[ast.Case] = []
        for arm in region.arms:
            stmts = self._stmts(arm.body)
            if not stmts or not self._terminal(stmts[-1]):
                stmts.append(ast.Break())
            cases.append(ast.Case(arm.value, stmts))
        if region.default is not None:
            cases.append(ast.Case(None, self._stmts(region.default)))
        return [ast.Switch(self.emitter.expr(region.control), cases)]

    @staticmethod
    def _terminal(stmt: ast.Stmt) -> bool:
        return isinstance(stmt, (ast.Return, ast.Goto, ast.Continue,
                                 ast.Break))

    def _switch_as_ifs(self, region: SwitchRegion) -> List[ast.Stmt]:
        tail = self._stmts(region.default)
        for arm in reversed(region.arms):
            cond = self._cond(CondAtom(arm.compare, arm.negated))
            body = self._stmts(arm.body)
            tail = [ast.If(cond, ast.Compound(body),
                           ast.Compound(tail) if tail else None)]
        return tail

    # -- loops ---------------------------------------------------------

    def _loop(self, region: LoopRegion) -> List[ast.Stmt]:
        emitter = self.emitter
        prefix: List[ast.Stmt] = []
        if region.label:
            prefix.append(ast.Label(self._label(region.loop.header)))
        if region.shape == "dowhile":
            counted = emitter._counted_plan.get(region.loop.header)
            body = self._stmts(region.body)
            if counted is not None:
                # Plan admission (region mode) already proved the first
                # iteration's test, so the `for` upgrade is sound.
                return prefix + [emitter.emit_for_loop(counted, None, body)]
            return prefix + [ast.DoWhile(ast.Compound(body),
                                         self._cond(region.cond))]
        if region.shape == "while":
            body = self._stmts(region.body)
            stmts = prefix + [ast.While(self._cond(region.cond),
                                        ast.Compound(body))]
            stmts.extend(self._while_exit_phis(region))
            return stmts
        body = self._stmts(region.body)
        return prefix + [ast.While(ast.IntLit(1), ast.Compound(body))]

    def _while_exit_phis(self, region: LoopRegion) -> List[ast.Stmt]:
        """The while header's statements are never emitted as a block;
        its exit-edge (LCSSA) phi values land right after the loop,
        where the loop variables hold their final values."""
        emitter = self.emitter
        exit_block = region.exit
        if exit_block is None:
            return []
        out: List[ast.Stmt] = []
        for phi in exit_block.phis():
            if phi in emitter.skip:
                continue
            incoming = phi.incoming_for(region.loop.header)
            if incoming is None or incoming is phi:
                continue
            name = emitter.declare_top(phi)
            out.append(ast.ExprStmt(ast.Assign(
                "=", ast.Ident(name), emitter.expr(incoming))))
        return out
