"""Collaborative-parallelization sessions (the paper's §3.5.1 workflow).

A :class:`CollaborationSession` wraps the full loop: compile + Polly →
SPLENDID decompile → programmer edits (on the AST) → recompile with the
mini-C front end → execute and compare both correctness and modeled
speedup against the compiler-only version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import Splendid
from ..frontend import compile_source
from ..ir.module import Module
from ..minic import c_ast as ast
from ..minic.printer import print_unit
from ..minic.sema import check
from ..passes import optimize_o2
from ..polly import parallelize_module
from ..runtime import Interpreter, MachineModel


@dataclass
class SessionResult:
    original_output: List[str]
    edited_output: List[str]
    compiler_time: float
    collaborative_time: float

    @property
    def outputs_match(self) -> bool:
        return self.original_output == self.edited_output

    @property
    def speedup_over_compiler(self) -> float:
        if self.collaborative_time <= 0:
            return float("inf")
        return self.compiler_time / self.collaborative_time


class CollaborationSession:
    """One compile -> decompile -> edit -> recompile loop.

    ``cache`` (a :class:`repro.service.ArtifactCache`) makes the two
    compiler-facing steps — the initial build and every
    :meth:`recompile` — reuse previously-built IR: a session reopened
    on the same source (or an edit recompiled twice) skips the -O2 and
    parallelizer pipelines entirely by re-parsing the cached printed
    IR, which round-trips exactly.
    """

    def __init__(self, source: str, defines: Optional[Dict[str, str]] = None,
                 kernel_functions: Optional[List[str]] = None,
                 machine: Optional[MachineModel] = None,
                 cache=None, engine: Optional[str] = None):
        self.source = source
        self.defines = dict(defines or {})
        self.machine = machine or MachineModel()
        # Execution engine for evaluate(); None = process default.
        self.engine = engine
        self.cache = cache
        self._closed = False
        self.module, self.polly = self._build_parallel(
            source, kernel_functions)
        self.splendid = Splendid(self.module, "full")
        self.unit = self.splendid.decompile()
        self._edits: List[str] = []

    # Lifecycle ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the heavy state (module, AST, decompiler engine).

        Sessions hold kilobytes-to-megabytes of IR and AST per source;
        a serving layer keeping thousands of them alive needs a
        deterministic release point rather than waiting on the garbage
        collector.  Idempotent; every later use raises ``RuntimeError``.
        """
        self._closed = True
        self.module = None
        self.polly = None
        self.splendid = None
        self.unit = None

    def __enter__(self) -> "CollaborationSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("CollaborationSession is closed")

    def _build_parallel(self, source: str,
                        kernel_functions: Optional[List[str]]):
        from ..ir.printer import print_module
        key = None
        if self.cache is not None:
            key = self.cache.key_for(
                source, self.defines,
                {"kernel_functions": kernel_functions}, kind="collab-build")
            payload = self.cache.get(key)
            if payload is not None:
                from ..ir.parser import parse_ir
                from ..service.worker import polly_result_from_payload
                return (parse_ir(payload["par_ir"]),
                        polly_result_from_payload(payload.get("polly"),
                                                  payload.get("fission")))
        module = compile_source(source, self.defines)
        optimize_o2(module)
        polly = parallelize_module(module, only_functions=kernel_functions)
        if key is not None:
            from ..service.worker import outcome_to_dict
            self.cache.put(key, {
                "par_ir": print_module(module),
                "polly": [outcome_to_dict(o) for o in polly.outcomes],
                "fission": {
                    "stats": polly.fission.to_dict(),
                    "outcomes": [outcome_to_dict(o)
                                 for o in polly.fission_outcomes],
                },
            })
        return module, polly

    # Programmer-facing surface --------------------------------------------------

    def decompiled_text(self) -> str:
        self._ensure_open()
        return print_unit(self.unit)

    def apply(self, edit: Callable[[ast.TranslationUnit], ast.TranslationUnit],
              description: str = "") -> "CollaborationSession":
        self._ensure_open()
        self.unit = edit(self.unit)
        self._edits.append(description or getattr(edit, "__name__", "edit"))
        return self

    @property
    def edits(self) -> List[str]:
        return list(self._edits)

    # Evaluation ---------------------------------------------------------------------

    def recompile(self) -> Module:
        self._ensure_open()
        text = print_unit(self.unit)
        key = None
        if self.cache is not None:
            key = self.cache.key_for(text, self.defines, {},
                                     kind="collab-recompile")
            payload = self.cache.get(key)
            if payload is not None:
                from ..ir.parser import parse_ir
                return parse_ir(payload["ir"])
        module = compile_source(text, self.defines, "collab")
        optimize_o2(module)
        if key is not None:
            from ..ir.printer import print_module
            self.cache.put(key, {"ir": print_module(module)})
        return module

    def evaluate(self, entry: str = "main", kernel: str = "kernel",
                 init: str = "init") -> SessionResult:
        self._ensure_open()
        original_out = Interpreter(self.module, self.machine,
                                   engine=self.engine).run(entry).output
        edited = self.recompile()
        edited_out = Interpreter(edited, self.machine,
                                 engine=self.engine).run(entry).output

        def time_kernel(module: Module) -> float:
            interp = Interpreter(module, self.machine, engine=self.engine)
            if init in module.functions \
                    and not module.functions[init].is_declaration:
                interp.run(init)
            before = interp.wall_time
            interp.run(kernel)
            return interp.wall_time - before

        return SessionResult(
            original_output=original_out,
            edited_output=edited_out,
            compiler_time=time_kernel(self.module),
            collaborative_time=time_kernel(edited))
