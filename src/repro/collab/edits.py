"""Programmer-edit operations on decompiled units (interactive development).

These are the handful of small, source-level changes the paper's
collaboration case studies perform on SPLENDID output: adding OpenMP
pragmas to loops the compiler skipped, distributing a loop, swapping a
perfect nest, and removing a compiler-inserted sequential fallback
(Figure 2's aliasing-check cleanup).  All operations work on the mini-C
AST, so an edited unit can be re-printed, re-checked, recompiled, and
re-run.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional

from ..minic import c_ast as ast


class EditError(Exception):
    pass


def _function(unit: ast.TranslationUnit, name: str) -> ast.FunctionDef:
    try:
        return unit.function(name)
    except KeyError:
        raise EditError(f"no function named '{name}'")


def top_level_loops(function: ast.FunctionDef) -> List[ast.For]:
    """For-loops at statement level in the function body (not nested),
    looking through parallel-region compounds."""
    loops: List[ast.For] = []

    def scan(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.For):
            loops.append(stmt)
        elif isinstance(stmt, ast.Compound):
            for child in stmt.body:
                scan(child)

    if function.body is not None:
        for stmt in function.body.body:
            scan(stmt)
    return loops


def all_loops(function: ast.FunctionDef) -> List[ast.For]:
    """Every for-loop in the function, pre-order (outer before inner).

    This is the indexing the edit operations use, so nested loops are
    addressable too.
    """
    loops: List[ast.For] = []
    if function.body is not None:
        for stmt in ast.walk_stmts(function.body):
            if isinstance(stmt, ast.For):
                loops.append(stmt)
    return loops


def _loop_at(function: ast.FunctionDef, index: int) -> ast.For:
    loops = all_loops(function)
    if index >= len(loops):
        raise EditError(
            f"'{function.name}' has {len(loops)} loops; "
            f"index {index} is out of range")
    return loops[index]


def parallelize_loop(unit: ast.TranslationUnit, function: str,
                     loop_index: int, schedule: str = "static",
                     nowait: bool = True,
                     private: tuple = ()) -> ast.TranslationUnit:
    """Wrap the ``loop_index``-th loop of ``function`` in
    ``#pragma omp parallel { #pragma omp for ... }`` (a DOALL assertion
    by the programmer).  Scalars the body writes per-iteration (e.g.
    inner loop counters declared outside) go in ``private``."""
    fn = _function(unit, function)
    target = _loop_at(fn, loop_index)
    if target.pragmas:
        raise EditError("loop already carries pragmas")

    region = ast.Compound([target])
    region.pragmas = [ast.OmpPragma(directive="parallel")]
    target.pragmas = [ast.OmpPragma(directive="for", schedule=schedule,
                                    nowait=nowait,
                                    private=tuple(private))]
    _replace_stmt(fn.body, target, region)
    return unit


def distribute_loop(unit: ast.TranslationUnit, function: str,
                    loop_index: int, split_at: int) -> ast.TranslationUnit:
    """Split one loop into two consecutive loops: statements
    ``[0:split_at)`` stay in the first, the rest move to a clone."""
    fn = _function(unit, function)
    loop = _loop_at(fn, loop_index)
    body = loop.body
    if not isinstance(body, ast.Compound):
        raise EditError("loop body must be a compound to distribute")
    if not (0 < split_at < len(body.body)):
        raise EditError(
            f"split point {split_at} outside (0, {len(body.body)})")

    second = ast.For(copy.deepcopy(loop.init), copy.deepcopy(loop.condition),
                     copy.deepcopy(loop.step),
                     ast.Compound(body.body[split_at:]))
    body.body = body.body[:split_at]
    _insert_after(fn.body, loop, second)
    return unit


def interchange_nest(unit: ast.TranslationUnit, function: str,
                     loop_index: int) -> ast.TranslationUnit:
    """Swap the headers of a perfect 2-deep loop nest (legality is the
    programmer's assertion)."""
    fn = _function(unit, function)
    outer = _loop_at(fn, loop_index)
    inner = _sole_inner_loop(outer)
    if inner is None:
        raise EditError("loop is not a perfect 2-deep nest")
    outer.init, inner.init = inner.init, outer.init
    outer.condition, inner.condition = inner.condition, outer.condition
    outer.step, inner.step = inner.step, outer.step
    return unit


def _sole_inner_loop(outer: ast.For) -> Optional[ast.For]:
    body = outer.body
    if isinstance(body, ast.For):
        return body
    if isinstance(body, ast.Compound) and len(body.body) == 1 \
            and isinstance(body.body[0], ast.For):
        return body.body[0]
    return None


def remove_sequential_fallback(unit: ast.TranslationUnit,
                               function: str) -> ast.TranslationUnit:
    """Figure 2 scenario (a): the programmer knows the pointers never
    alias, so the compiler's runtime aliasing check and its sequential
    fallback are deleted, keeping only the parallel version."""
    fn = _function(unit, function)

    def rewrite(stmts: List[ast.Stmt]) -> bool:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If) and stmt.else_body is not None \
                    and _contains_parallel_region(stmt.then_body):
                replacement = stmt.then_body
                if isinstance(replacement, ast.Compound) \
                        and not replacement.pragmas:
                    stmts[i:i + 1] = list(replacement.body)
                else:
                    stmts[i] = replacement
                return True
            if isinstance(stmt, ast.Compound) and rewrite(stmt.body):
                return True
        return False

    if fn.body is None or not rewrite(fn.body.body):
        raise EditError(
            f"'{function}' has no guarded parallel version to simplify")
    return unit


def _contains_parallel_region(stmt: ast.Stmt) -> bool:
    for node in ast.walk_stmts(stmt):
        if isinstance(node, ast.Compound) and any(
                p.directive == "parallel" for p in node.pragmas):
            return True
        if isinstance(node, ast.For) and any(
                "parallel" in p.directive or p.directive == "for"
                for p in node.pragmas):
            return True
    return False


def _replace_stmt(root: ast.Compound, old: ast.Stmt, new: ast.Stmt) -> None:
    for node in ast.walk_stmts(root):
        if isinstance(node, ast.Compound):
            for i, child in enumerate(node.body):
                if child is old:
                    node.body[i] = new
                    return
        elif isinstance(node, (ast.For, ast.While, ast.DoWhile)):
            if node.body is old:
                node.body = new
                return
        elif isinstance(node, ast.If):
            if node.then_body is old:
                node.then_body = new
                return
            if node.else_body is old:
                node.else_body = new
                return
    raise EditError("statement not found in function body")


def _insert_after(root: ast.Compound, anchor: ast.Stmt,
                  new: ast.Stmt) -> None:
    for node in ast.walk_stmts(root):
        if isinstance(node, ast.Compound):
            for i, child in enumerate(node.body):
                if child is anchor:
                    node.body.insert(i + 1, new)
                    return
    raise EditError("anchor statement not found")
