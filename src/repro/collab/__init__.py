"""repro.collab — collaborative parallelization on decompiled code."""

from .edits import (EditError, all_loops, distribute_loop,
                    interchange_nest, parallelize_loop,
                    remove_sequential_fallback, top_level_loops)
from .session import CollaborationSession, SessionResult

__all__ = [
    "EditError", "all_loops", "distribute_loop", "interchange_nest", "parallelize_loop",
    "remove_sequential_fallback", "top_level_loops",
    "CollaborationSession", "SessionResult",
]
