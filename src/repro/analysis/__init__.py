"""repro.analysis — CFG, dominance, loops, dependence, and dataflow analyses."""

from .alias import AliasResult, alias, base_object, definitely_no_alias
from .cfg import (postorder, reachable_blocks, remove_unreachable_blocks,
                  reverse_postorder, rpo_index, split_edge)
from .dataflow import (DataflowResult, ForwardAnalysis,
                       UnvisitedInstructionError)
from .dependence import (AffineExpr, MemoryAccess, ParallelismReport,
                         analyze_loop_parallelism, collect_accesses,
                         match_affine, PURE_MATH_FUNCTIONS)
from .dominators import DominatorTree
from .induction import (CountedLoop, analyze_counted_loop,
                        constant_trip_count, find_induction_phi,
                        is_loop_invariant)
from .liveness import Liveness
from .loops import Loop, LoopInfo
from .manager import (CFG_ANALYSES, DOMTREE, LIVENESS, LOOPS, POSTDOMTREE,
                      STORAGE, TYPEINFER,
                      AnalysisManager, CacheStats, PreservedAnalyses,
                      function_analysis, get_domtree, get_liveness,
                      get_loop_info, get_postdomtree, get_storage,
                      get_type_inference,
                      register_function_analysis, register_module_analysis)
from .races import (RaceFinding, access_location_is_invariant,
                    find_loop_races, nowait_unsafe_loads, pair_verdict,
                    private_audit)
from .storage import (AccessPattern, StorageInfo, StorageLocation,
                      StorageRoot)
from .typeinfer import (RArray, RConflict, RecType, RFloat, RInt, RPointer,
                        RStruct, RUnknown, TypeDisagreement, TypeInference,
                        is_resolved, rectype_of_ir)

__all__ = [
    "AliasResult", "alias", "base_object", "definitely_no_alias",
    "postorder", "reachable_blocks", "remove_unreachable_blocks",
    "reverse_postorder", "rpo_index", "split_edge",
    "DataflowResult", "ForwardAnalysis", "UnvisitedInstructionError",
    "AffineExpr", "MemoryAccess", "ParallelismReport",
    "analyze_loop_parallelism", "collect_accesses", "match_affine",
    "PURE_MATH_FUNCTIONS",
    "DominatorTree",
    "CountedLoop", "analyze_counted_loop", "constant_trip_count",
    "find_induction_phi", "is_loop_invariant",
    "Liveness", "Loop", "LoopInfo",
    "CFG_ANALYSES", "DOMTREE", "LIVENESS", "LOOPS", "POSTDOMTREE",
    "STORAGE", "TYPEINFER",
    "AnalysisManager", "CacheStats", "PreservedAnalyses",
    "function_analysis", "get_domtree", "get_liveness", "get_loop_info",
    "get_postdomtree", "get_storage", "get_type_inference",
    "register_function_analysis", "register_module_analysis",
    "RaceFinding", "access_location_is_invariant", "find_loop_races",
    "nowait_unsafe_loads", "pair_verdict", "private_audit",
    "AccessPattern", "StorageInfo", "StorageLocation", "StorageRoot",
    "RArray", "RConflict", "RecType", "RFloat", "RInt", "RPointer",
    "RStruct", "RUnknown", "TypeDisagreement", "TypeInference",
    "is_resolved", "rectype_of_ir",
]
