"""Affine loop-carried dependence testing (the DOALL legality oracle).

This is the analysis heart of the Polly-style parallelizer: for a
counted loop (possibly a nest) it classifies every memory access as an
affine function of the loop's induction variable and of the nested
loops' induction variables, then runs ZIV/strong-SIV style tests per
subscript dimension.

Distinct identified allocations never alias; pointer-argument bases that
cannot be disambiguated statically are reported as *runtime alias
check* candidates (the paper's Figure 2 versioning mechanism) rather
than hard rejections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import (BinaryOp, Call, Cast, DbgValue, GetElementPtr,
                               Instruction, Load, Phi, Store)
from ..ir.values import Argument, ConstantInt, Value
from .alias import AliasResult, alias, base_object
from .induction import CountedLoop, analyze_counted_loop, is_loop_invariant
from .loops import Loop

PURE_MATH_FUNCTIONS = frozenset({
    "exp", "log", "sqrt", "pow", "fabs", "sin", "cos", "tan", "floor",
    "ceil", "fmax", "fmin",
})


@dataclass
class AffineExpr:
    """``iv_coeff*iv + sum(inner[p]*p) + sum(terms[v]*v) + const``.

    ``iv`` is the induction variable of the loop under test; ``inner``
    holds coefficients of nested loops' induction variables; ``terms``
    holds loop-invariant symbolic values.
    """

    iv_coeff: int = 0
    inner: Dict[Value, int] = field(default_factory=dict)
    terms: Dict[Value, int] = field(default_factory=dict)
    const: int = 0

    def _merge(self, a: Dict[Value, int], b: Dict[Value, int],
               sign: int) -> Dict[Value, int]:
        merged = dict(a)
        for value, coeff in b.items():
            merged[value] = merged.get(value, 0) + sign * coeff
            if merged[value] == 0:
                del merged[value]
        return merged

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineExpr(self.iv_coeff + other.iv_coeff,
                          self._merge(self.inner, other.inner, 1),
                          self._merge(self.terms, other.terms, 1),
                          self.const + other.const)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineExpr(self.iv_coeff - other.iv_coeff,
                          self._merge(self.inner, other.inner, -1),
                          self._merge(self.terms, other.terms, -1),
                          self.const - other.const)

    def scaled(self, factor: int) -> "AffineExpr":
        if factor == 0:
            return AffineExpr()
        return AffineExpr(self.iv_coeff * factor,
                          {v: c * factor for v, c in self.inner.items()},
                          {v: c * factor for v, c in self.terms.items()},
                          self.const * factor)

    def symbolic_key(self) -> Tuple:
        return tuple(sorted((id(v), c) for v, c in self.terms.items()))

    def inner_key(self) -> Tuple:
        return tuple(sorted((id(v), c) for v, c in self.inner.items()))

    @property
    def has_inner(self) -> bool:
        return bool(self.inner)


def nested_induction_phis(loop: Loop) -> Set[Phi]:
    """Induction phis of all counted loops strictly nested in ``loop``."""
    result: Set[Phi] = set()
    stack = list(loop.subloops)
    while stack:
        sub = stack.pop()
        counted = analyze_counted_loop(sub)
        if counted is not None:
            result.add(counted.phi)
        stack.extend(sub.subloops)
    return result


def match_affine(value: Value, iv: Value, loop: Loop,
                 inner_ivs: Optional[Set[Phi]] = None) -> Optional[AffineExpr]:
    """Express ``value`` as an affine function of ``iv`` (+ inner IVs)."""
    inner_ivs = inner_ivs if inner_ivs is not None else set()
    if value is iv:
        return AffineExpr(iv_coeff=1)
    if isinstance(value, ConstantInt):
        return AffineExpr(const=value.value)
    if value in inner_ivs:
        return AffineExpr(inner={value: 1})
    if is_loop_invariant(value, loop):
        return AffineExpr(terms={value: 1})
    if isinstance(value, Cast) and value.opcode in ("sext", "zext", "trunc"):
        return match_affine(value.value, iv, loop, inner_ivs)
    if isinstance(value, BinaryOp):
        if value.opcode == "add":
            lhs = match_affine(value.lhs, iv, loop, inner_ivs)
            rhs = match_affine(value.rhs, iv, loop, inner_ivs)
            if lhs is not None and rhs is not None:
                return lhs + rhs
        elif value.opcode == "sub":
            lhs = match_affine(value.lhs, iv, loop, inner_ivs)
            rhs = match_affine(value.rhs, iv, loop, inner_ivs)
            if lhs is not None and rhs is not None:
                return lhs - rhs
        elif value.opcode == "mul":
            lhs, rhs = value.lhs, value.rhs
            if isinstance(rhs, ConstantInt):
                base = match_affine(lhs, iv, loop, inner_ivs)
                if base is not None:
                    return base.scaled(rhs.value)
            if isinstance(lhs, ConstantInt):
                base = match_affine(rhs, iv, loop, inner_ivs)
                if base is not None:
                    return base.scaled(lhs.value)
    return None


@dataclass
class MemoryAccess:
    inst: Instruction           # Load or Store
    base: Value
    subscripts: Optional[List[AffineExpr]]  # None => non-affine address
    is_write: bool


@dataclass
class ParallelismReport:
    loop: Loop
    is_parallel: bool
    needs_alias_checks: List[Tuple[Value, Value]] = field(default_factory=list)
    reject_reasons: List[str] = field(default_factory=list)
    accesses: List[MemoryAccess] = field(default_factory=list)
    reductions: List[object] = field(default_factory=list)

    @property
    def is_conditionally_parallel(self) -> bool:
        return self.is_parallel and bool(self.needs_alias_checks)


def collect_accesses(counted: CountedLoop) -> Tuple[List[MemoryAccess], List[str]]:
    loop = counted.loop
    iv = counted.phi
    inner_ivs = nested_induction_phis(loop)
    accesses: List[MemoryAccess] = []
    problems: List[str] = []
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, (Load, Store)):
                pointer = inst.pointer
                base = base_object(pointer)
                subscripts = _subscripts_of(pointer, iv, loop, inner_ivs)
                accesses.append(MemoryAccess(
                    inst, base, subscripts, isinstance(inst, Store)))
            elif isinstance(inst, Call):
                name = inst.callee_name
                if name not in PURE_MATH_FUNCTIONS:
                    problems.append(f"call to non-pure function '{name}'")
    return accesses, problems


def _subscripts_of(pointer: Value, iv: Value, loop: Loop,
                   inner_ivs: Set[Phi]) -> Optional[List[AffineExpr]]:
    """Affine subscript vector for a (possibly chained) GEP address."""
    subscripts: List[AffineExpr] = []
    current = pointer
    while isinstance(current, GetElementPtr):
        dims = []
        for index in current.indices:
            expr = match_affine(index, iv, loop, inner_ivs)
            if expr is None:
                return None
            dims.append(expr)
        subscripts = dims + subscripts
        current = current.pointer
    return subscripts


def _dimension_forces_same_iteration(a: AffineExpr, b: AffineExpr) -> bool:
    """True if subscript equality in this dimension implies both accesses
    happen in the *same* iteration of the tested loop (iv1 == iv2)."""
    if a.symbolic_key() != b.symbolic_key():
        return False  # unknown symbols: cannot force anything
    if a.has_inner or b.has_inner:
        return False  # inner IVs add slack; cannot force iv1 == iv2
    if a.iv_coeff != b.iv_coeff:
        return False
    coeff = a.iv_coeff
    delta = b.const - a.const
    if coeff == 0:
        return False
    # a*iv1 + c == a*iv2 + c'  =>  iv1 - iv2 = delta / coeff.
    if delta == 0:
        return True  # forces iv1 == iv2
    return False


def _dimension_never_collides(a: AffineExpr, b: AffineExpr) -> bool:
    """True if subscript equality is impossible for ANY iteration pair."""
    if a.symbolic_key() != b.symbolic_key():
        return False
    if a.has_inner or b.has_inner:
        # Inner IVs present: only the trivially-identical case is safe to
        # call out, and that collides rather than never-collides.
        return False
    if a.iv_coeff != b.iv_coeff:
        return False
    coeff = a.iv_coeff
    delta = b.const - a.const
    if coeff == 0:
        return delta != 0  # ZIV with distinct constants: never equal
    return delta % coeff != 0


def _pair_has_carried_dependence(a: MemoryAccess, b: MemoryAccess) -> bool:
    if a.subscripts is None or b.subscripts is None:
        return True
    if len(a.subscripts) != len(b.subscripts):
        return True
    if not a.subscripts:  # scalar location touched every iteration
        return True
    for sa, sb in zip(a.subscripts, b.subscripts):
        if _dimension_never_collides(sa, sb):
            return False
        if _dimension_forces_same_iteration(sa, sb):
            return False
    return True


# ---------------------------------------------------------------------------
# Statement-dependence partition (the fission planner's legality core)
# ---------------------------------------------------------------------------

@dataclass
class StatementGroup:
    """One fission candidate: a set of store-rooted statements (plus any
    scalar recurrences pinned to them) that must execute in a single
    sub-loop."""

    stores: List[Store]
    instructions: List[Instruction]     # slice, in program order
    carried: bool                       # has an internal carried dependence
    expansions: List[Value] = field(default_factory=list)
    # ``expansions`` lists recurrence-chain SSA values this (clean)
    # group reads; fission must first spill them to a temp array
    # (scalar expansion) so the group can leave the recurrence's loop.

    @property
    def has_recurrence(self) -> bool:
        """True when the group pins a scalar recurrence (a header phi):
        its statements can never be moved out of the first sub-loop."""
        return any(isinstance(inst, Phi) for inst in self.instructions)


@dataclass
class LoopPartition:
    """Topologically ordered, maximally merged statement groups of a
    single-block counted loop.  ``reasons`` explains a degenerate
    (empty) partition."""

    counted: Optional[CountedLoop]
    groups: List[StatementGroup] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)

    @property
    def is_mixed(self) -> bool:
        """At least one parallel-candidate group can be split away from
        at least one other group."""
        return len(self.groups) >= 2 \
            and any(not g.carried for g in self.groups)

    @property
    def clean_groups(self) -> List[StatementGroup]:
        return [g for g in self.groups if not g.carried]


def _loop_machinery(counted: CountedLoop) -> Set[Instruction]:
    block = counted.loop.header
    machinery = {counted.phi, counted.step_inst, counted.compare,
                 block.terminator}
    for inst in block.instructions:
        if isinstance(inst, Cast) and inst.value is counted.step_inst:
            machinery.add(inst)
    return machinery


def _definite_distance(a: MemoryAccess, b: MemoryAccess) -> Optional[int]:
    """For a pair already classified ``definite``: the unique iteration
    distance ``iv_a - iv_b`` at which the accesses collide, or None when
    the dimensions do not pin a single distance."""
    distance: Optional[int] = None
    for sa, sb in zip(a.subscripts, b.subscripts):
        if sa.symbolic_key() != sb.symbolic_key() \
                or sa.inner_key() != sb.inner_key() \
                or sa.has_inner or sa.iv_coeff != sb.iv_coeff:
            return None
        coeff = sa.iv_coeff
        delta = sb.const - sa.const
        if coeff == 0:
            continue                    # ZIV-equal: unconstrained
        if delta % coeff != 0:
            return None
        d = delta // coeff
        if distance is not None and d != distance:
            return None                 # dimensions disagree: no collision
        distance = d
    return distance


def _node_accesses(instructions: List[Instruction], counted: CountedLoop,
                   inner_ivs: Set[Phi]) -> List[MemoryAccess]:
    loop = counted.loop
    accesses = []
    for inst in instructions:
        if isinstance(inst, (Load, Store)):
            pointer = inst.pointer
            accesses.append(MemoryAccess(
                inst, base_object(pointer),
                _subscripts_of(pointer, counted.phi, loop, inner_ivs),
                isinstance(inst, Store)))
    return accesses


class _FissionNode:
    def __init__(self, index: int, stores, instructions, position: int):
        self.index = index
        self.stores = list(stores)
        self.instructions = list(instructions)
        self.position = position        # earliest root position (tie-break)
        self.accesses: List[MemoryAccess] = []
        self.self_carried = False
        self.is_recurrence = False
        self.scalar_reads: List[Value] = []   # recurrence values consumed


def partition_loop_statements(counted: CountedLoop,
                              allow_expansion: bool = False
                              ) -> LoopPartition:
    """Partition a single-block counted loop's statements into maximal
    dependence-isolated groups, ordered so that running each group's
    sub-loop to completion before the next preserves every dependence.

    Statements are rooted at stores; scalar recurrences (non-IV header
    phis) form their own always-carried pseudo-statements.  Pairwise
    dependences are classified with the same per-dimension verdict
    lattice the race checker uses; an ``unknown`` or bidirectional pair
    fuses the statements into one group (SCC).  With
    ``allow_expansion``, a clean statement that reads a recurrence's
    per-iteration value is kept separable and the read value is recorded
    in the group's ``expansions`` (the fission driver must spill it to a
    temp array before distributing).
    """
    from .races import pair_verdict
    loop = counted.loop
    partition = LoopPartition(counted)
    if loop.header is not loop.latch:
        partition.reasons.append("multi-block loop body")
        return partition
    block = loop.header
    machinery = _loop_machinery(counted)
    inner_ivs = nested_induction_phis(loop)
    position = {inst: i for i, inst in enumerate(block.instructions)}

    for inst in block.instructions:
        if isinstance(inst, Call) \
                and inst.callee_name not in PURE_MATH_FUNCTIONS:
            partition.reasons.append(
                f"call to non-pure function '{inst.callee_name}'")
            return partition

    # Recurrence pseudo-nodes: one per non-IV header phi, holding the
    # phi plus the backward slice of its carried (latch) value.
    nodes: List[_FissionNode] = []
    recurrence_members: Dict[Instruction, _FissionNode] = {}
    for phi in loop.header_phis():
        if phi is counted.phi:
            continue
        slice_values: Set[Instruction] = {phi}
        worklist = [value for value, pred in phi.incoming
                    if pred in loop.blocks]
        while worklist:
            value = worklist.pop()
            if not isinstance(value, Instruction) or value.parent is not block:
                continue
            if value in slice_values or value in machinery \
                    or isinstance(value, Phi):
                continue
            slice_values.add(value)
            worklist.extend(value.operands)
        # Only instructions that transitively *depend on* the phi are
        # pinned to the recurrence; phi-independent slice values (e.g. a
        # load both the recurrence and a clean statement read) are pure
        # and clonable, so they must not force scalar expansion.
        members: Set[Instruction] = {phi}
        changed = True
        while changed:
            changed = False
            for value in slice_values:
                if value in members:
                    continue
                if any(op in members for op in value.operands):
                    members.add(value)
                    changed = True
        # The node owns the whole slice (its loads must take part in the
        # dependence tests), but only the phi-dependent ``members`` are
        # unmovable and trigger scalar reads in store slices.
        node = _FissionNode(len(nodes), [], sorted(slice_values,
                                                   key=lambda i: position[i]),
                            position[phi])
        node.is_recurrence = True
        node.self_carried = True
        nodes.append(node)
        for inst in members:
            recurrence_members[inst] = node

    # Store-rooted statement nodes: each store plus its backward slice,
    # stopping at loop machinery and at recurrence members (those stay
    # with their recurrence; the crossing value is a scalar read).
    orphan_ok: Set[Instruction] = set(machinery)
    for node in nodes:
        orphan_ok.update(node.instructions)
    for store in block.instructions:
        if not isinstance(store, Store):
            continue
        slice_insts: List[Instruction] = []
        scalar_reads: List[Value] = []
        worklist2: List[Instruction] = [store]
        seen2: Set[Instruction] = set()
        while worklist2:
            inst = worklist2.pop()
            if inst in seen2 or inst in machinery:
                continue
            if inst in recurrence_members:
                scalar_reads.append(inst)
                continue
            seen2.add(inst)
            slice_insts.append(inst)
            for op in inst.operands:
                if isinstance(op, Instruction) and op.parent is block:
                    worklist2.append(op)
        node = _FissionNode(len(nodes), [store], slice_insts,
                            position[store])
        node.scalar_reads = sorted(set(scalar_reads),
                                   key=lambda v: position[v])
        nodes.append(node)
        orphan_ok.update(slice_insts)

    store_nodes = [n for n in nodes if not n.is_recurrence]
    if not store_nodes:
        partition.reasons.append("loop has no store statements")
        return partition

    # Any loop instruction outside every slice must not read memory:
    # a live-out load could otherwise observe a moved group's stores in
    # the wrong order.  (Pure arithmetic orphans stay in the first
    # sub-loop and are harmless.)
    for inst in block.instructions:
        if isinstance(inst, (DbgValue,)) or inst in orphan_ok:
            continue
        if isinstance(inst, Load):
            partition.reasons.append(
                "loop contains a load outside every statement slice")
            return partition

    for node in nodes:
        node.instructions.sort(key=lambda i: position[i])
        node.accesses = _node_accesses(node.instructions, counted, inner_ivs)

    edges: Set[Tuple[int, int, bool]] = set()

    def add_edge(src: _FissionNode, dst: _FissionNode, carried: bool) -> None:
        if src is dst:
            if carried:
                src.self_carried = True
            return
        edges.add((src.index, dst.index, carried))

    all_nodes = nodes
    for i, x in enumerate(all_nodes):
        for y in all_nodes[i:]:
            for a in x.accesses:
                for b in y.accesses:
                    if x is y and a.inst is b.inst:
                        continue
                    if not (a.is_write or b.is_write):
                        continue
                    relation = alias(a.base, b.base)
                    if relation is AliasResult.NO_ALIAS:
                        continue
                    if a.base is not b.base:
                        add_edge(x, y, True)
                        add_edge(y, x, True)
                        continue
                    verdict = pair_verdict(a, b)
                    if verdict == "never":
                        continue
                    if verdict == "same-iter":
                        if position[a.inst] <= position[b.inst]:
                            add_edge(x, y, False)
                        else:
                            add_edge(y, x, False)
                        continue
                    if verdict == "definite":
                        d = _definite_distance(a, b)
                        if d is not None and d > 0:
                            add_edge(y, x, True)   # b at earlier iteration
                            continue
                        if d is not None and d < 0:
                            add_edge(x, y, True)
                            continue
                        if d == 0:
                            if position[a.inst] <= position[b.inst]:
                                add_edge(x, y, False)
                            else:
                                add_edge(y, x, False)
                            continue
                    add_edge(x, y, True)
                    add_edge(y, x, True)

    # Scalar reads of recurrences: without expansion the reader is
    # welded to the recurrence; with expansion it only needs to run
    # after it (the spilled temp carries the per-iteration values).
    for node in store_nodes:
        for value in node.scalar_reads:
            rec = recurrence_members[value]
            add_edge(rec, node, False)
            if not allow_expansion:
                add_edge(node, rec, True)

    groups = _condense_and_merge(nodes, edges, allow_expansion)
    partition.groups = groups
    return partition


def _condense_and_merge(nodes: List["_FissionNode"],
                        edges: Set[Tuple[int, int, bool]],
                        allow_expansion: bool) -> List[StatementGroup]:
    """SCC-condense the statement graph, topologically order the SCCs
    (preferring to keep same-class components adjacent), then merge
    adjacent compatible components into maximal groups."""
    n = len(nodes)
    succ: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for src, dst, _carried in edges:
        succ[src].add(dst)

    # Iterative Tarjan SCC.
    index_counter = [0]
    indices: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    comp_of: Dict[int, int] = {}
    comp_count = [0]

    def strongconnect(root: int) -> None:
        work = [(root, iter(sorted(succ[root])))]
        indices[root] = low[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in indices:
                    indices[w] = low[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(succ[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], indices[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == indices[v]:
                comp = comp_count[0]
                comp_count[0] += 1
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp_of[w] = comp
                    if w == v:
                        break

    for i in range(n):
        if i not in indices:
            strongconnect(i)

    comps: Dict[int, List[_FissionNode]] = {}
    for i, node in enumerate(nodes):
        comps.setdefault(comp_of[i], []).append(node)
    carried_between: Set[Tuple[int, int]] = set()
    comp_succ: Dict[int, Set[int]] = {c: set() for c in comps}
    comp_pred_count: Dict[int, int] = {c: 0 for c in comps}
    for src, dst, carried in edges:
        cs, cd = comp_of[src], comp_of[dst]
        if cs == cd:
            continue
        if cd not in comp_succ[cs]:
            comp_succ[cs].add(cd)
            comp_pred_count[cd] += 1
        if carried:
            carried_between.add((cs, cd))

    def comp_carried(c: int) -> bool:
        members = comps[c]
        if len(members) > 1:
            return True
        return members[0].self_carried

    def comp_position(c: int) -> int:
        return min(node.position for node in comps[c])

    # Kahn topological order; prefer continuing the previous component's
    # class so mergeable components end up adjacent, then program order.
    ready = [c for c in comps if comp_pred_count[c] == 0]
    order: List[int] = []
    last_class: Optional[bool] = None
    while ready:
        ready.sort(key=lambda c: (comp_carried(c) != last_class,
                                  comp_position(c)))
        current = ready.pop(0)
        order.append(current)
        last_class = comp_carried(current)
        for nxt in sorted(comp_succ[current]):
            comp_pred_count[nxt] -= 1
            if comp_pred_count[nxt] == 0:
                ready.append(nxt)

    def build_group(comp_ids: List[int]) -> StatementGroup:
        members: List[_FissionNode] = []
        for c in comp_ids:
            members.extend(comps[c])
        members.sort(key=lambda node: node.position)
        stores: List[Store] = []
        instructions: List[Instruction] = []
        expansions: List[Value] = []
        carried = any(comp_carried(c) for c in comp_ids)
        for node in members:
            stores.extend(node.stores)
            instructions.extend(node.instructions)
            if not node.is_recurrence:
                expansions.extend(node.scalar_reads)
        group = StatementGroup(stores, instructions, carried)
        if not carried and allow_expansion:
            group.expansions = sorted(set(expansions),
                                      key=lambda v: getattr(v, "name", ""))
        return group

    merged: List[List[int]] = []
    for c in order:
        if merged:
            prev = merged[-1]
            prev_carried = any(comp_carried(p) for p in prev)
            if prev_carried and comp_carried(c):
                prev.append(c)
                continue
            if not prev_carried and not comp_carried(c):
                clash = any((p, c) in carried_between
                            or (c, p) in carried_between for p in prev)
                if not clash:
                    prev.append(c)
                    continue
        merged.append([c])
    return [build_group(chunk) for chunk in merged]


def analyze_loop_parallelism(counted: CountedLoop,
                             allow_reductions: bool = False
                             ) -> ParallelismReport:
    """Decide whether the counted loop is DOALL (§3.2's 'no dependence
    across iterations'), possibly conditional on runtime alias checks.

    With ``allow_reductions`` (the §7 extension), carried dependences
    that form reassociable reduction chains are tolerated and reported
    in ``report.reductions`` instead of blocking parallelization.
    """
    from .reduction import find_reductions, reduction_instructions
    loop = counted.loop
    report = ParallelismReport(loop, is_parallel=True)
    reduction_members = set()
    if allow_reductions:
        report.reductions = find_reductions(counted)
        reduction_members = reduction_instructions(report.reductions)

    # Loop-carried scalar dependences: any header phi besides the IV.
    # (Phis of *nested* headers are private to one iteration and fine.)
    for phi in loop.header_phis():
        if phi is not counted.phi:
            report.is_parallel = False
            report.reject_reasons.append(
                f"loop-carried scalar dependence through phi %{phi.name or '?'}")

    accesses, problems = collect_accesses(counted)
    report.accesses = accesses
    if problems:
        report.is_parallel = False
        report.reject_reasons.extend(sorted(set(problems)))

    alias_pairs: Set[Tuple[int, int]] = set()
    alias_values: List[Tuple[Value, Value]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not (a.is_write or b.is_write):
                continue
            relation = alias(a.base, b.base)
            if relation is AliasResult.NO_ALIAS:
                continue
            if a.base is not b.base:
                # May-alias between distinct bases: version with a runtime
                # check instead of giving up (Figure 2).
                key = tuple(sorted((id(a.base), id(b.base))))
                if key not in alias_pairs:
                    alias_pairs.add(key)
                    alias_values.append((a.base, b.base))
                continue
            if a.inst in reduction_members and b.inst in reduction_members:
                # Both ends of a reassociable reduction chain: legal.
                continue
            if _pair_has_carried_dependence(a, b):
                report.is_parallel = False
                report.reject_reasons.append(
                    f"loop-carried dependence between {a.inst.opcode} and "
                    f"{b.inst.opcode} on base '{getattr(a.base, 'name', '?')}'")
    report.needs_alias_checks = alias_values if report.is_parallel else []
    return report
