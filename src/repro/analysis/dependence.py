"""Affine loop-carried dependence testing (the DOALL legality oracle).

This is the analysis heart of the Polly-style parallelizer: for a
counted loop (possibly a nest) it classifies every memory access as an
affine function of the loop's induction variable and of the nested
loops' induction variables, then runs ZIV/strong-SIV style tests per
subscript dimension.

Distinct identified allocations never alias; pointer-argument bases that
cannot be disambiguated statically are reported as *runtime alias
check* candidates (the paper's Figure 2 versioning mechanism) rather
than hard rejections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import (BinaryOp, Call, Cast, DbgValue, GetElementPtr,
                               Instruction, Load, Phi, Store)
from ..ir.values import Argument, ConstantInt, Value
from .alias import AliasResult, alias, base_object
from .induction import CountedLoop, analyze_counted_loop, is_loop_invariant
from .loops import Loop

PURE_MATH_FUNCTIONS = frozenset({
    "exp", "log", "sqrt", "pow", "fabs", "sin", "cos", "tan", "floor",
    "ceil", "fmax", "fmin",
})


@dataclass
class AffineExpr:
    """``iv_coeff*iv + sum(inner[p]*p) + sum(terms[v]*v) + const``.

    ``iv`` is the induction variable of the loop under test; ``inner``
    holds coefficients of nested loops' induction variables; ``terms``
    holds loop-invariant symbolic values.
    """

    iv_coeff: int = 0
    inner: Dict[Value, int] = field(default_factory=dict)
    terms: Dict[Value, int] = field(default_factory=dict)
    const: int = 0

    def _merge(self, a: Dict[Value, int], b: Dict[Value, int],
               sign: int) -> Dict[Value, int]:
        merged = dict(a)
        for value, coeff in b.items():
            merged[value] = merged.get(value, 0) + sign * coeff
            if merged[value] == 0:
                del merged[value]
        return merged

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineExpr(self.iv_coeff + other.iv_coeff,
                          self._merge(self.inner, other.inner, 1),
                          self._merge(self.terms, other.terms, 1),
                          self.const + other.const)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineExpr(self.iv_coeff - other.iv_coeff,
                          self._merge(self.inner, other.inner, -1),
                          self._merge(self.terms, other.terms, -1),
                          self.const - other.const)

    def scaled(self, factor: int) -> "AffineExpr":
        if factor == 0:
            return AffineExpr()
        return AffineExpr(self.iv_coeff * factor,
                          {v: c * factor for v, c in self.inner.items()},
                          {v: c * factor for v, c in self.terms.items()},
                          self.const * factor)

    def symbolic_key(self) -> Tuple:
        return tuple(sorted((id(v), c) for v, c in self.terms.items()))

    def inner_key(self) -> Tuple:
        return tuple(sorted((id(v), c) for v, c in self.inner.items()))

    @property
    def has_inner(self) -> bool:
        return bool(self.inner)


def nested_induction_phis(loop: Loop) -> Set[Phi]:
    """Induction phis of all counted loops strictly nested in ``loop``."""
    result: Set[Phi] = set()
    stack = list(loop.subloops)
    while stack:
        sub = stack.pop()
        counted = analyze_counted_loop(sub)
        if counted is not None:
            result.add(counted.phi)
        stack.extend(sub.subloops)
    return result


def match_affine(value: Value, iv: Value, loop: Loop,
                 inner_ivs: Optional[Set[Phi]] = None) -> Optional[AffineExpr]:
    """Express ``value`` as an affine function of ``iv`` (+ inner IVs)."""
    inner_ivs = inner_ivs if inner_ivs is not None else set()
    if value is iv:
        return AffineExpr(iv_coeff=1)
    if isinstance(value, ConstantInt):
        return AffineExpr(const=value.value)
    if value in inner_ivs:
        return AffineExpr(inner={value: 1})
    if is_loop_invariant(value, loop):
        return AffineExpr(terms={value: 1})
    if isinstance(value, Cast) and value.opcode in ("sext", "zext", "trunc"):
        return match_affine(value.value, iv, loop, inner_ivs)
    if isinstance(value, BinaryOp):
        if value.opcode == "add":
            lhs = match_affine(value.lhs, iv, loop, inner_ivs)
            rhs = match_affine(value.rhs, iv, loop, inner_ivs)
            if lhs is not None and rhs is not None:
                return lhs + rhs
        elif value.opcode == "sub":
            lhs = match_affine(value.lhs, iv, loop, inner_ivs)
            rhs = match_affine(value.rhs, iv, loop, inner_ivs)
            if lhs is not None and rhs is not None:
                return lhs - rhs
        elif value.opcode == "mul":
            lhs, rhs = value.lhs, value.rhs
            if isinstance(rhs, ConstantInt):
                base = match_affine(lhs, iv, loop, inner_ivs)
                if base is not None:
                    return base.scaled(rhs.value)
            if isinstance(lhs, ConstantInt):
                base = match_affine(rhs, iv, loop, inner_ivs)
                if base is not None:
                    return base.scaled(lhs.value)
    return None


@dataclass
class MemoryAccess:
    inst: Instruction           # Load or Store
    base: Value
    subscripts: Optional[List[AffineExpr]]  # None => non-affine address
    is_write: bool


@dataclass
class ParallelismReport:
    loop: Loop
    is_parallel: bool
    needs_alias_checks: List[Tuple[Value, Value]] = field(default_factory=list)
    reject_reasons: List[str] = field(default_factory=list)
    accesses: List[MemoryAccess] = field(default_factory=list)
    reductions: List[object] = field(default_factory=list)

    @property
    def is_conditionally_parallel(self) -> bool:
        return self.is_parallel and bool(self.needs_alias_checks)


def collect_accesses(counted: CountedLoop) -> Tuple[List[MemoryAccess], List[str]]:
    loop = counted.loop
    iv = counted.phi
    inner_ivs = nested_induction_phis(loop)
    accesses: List[MemoryAccess] = []
    problems: List[str] = []
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, (Load, Store)):
                pointer = inst.pointer
                base = base_object(pointer)
                subscripts = _subscripts_of(pointer, iv, loop, inner_ivs)
                accesses.append(MemoryAccess(
                    inst, base, subscripts, isinstance(inst, Store)))
            elif isinstance(inst, Call):
                name = inst.callee_name
                if name not in PURE_MATH_FUNCTIONS:
                    problems.append(f"call to non-pure function '{name}'")
    return accesses, problems


def _subscripts_of(pointer: Value, iv: Value, loop: Loop,
                   inner_ivs: Set[Phi]) -> Optional[List[AffineExpr]]:
    """Affine subscript vector for a (possibly chained) GEP address."""
    subscripts: List[AffineExpr] = []
    current = pointer
    while isinstance(current, GetElementPtr):
        dims = []
        for index in current.indices:
            expr = match_affine(index, iv, loop, inner_ivs)
            if expr is None:
                return None
            dims.append(expr)
        subscripts = dims + subscripts
        current = current.pointer
    return subscripts


def _dimension_forces_same_iteration(a: AffineExpr, b: AffineExpr) -> bool:
    """True if subscript equality in this dimension implies both accesses
    happen in the *same* iteration of the tested loop (iv1 == iv2)."""
    if a.symbolic_key() != b.symbolic_key():
        return False  # unknown symbols: cannot force anything
    if a.has_inner or b.has_inner:
        return False  # inner IVs add slack; cannot force iv1 == iv2
    if a.iv_coeff != b.iv_coeff:
        return False
    coeff = a.iv_coeff
    delta = b.const - a.const
    if coeff == 0:
        return False
    # a*iv1 + c == a*iv2 + c'  =>  iv1 - iv2 = delta / coeff.
    if delta == 0:
        return True  # forces iv1 == iv2
    return False


def _dimension_never_collides(a: AffineExpr, b: AffineExpr) -> bool:
    """True if subscript equality is impossible for ANY iteration pair."""
    if a.symbolic_key() != b.symbolic_key():
        return False
    if a.has_inner or b.has_inner:
        # Inner IVs present: only the trivially-identical case is safe to
        # call out, and that collides rather than never-collides.
        return False
    if a.iv_coeff != b.iv_coeff:
        return False
    coeff = a.iv_coeff
    delta = b.const - a.const
    if coeff == 0:
        return delta != 0  # ZIV with distinct constants: never equal
    return delta % coeff != 0


def _pair_has_carried_dependence(a: MemoryAccess, b: MemoryAccess) -> bool:
    if a.subscripts is None or b.subscripts is None:
        return True
    if len(a.subscripts) != len(b.subscripts):
        return True
    if not a.subscripts:  # scalar location touched every iteration
        return True
    for sa, sb in zip(a.subscripts, b.subscripts):
        if _dimension_never_collides(sa, sb):
            return False
        if _dimension_forces_same_iteration(sa, sb):
            return False
    return True


def analyze_loop_parallelism(counted: CountedLoop,
                             allow_reductions: bool = False
                             ) -> ParallelismReport:
    """Decide whether the counted loop is DOALL (§3.2's 'no dependence
    across iterations'), possibly conditional on runtime alias checks.

    With ``allow_reductions`` (the §7 extension), carried dependences
    that form reassociable reduction chains are tolerated and reported
    in ``report.reductions`` instead of blocking parallelization.
    """
    from .reduction import find_reductions, reduction_instructions
    loop = counted.loop
    report = ParallelismReport(loop, is_parallel=True)
    reduction_members = set()
    if allow_reductions:
        report.reductions = find_reductions(counted)
        reduction_members = reduction_instructions(report.reductions)

    # Loop-carried scalar dependences: any header phi besides the IV.
    # (Phis of *nested* headers are private to one iteration and fine.)
    for phi in loop.header_phis():
        if phi is not counted.phi:
            report.is_parallel = False
            report.reject_reasons.append(
                f"loop-carried scalar dependence through phi %{phi.name or '?'}")

    accesses, problems = collect_accesses(counted)
    report.accesses = accesses
    if problems:
        report.is_parallel = False
        report.reject_reasons.extend(sorted(set(problems)))

    alias_pairs: Set[Tuple[int, int]] = set()
    alias_values: List[Tuple[Value, Value]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not (a.is_write or b.is_write):
                continue
            relation = alias(a.base, b.base)
            if relation is AliasResult.NO_ALIAS:
                continue
            if a.base is not b.base:
                # May-alias between distinct bases: version with a runtime
                # check instead of giving up (Figure 2).
                key = tuple(sorted((id(a.base), id(b.base))))
                if key not in alias_pairs:
                    alias_pairs.add(key)
                    alias_values.append((a.base, b.base))
                continue
            if a.inst in reduction_members and b.inst in reduction_members:
                # Both ends of a reassociable reduction chain: legal.
                continue
            if _pair_has_carried_dependence(a, b):
                report.is_parallel = False
                report.reject_reasons.append(
                    f"loop-carried dependence between {a.inst.opcode} and "
                    f"{b.inst.opcode} on base '{getattr(a.base, 'name', '?')}'")
    report.needs_alias_checks = alias_values if report.is_parallel else []
    return report
