"""Induction-variable and counted-loop analysis.

A *counted loop* has a single integer induction variable ``iv`` that
starts at a loop-invariant value, advances by a constant step each
iteration, and controls the single exit through a comparison against a
loop-invariant bound.  Both the top-test (``for``/``while``) and the
rotated (``do-while``) shapes are recognized; the rotated shape is what
Polly-parallelized IR exhibits and what SPLENDID de-transforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.block import BasicBlock
from ..ir.instructions import (BinaryOp, CondBranch, ICmp, Instruction, Phi,
                               SWAPPED_PREDICATE)
from ..ir.values import Argument, Constant, ConstantInt, Value
from .loops import Loop


@dataclass
class CountedLoop:
    """Everything needed to print ``for (iv = start; iv PRED bound; iv += step)``."""

    loop: Loop
    phi: Phi                       # the induction variable
    start: Value                   # initial value (from the preheader edge)
    step: ConstantInt              # constant stride
    step_inst: BinaryOp            # iv.next = add iv, step
    bound: Value                   # loop-invariant limit
    predicate: str                 # normalized: "iv <pred> bound" CONTINUES the loop
    compare: ICmp                  # the controlling comparison
    compares_next: bool            # condition tests iv.next rather than iv
    exiting_block: BasicBlock
    exit_on_true: bool             # branch goes OUT of the loop when cond is true

    @property
    def is_rotated(self) -> bool:
        return self.exiting_block is not self.loop.header

    def continue_predicate(self) -> str:
        """Predicate P such that the loop continues while ``iv P bound``."""
        return self.predicate


def is_loop_invariant(value: Value, loop: Loop) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks
    return True


def find_induction_phi(loop: Loop) -> Optional[Phi]:
    counted = analyze_counted_loop(loop)
    return counted.phi if counted is not None else None


def analyze_counted_loop(loop: Loop) -> CountedLoop:
    """Return the counted-loop description, or ``None`` if not counted."""
    latch = loop.latch
    if latch is None:
        return None
    exiting = loop.exiting_blocks
    if len(exiting) != 1:
        return None
    exiting_block = exiting[0]
    term = exiting_block.terminator
    if not isinstance(term, CondBranch) or not isinstance(term.condition, ICmp):
        return None
    compare: ICmp = term.condition
    exit_on_true = term.if_true not in loop.blocks
    if not exit_on_true and term.if_false in loop.blocks:
        return None  # both targets inside the loop: not an exit test

    preheader_preds = [p for p in loop.header.predecessors
                       if p not in loop.blocks]
    if len(preheader_preds) != 1:
        return None
    entry_pred = preheader_preds[0]

    for phi in loop.header_phis():
        if not phi.type.is_integer:
            continue
        start = phi.incoming_for(entry_pred)
        latch_value = phi.incoming_for(latch)
        if start is None or latch_value is None:
            continue
        step_inst, step = _match_step(phi, latch_value, loop)
        if step_inst is None:
            continue
        counted = _match_exit_compare(
            loop, phi, step_inst, step, start, compare,
            exiting_block, exit_on_true)
        if counted is not None:
            return counted
    return None


def _match_step(phi: Phi, latch_value: Value, loop: Loop):
    """Match ``latch_value = add/sub phi, C`` (within the loop)."""
    if not isinstance(latch_value, BinaryOp):
        return None, None
    if latch_value.parent not in loop.blocks:
        return None, None
    if latch_value.opcode == "add":
        if latch_value.lhs is phi and isinstance(latch_value.rhs, ConstantInt):
            return latch_value, latch_value.rhs
        if latch_value.rhs is phi and isinstance(latch_value.lhs, ConstantInt):
            return latch_value, latch_value.lhs
    if latch_value.opcode == "sub":
        if latch_value.lhs is phi and isinstance(latch_value.rhs, ConstantInt):
            negated = ConstantInt(latch_value.rhs.type, -latch_value.rhs.value)
            return latch_value, negated
    return None, None


def _match_exit_compare(loop, phi, step_inst, step, start, compare,
                        exiting_block, exit_on_true) -> Optional[CountedLoop]:
    lhs, rhs = compare.lhs, compare.rhs
    predicate = compare.predicate

    def candidate(iv_side: Value, bound_side: Value, pred: str):
        # The exit test often compares a widened copy of the IV
        # (e.g. `icmp sle (sext iv.next), %ub`); look through the casts.
        from ..ir.instructions import Cast
        while isinstance(iv_side, Cast) and iv_side.opcode in ("sext",
                                                               "zext"):
            iv_side = iv_side.value
        if iv_side is phi:
            compares_next = False
        elif iv_side is step_inst:
            compares_next = True
        else:
            return None
        if not is_loop_invariant(bound_side, loop):
            return None
        # Normalize to a CONTINUE predicate: loop continues while iv P bound.
        if exit_on_true:
            from ..ir.instructions import INVERTED_PREDICATE
            if pred not in INVERTED_PREDICATE:
                return None
            pred = INVERTED_PREDICATE[pred]
        return CountedLoop(
            loop=loop, phi=phi, start=start, step=step, step_inst=step_inst,
            bound=bound_side, predicate=pred, compare=compare,
            compares_next=compares_next, exiting_block=exiting_block,
            exit_on_true=exit_on_true)

    result = candidate(lhs, rhs, predicate)
    if result is not None:
        return result
    swapped = SWAPPED_PREDICATE.get(predicate)
    if swapped is not None:
        return candidate(rhs, lhs, swapped)
    return None


def constant_trip_count(counted: CountedLoop) -> Optional[int]:
    """Exact trip count when start/bound are constants (top-test semantics)."""
    if not isinstance(counted.start, ConstantInt):
        return None
    if not isinstance(counted.bound, ConstantInt):
        return None
    start = counted.start.value
    bound = counted.bound.value
    step = counted.step.value
    if step == 0:
        return None
    pred = counted.predicate
    count = 0
    iv = start
    # Direct simulation is fine: PolyBench bounds are small at test sizes,
    # and this helper is only used on constant-bound loops in tests.
    limit = 10_000_000
    while count < limit:
        if pred == "slt" and not iv < bound:
            break
        if pred == "sle" and not iv <= bound:
            break
        if pred == "sgt" and not iv > bound:
            break
        if pred == "sge" and not iv >= bound:
            break
        if pred == "ne" and not iv != bound:
            break
        if pred == "eq" and not iv == bound:
            break
        count += 1
        iv += step
    return count
