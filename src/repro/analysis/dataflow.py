"""A small generic dataflow framework.

SPLENDID's Most-Recent-Variable-Definition analysis (paper Algorithm 1)
is a forward, instruction-granularity dataflow; the framework here runs
any such analysis to a fixpoint over the CFG in reverse postorder.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

from ..ir.block import BasicBlock
from ..ir.instructions import Instruction
from ..ir.module import Function
from .cfg import reverse_postorder

State = TypeVar("State")


class UnvisitedInstructionError(KeyError):
    """Raised when a dataflow result is queried for an instruction the
    fixpoint never visited — its block is unreachable from the entry
    (``reverse_postorder`` only walks reachable blocks).

    Subclasses :class:`KeyError` so callers that guarded against the old
    bare ``KeyError`` keep working, but carries a message naming the
    instruction and function instead of the instruction's bare repr.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; report plainly.
        return self.args[0] if self.args else ""


class ForwardAnalysis(Generic[State]):
    """Forward dataflow at instruction granularity.

    Subclasses define the lattice via :meth:`initial`, :meth:`meet`, and
    :meth:`transfer`.  ``run`` returns the IN state of every instruction
    (the state holding immediately *before* the instruction executes) and
    the OUT state of every block.
    """

    def initial(self) -> State:
        raise NotImplementedError

    def boundary(self) -> State:
        """State at function entry (defaults to :meth:`initial`)."""
        return self.initial()

    def meet(self, states: List[State]) -> State:
        raise NotImplementedError

    def transfer(self, inst: Instruction, state: State) -> State:
        raise NotImplementedError

    def equal(self, a: State, b: State) -> bool:
        return a == b

    def run(self, function: Function) -> "DataflowResult[State]":
        order = reverse_postorder(function)
        block_in: Dict[BasicBlock, State] = {}
        block_out: Dict[BasicBlock, State] = {}
        inst_in: Dict[Instruction, State] = {}

        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 10_000:
                raise RuntimeError("dataflow failed to converge")
            for block in order:
                preds = [p for p in block.predecessors if p in block_out]
                if block is order[0]:
                    state = self.boundary()
                    if preds:
                        state = self.meet([state] + [block_out[p] for p in preds])
                elif preds:
                    state = self.meet([block_out[p] for p in preds])
                else:
                    state = self.initial()
                block_in[block] = state
                for inst in block.instructions:
                    inst_in[inst] = state
                    state = self.transfer(inst, state)
                if block not in block_out or not self.equal(block_out[block], state):
                    block_out[block] = state
                    changed = True
        return DataflowResult(block_in, block_out, inst_in, function)


class DataflowResult(Generic[State]):
    def __init__(self, block_in, block_out, inst_in, function=None):
        self.block_in: Dict[BasicBlock, State] = block_in
        self.block_out: Dict[BasicBlock, State] = block_out
        self.inst_in: Dict[Instruction, State] = inst_in
        self.function: Function = function

    def visited(self, block: BasicBlock) -> bool:
        """True when the fixpoint reached ``block`` (i.e. it is
        reachable from the function entry)."""
        return block in self.block_in

    def state_before(self, inst: Instruction) -> State:
        try:
            return self.inst_in[inst]
        except KeyError:
            where = (f" of function '{self.function.name}'"
                     if self.function is not None else "")
            raise UnvisitedInstructionError(
                f"no dataflow state for instruction {inst!r}{where}: its "
                f"block was never visited because it is unreachable from "
                f"the entry block; callers walking function.blocks should "
                f"skip blocks where result.visited(block) is False"
            ) from None
