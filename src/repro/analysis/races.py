"""Cross-iteration race detection over parallelized worksharing loops.

This is the analysis core of the OpenMP legality linter
(:mod:`repro.lint`): where :mod:`repro.analysis.dependence` answers the
parallelizer's yes/no question ("may any pair of accesses carry a
dependence?"), this module *classifies* every conflicting pair so a
diagnostic can say what is wrong and how to fix it:

* a shared write whose subscript provably collides with another access
  in a different iteration is a **race**;
* a loop-invariant location written every iteration without a matching
  reassociable chain needed a ``private`` (overwrite) or ``reduction``
  (read-modify-write) clause;
* pairs the affine tests cannot decide are reported as *possible*
  dependences, and distinct may-aliasing bases as runtime-check
  candidates — both warnings, not errors, mirroring the paper's
  Figure 2 versioning contract.

The same per-dimension verdicts back the AST-side linter in
:mod:`repro.lint.source_check`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.values import Value
from .alias import AliasResult, alias
from .dependence import AffineExpr, MemoryAccess, collect_accesses
from .induction import CountedLoop
from .liveness import Liveness
from .loops import Loop
from .manager import AnalysisManager, get_liveness

#: Pair verdict lattice, benign-first: ``never`` (no iteration pair
#: collides), ``same-iter`` (collisions are loop-independent),
#: ``unknown`` (the affine tests cannot decide), ``definite`` (some
#: cross-iteration pair provably collides).
PAIR_VERDICTS = ("never", "same-iter", "unknown", "definite")


@dataclass
class RaceFinding:
    """One legality problem (or suspicion) on a worksharing loop."""

    kind: str                       # 'race' | 'missing-private' | 'may-alias'
                                    # | 'may-depend' | 'non-affine'
                                    # | 'unknown-call' | 'carried-scalar'
    base: Optional[Value]           # the underlying allocation, if any
    write: Optional[Instruction]    # offending write (or phi)
    other: Optional[Instruction]    # conflicting partner access
    detail: str = ""


def _dimension_verdict(a: AffineExpr, b: AffineExpr) -> str:
    """Classify one subscript dimension of an access pair."""
    if a.symbolic_key() != b.symbolic_key():
        return "unknown"
    if a.inner_key() != b.inner_key():
        return "unknown"
    if a.iv_coeff != b.iv_coeff:
        return "unknown"
    coeff = a.iv_coeff
    delta = b.const - a.const
    if a.has_inner:
        # Identical inner-IV terms: the dimension sweeps the same values
        # in every iteration of the tested loop, so equal expressions
        # collide across iterations; any other shape is undecided.
        return "definite" if coeff == 0 and delta == 0 else "unknown"
    if coeff == 0:
        return "never" if delta != 0 else "definite"
    if delta == 0:
        return "same-iter"
    if delta % coeff != 0:
        return "never"
    return "definite"


def pair_verdict(a: MemoryAccess, b: MemoryAccess) -> str:
    """Overall verdict for two same-base accesses.

    One ``never`` dimension rules out any collision; one ``same-iter``
    dimension pins every collision to a single iteration (benign for a
    worksharing loop); an ``unknown`` dimension taints the pair; only a
    pair whose every dimension definitely collides across iterations is
    a proven race.
    """
    if a.subscripts is None or b.subscripts is None:
        return "unknown"
    if len(a.subscripts) != len(b.subscripts):
        return "unknown"
    if not a.subscripts:
        return "definite"  # scalar location touched every iteration
    verdicts = [_dimension_verdict(sa, sb)
                for sa, sb in zip(a.subscripts, b.subscripts)]
    if "never" in verdicts:
        return "never"
    if "same-iter" in verdicts:
        return "same-iter"
    if "unknown" in verdicts:
        return "unknown"
    return "definite"


def access_location_is_invariant(access: MemoryAccess) -> bool:
    """True when the access touches one fixed location every iteration."""
    if access.subscripts is None:
        return False
    return all(s.iv_coeff == 0 and not s.has_inner
               for s in access.subscripts)


def _base_name(base: Optional[Value]) -> str:
    return getattr(base, "name", None) or "?"


_CAST_OPCODES = ("sext", "zext", "trunc", "bitcast")


def _strip_casts(value: Value) -> Value:
    while isinstance(value, Instruction) and value.opcode in _CAST_OPCODES:
        value = value.operands[0]
    return value


def _is_iv_shadow(phi: Phi, counted: CountedLoop) -> bool:
    """True when ``phi`` is a width-converted image of the loop's IV.

    Loop rotation and widening leave congruent secondary phis (e.g. the
    i64 shadow of an i32 counter): each incoming value is, modulo
    casts, the IV's incoming value from the same block.  Those carry no
    cross-iteration state and must not be reported as races.
    """
    iv_incoming = {id(block): value for value, block in counted.phi.incoming}
    for value, block in phi.incoming:
        iv_value = iv_incoming.get(id(block))
        if iv_value is None:
            return False
        if _strip_casts(value) is not _strip_casts(iv_value):
            return False
    return True


def find_loop_races(counted: CountedLoop,
                    allow_reductions: bool = True) -> List[RaceFinding]:
    """All legality findings for one worksharing loop.

    Accesses belonging to a recognized reassociable reduction chain are
    legal under a matching ``reduction`` clause and skipped; everything
    the pragma generator's clause minimization cannot justify is
    reported.
    """
    from .reduction import find_reductions, reduction_instructions
    loop = counted.loop
    findings: List[RaceFinding] = []
    reduction_members = set()
    if allow_reductions:
        reduction_members = reduction_instructions(find_reductions(counted))

    # Loop-carried scalar dependences: any header phi besides the IV
    # (or a cast-congruent shadow of it).
    for phi in loop.header_phis():
        if phi is not counted.phi and not _is_iv_shadow(phi, counted):
            findings.append(RaceFinding(
                "race", phi, phi, None,
                f"loop-carried scalar dependence through phi "
                f"%{phi.name or '?'}"))

    accesses, problems = collect_accesses(counted)
    for problem in sorted(set(problems)):
        findings.append(RaceFinding(
            "unknown-call", None, None, None,
            f"{problem}: the callee may touch shared state"))

    # Aggregate pair verdicts per base so each shared variable yields a
    # single, classified finding rather than one per access pair.
    definite: Dict[int, Tuple[MemoryAccess, MemoryAccess]] = {}
    definite_has_load: Dict[int, bool] = {}
    definite_all_invariant: Dict[int, bool] = {}
    suspicious: Dict[int, Tuple[MemoryAccess, MemoryAccess]] = {}
    alias_pairs: Dict[Tuple[int, int], Tuple[Value, Value]] = {}

    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            if not (a.is_write or b.is_write):
                continue
            if a.inst in reduction_members and b.inst in reduction_members:
                continue
            relation = alias(a.base, b.base)
            if relation is AliasResult.NO_ALIAS:
                continue
            if a.base is not b.base:
                key = tuple(sorted((id(a.base), id(b.base))))
                alias_pairs.setdefault(key, (a.base, b.base))
                continue
            verdict = pair_verdict(a, b)
            if verdict in ("never", "same-iter"):
                continue
            write, other = (a, b) if a.is_write else (b, a)
            if verdict == "definite":
                key = id(write.base)
                definite.setdefault(key, (write, other))
                definite_has_load[key] = definite_has_load.get(key, False) \
                    or not (a.is_write and b.is_write)
                definite_all_invariant[key] = \
                    definite_all_invariant.get(key, True) \
                    and access_location_is_invariant(write) \
                    and access_location_is_invariant(other)
            else:
                suspicious.setdefault(id(write.base), (write, other))

    for key, (write, other) in definite.items():
        name = _base_name(write.base)
        if definite_all_invariant[key]:
            if definite_has_load[key]:
                findings.append(RaceFinding(
                    "race", write.base, write.inst, other.inst,
                    f"'{name}' is read-modified-written every iteration "
                    f"and the update chain is not a recognized reduction"))
            else:
                findings.append(RaceFinding(
                    "missing-private", write.base, write.inst, other.inst,
                    f"'{name}' is overwritten at one location every "
                    f"iteration but is not privatized"))
        else:
            findings.append(RaceFinding(
                "race", write.base, write.inst, other.inst,
                f"cross-iteration conflict between {write.inst.opcode} and "
                f"{other.inst.opcode} on '{name}'"))

    for key, (write, other) in suspicious.items():
        if key in definite:
            continue
        kind = "non-affine" if (write.subscripts is None
                                or other.subscripts is None) else "may-depend"
        findings.append(RaceFinding(
            kind, write.base, write.inst, other.inst,
            f"accesses to '{_base_name(write.base)}' cannot be proven "
            f"iteration-disjoint"))

    for base_a, base_b in alias_pairs.values():
        findings.append(RaceFinding(
            "may-alias", base_a, None, None,
            f"bases '{_base_name(base_a)}' and '{_base_name(base_b)}' may "
            f"alias; disjointness needs a runtime check"))
    return findings


def nowait_unsafe_loads(loop: Loop) -> List[Load]:
    """Loads after ``loop`` that defeat dropping its implicit barrier.

    Walks the CFG from the loop's exits, stopping at ``__kmpc_barrier``
    calls, and reports every load that may alias a store inside the
    loop: with ``nowait``, a thread can reach that load while another
    thread is still writing the corresponding iteration.
    """
    # Lazy import: repro.analysis must stay importable without touching
    # the polly package (which itself imports these analyses).
    from ..polly.runtime_decls import BARRIER

    stores = [inst for block in loop.blocks for inst in block.instructions
              if isinstance(inst, Store)]
    if not stores:
        return []
    unsafe: List[Load] = []
    seen = set()
    work = deque(loop.exit_blocks)
    while work:
        block = work.popleft()
        if block in seen or block in loop.blocks:
            continue
        seen.add(block)
        hit_barrier = False
        for inst in block.instructions:
            if isinstance(inst, Call) and inst.callee_name == BARRIER:
                hit_barrier = True
                break
            if isinstance(inst, Load):
                if any(alias(inst.pointer, store.pointer)
                       is not AliasResult.NO_ALIAS for store in stores):
                    unsafe.append(inst)
        if not hit_barrier:
            work.extend(block.successors)
    return unsafe


def private_audit(counted: CountedLoop,
                  liveness: Optional[Liveness] = None,
                  analysis_manager: Optional[AnalysisManager] = None
                  ) -> List[RaceFinding]:
    """Audit the clause-minimization invariant on a worksharing loop.

    SPLENDID privatizes by *placement*: a value is private exactly when
    its definition lands inside the region (§4.1.3).  That is sound only
    if every SSA value live into the loop header is loop-invariant
    (firstprivate by copy) — anything else is a carried scalar the
    emitted pragma would silently share.
    """
    from .induction import is_loop_invariant
    loop = counted.loop
    function = loop.header.parent
    liveness = liveness or get_liveness(function, analysis_manager)
    findings: List[RaceFinding] = []
    for value in sorted(liveness.live_in.get(loop.header, ()),
                        key=lambda v: getattr(v, "name", None) or ""):
        if value is counted.phi:
            continue
        if is_loop_invariant(value, loop):
            continue
        if isinstance(value, Phi) and value.parent is loop.header:
            continue  # already reported as a carried scalar race
        findings.append(RaceFinding(
            "carried-scalar", value,
            value if isinstance(value, Instruction) else None, None,
            f"%{getattr(value, 'name', None) or '?'} is live into the loop "
            f"header but defined inside the loop"))
    return findings
