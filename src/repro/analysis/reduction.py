"""Reduction recognition (the paper's §7 'future work' extension).

A *memory reduction* in a loop is the carried chain

    t = load X ; r = t OP e ; store r, X

where X is a loop-invariant address, OP is commutative and associative,
the load's only consumer is OP, and X is not otherwise touched in the
loop.  Such a chain is the only legal way a DOALL transform can tolerate
a carried dependence: iterations may be reordered because OP reassociates.

Scalar reductions (an accumulator phi) are handled by first demoting the
phi to a stack slot (:mod:`repro.passes.reg2mem`), which turns them into
memory reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.instructions import (BinaryOp, DbgValue, Instruction, Load, Phi,
                               Store)
from ..ir.values import Value
from .alias import base_object
from .induction import CountedLoop, is_loop_invariant
from .loops import Loop

#: Opcodes safe to reassociate across iterations.  Floating-point
#: addition/multiplication is included the same way -ffast-math /
#: OpenMP reduction semantics allow it (the paper's OpenMP targets
#: accept reduction reordering by specification).
REASSOCIABLE_OPS = frozenset({"add", "mul", "fadd", "fmul"})

REDUCTION_SYMBOL = {"add": "+", "fadd": "+", "mul": "*", "fmul": "*"}


@dataclass
class MemoryReduction:
    """One recognized reduction chain."""

    load: Load
    op: BinaryOp
    store: Store
    pointer: Value            # the loop-invariant address X
    opcode: str

    @property
    def symbol(self) -> str:
        return REDUCTION_SYMBOL[self.opcode]


def _real_users(inst: Instruction) -> List[Instruction]:
    return [u for u in inst.users if not isinstance(u, DbgValue)]


def _same_address(a: Value, b: Value) -> bool:
    if a is b:
        return True
    # CSE usually collapses identical GEPs; identical structure with the
    # same operands also counts.
    from ..ir.instructions import GetElementPtr
    if isinstance(a, GetElementPtr) and isinstance(b, GetElementPtr):
        return a.pointer is b.pointer and len(a.indices) == len(b.indices) \
            and all(x is y for x, y in zip(a.indices, b.indices))
    return False


def _collect_chain(loop: Loop, root: Value, opcode: str) -> Optional[list]:
    """Nodes of the reassociation chain rooted at ``root``: BinaryOps of
    the same opcode, inside the loop, each used exactly once (by its
    chain parent / the store).  Returns None on any violation."""
    if not isinstance(root, BinaryOp) or root.opcode != opcode \
            or root.parent not in loop.blocks:
        return None
    chain = []
    stack = [root]
    while stack:
        node = stack.pop()
        chain.append(node)
        for side in (node.lhs, node.rhs):
            if isinstance(side, BinaryOp) and side.opcode == opcode \
                    and side.parent in loop.blocks \
                    and len(_real_users(side)) == 1:
                stack.append(side)
    return chain


def _chain_leaves(chain: list) -> list:
    members = set(chain)
    leaves = []
    for node in chain:
        for side in (node.lhs, node.rhs):
            if side not in members:
                leaves.append(side)
    return leaves


def match_memory_reduction(loop: Loop, store: Store) -> Optional[MemoryReduction]:
    """Try to match ``store`` as the tail of a reduction chain in ``loop``.

    The stored value may be a whole reassociation chain — e.g.
    ``(old + a) + b`` — as long as exactly one leaf is the load of the
    same address and the old value does not otherwise escape.
    """
    pointer = store.pointer
    if not is_loop_invariant(pointer, loop) and not (
            isinstance(pointer, Instruction)
            and pointer.parent in loop.blocks
            and all(is_loop_invariant(op, loop) for op in pointer.operands)):
        return None
    value = store.value
    if not isinstance(value, BinaryOp) or value.opcode not in REASSOCIABLE_OPS:
        return None
    chain = _collect_chain(loop, value, value.opcode)
    if chain is None:
        return None
    if _real_users(value) != [store]:
        return None

    loads = [leaf for leaf in _chain_leaves(chain)
             if isinstance(leaf, Load) and leaf.parent in loop.blocks
             and _same_address(leaf.pointer, pointer)]
    if len(loads) != 1:
        return None
    load = loads[0]
    if len(_real_users(load)) != 1:
        return None  # the old value escapes: not a pure reduction

    # X must not be accessed by anything else in the loop.
    for block in loop.blocks:
        for inst in block.instructions:
            if inst in (load, store):
                continue
            if isinstance(inst, Load) and _same_address(inst.pointer, pointer):
                return None
            if isinstance(inst, Store) and _same_address(inst.pointer,
                                                         pointer):
                return None
    return MemoryReduction(load=load, op=value, store=store,
                           pointer=pointer, opcode=value.opcode)


def find_reductions(counted: CountedLoop) -> List[MemoryReduction]:
    """All reduction chains in the loop (used by legality + pragma gen)."""
    reductions = []
    for block in counted.loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store):
                match = match_memory_reduction(counted.loop, inst)
                if match is not None:
                    reductions.append(match)
    return reductions


def reduction_instructions(reductions: List[MemoryReduction]) -> set:
    members = set()
    for reduction in reductions:
        members.update((reduction.load, reduction.op, reduction.store))
    return members
