"""Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) and frontiers."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.module import Function
from .cfg import reverse_postorder


class DominatorTree:
    def __init__(self, function: Function):
        self.function = function
        self.reachable: List[BasicBlock] = reverse_postorder(function)
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self.reachable)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.reachable}
        self._compute()

    def _compute(self) -> None:
        if not self.reachable:
            return
        entry = self.reachable[0]
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.reachable[1:]:
                preds = [p for p in block.predecessors if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(idom, pred, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: (None if b is entry else idom.get(b))
                     for b in self.reachable}
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)

    def _intersect(self, idom, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        if a is b:
            return True
        runner = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self.reachable}
        for block in self.reachable:
            preds = [p for p in block.predecessors if p in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block] and runner is not None:
                    frontier[runner].add(block)
                    runner = self.idom.get(runner)
        return frontier

    def dfs_order(self) -> List[BasicBlock]:
        """Pre-order walk of the dominator tree."""
        if not self.reachable:
            return []
        order: List[BasicBlock] = []
        stack = [self.reachable[0]]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.children[block]))
        return order


class PostDominatorTree:
    """Post-dominators over the reversed CFG with a virtual exit.

    Used by the decompiler structurer to find the join block of an
    if/else diamond (the immediate post-dominator of the branch block).
    """

    def __init__(self, function: Function):
        self.function = function
        blocks = list(function.blocks)
        universe = set(blocks)
        # Full post-dominator sets via iterative dataflow over the
        # reversed CFG (O(n^2) but function CFGs here are tiny).
        pdom: Dict[BasicBlock, Set[BasicBlock]] = {}
        for block in blocks:
            pdom[block] = {block} if not block.successors else set(universe)
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                succs = block.successors
                if not succs:
                    continue
                new = set(universe)
                for succ in succs:
                    new &= pdom[succ]
                new.add(block)
                if new != pdom[block]:
                    pdom[block] = new
                    changed = True
        self.pdom = pdom
        # Immediate post-dominator: the strict post-dominator closest to
        # the block — i.e. the one post-dominated by every other strict
        # post-dominator.
        self.ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        for block in blocks:
            strict = pdom[block] - {block}
            immediate = None
            for candidate in strict:
                if all(other is candidate or other in pdom[candidate]
                       for other in strict):
                    immediate = candidate
                    break
            self.ipdom[block] = immediate

    def immediate(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate post-dominator (None = the virtual exit)."""
        value = self.ipdom.get(block)
        return value if value is not block else None

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        if a is b:
            return True
        runner = self.ipdom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.ipdom.get(runner)
        return False
