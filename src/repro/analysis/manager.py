"""LLVM-new-PM-style analysis manager: cached, invalidation-aware analyses.

Every stage of the pipeline — the -O2 passes, the verifier that runs
between them, the Polly-style parallelizer, the race linter, and the
decompilation engine — consumes the same handful of function analyses
(:class:`~repro.analysis.dominators.DominatorTree`,
:class:`~repro.analysis.loops.LoopInfo`,
:class:`~repro.analysis.liveness.Liveness`, ...).  Historically each
consumer constructed them from scratch; the :class:`AnalysisManager`
memoizes them per function (and per module) and invalidates them
through a per-pass :class:`PreservedAnalyses` contract, mirroring
LLVM's new pass manager as argued for in Kruse & Finkel's *Loop
Optimization Framework*.

Analyses are registered once (see the bottom of this module for the
built-ins) and requested by name::

    am = AnalysisManager()
    loops = am.get(LOOPS, function)        # computed, cached
    loops = am.get(LOOPS, function)        # cache hit, same object
    am.invalidate(function)                # e.g. after a CFG edit
    loops = am.get(LOOPS, function)        # recomputed

Call sites without a manager in hand use the module-level accessors
(:func:`get_domtree`, :func:`get_loop_info`, ...), which fall back to an
ephemeral manager — exactly the old construct-on-demand behavior, but
through one choke point.  Outside this package, analyses must never be
constructed directly (grep-enforced by ``tests/test_analysis_manager``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..ir.module import Function, Module
from .dominators import DominatorTree, PostDominatorTree
from .induction import analyze_counted_loop
from .liveness import Liveness
from .loops import LoopInfo
from .storage import StorageInfo, recover_storage
from .typeinfer import TypeInference, infer_module_types

#: Canonical names of the built-in function analyses.
DOMTREE = "domtree"
POSTDOMTREE = "postdomtree"
LOOPS = "loops"
LIVENESS = "liveness"
STORAGE = "storage"
INDUCTION = "induction"
STRUCTURE = "structure"

#: Canonical names of the built-in module analyses.
TYPEINFER = "typeinfer"

#: Analyses that depend only on the CFG shape (blocks and edges).
#: Passes that rewrite instructions but leave every terminator alone
#: preserve all of these; anything that edits branches or blocks
#: preserves none of them.
CFG_ANALYSES = frozenset({DOMTREE, POSTDOMTREE, LOOPS})


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one :class:`AnalysisManager`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.invalidations)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.invalidations - earlier.invalidations)


class PreservedAnalyses:
    """The set of analyses a pass promises are still valid after it ran.

    Immutable.  ``PreservedAnalyses.all()`` is the contract of a pass
    that changed nothing; ``none()`` the conservative default;
    ``cfg()`` the common "edited instructions, left every branch alone"
    case.
    """

    __slots__ = ("_all", "_names")

    def __init__(self, names: Iterable[str] = (), preserve_all: bool = False):
        self._all = preserve_all
        self._names = frozenset(names)

    @classmethod
    def all(cls) -> "PreservedAnalyses":
        return _PRESERVE_ALL

    @classmethod
    def none(cls) -> "PreservedAnalyses":
        return _PRESERVE_NONE

    @classmethod
    def cfg(cls) -> "PreservedAnalyses":
        return _PRESERVE_CFG

    @classmethod
    def preserve(cls, *names: str) -> "PreservedAnalyses":
        return cls(names)

    @property
    def is_all(self) -> bool:
        return self._all

    def preserves(self, name: str) -> bool:
        return self._all or name in self._names

    def union(self, other: "PreservedAnalyses") -> "PreservedAnalyses":
        if self._all or other._all:
            return _PRESERVE_ALL
        return PreservedAnalyses(self._names | other._names)

    def __repr__(self) -> str:
        if self._all:
            return "PreservedAnalyses.all()"
        if not self._names:
            return "PreservedAnalyses.none()"
        return f"PreservedAnalyses.preserve({', '.join(sorted(self._names))})"


_PRESERVE_ALL = PreservedAnalyses(preserve_all=True)
_PRESERVE_NONE = PreservedAnalyses()
_PRESERVE_CFG = PreservedAnalyses(CFG_ANALYSES)

FunctionAnalysisCtor = Callable[[Function, "AnalysisManager"], object]
ModuleAnalysisCtor = Callable[[Module, "AnalysisManager"], object]

_FUNCTION_ANALYSES: Dict[str, FunctionAnalysisCtor] = {}
_MODULE_ANALYSES: Dict[str, ModuleAnalysisCtor] = {}


def register_function_analysis(name: str, ctor: FunctionAnalysisCtor) -> None:
    """Register ``ctor`` as the producer of the function analysis ``name``.

    The constructor receives the function and the requesting manager, so
    it can itself request analyses it depends on (and share the cache).
    """
    _FUNCTION_ANALYSES[name] = ctor


def register_module_analysis(name: str, ctor: ModuleAnalysisCtor) -> None:
    """Register ``ctor`` as the producer of the module analysis ``name``."""
    _MODULE_ANALYSES[name] = ctor


def registered_function_analyses() -> Tuple[str, ...]:
    return tuple(sorted(_FUNCTION_ANALYSES))


class AnalysisManager:
    """Memoizes analysis results per function / per module.

    ``cache=False`` turns the manager into a pure pass-through that
    recomputes on every request (every request counts as a miss) — the
    pre-manager behavior, kept for A/B benchmarking
    (``benchmarks/bench_analysis_cache.py``).
    """

    def __init__(self, cache: bool = True):
        self._enabled = cache
        # id(unit) -> (unit, {analysis name -> result}).  The strong
        # reference to the unit pins its id for the manager's lifetime.
        self._function_results: Dict[int, Tuple[Function, Dict[str, object]]] = {}
        self._module_results: Dict[int, Tuple[Module, Dict[str, object]]] = {}
        self.stats = CacheStats()

    # Requests ---------------------------------------------------------------

    def get(self, name: str, function: Function) -> object:
        """The (cached) result of function analysis ``name``."""
        ctor = _FUNCTION_ANALYSES.get(name)
        if ctor is None:
            raise KeyError(
                f"unknown function analysis {name!r}; registered: "
                f"{registered_function_analyses()}")
        if not self._enabled:
            self.stats.misses += 1
            return ctor(function, self)
        table = self._table(self._function_results, function)
        if name in table:
            self.stats.hits += 1
            return table[name]
        self.stats.misses += 1
        result = ctor(function, self)
        table[name] = result
        return result

    def get_module(self, name: str, module: Module) -> object:
        """The (cached) result of module analysis ``name``."""
        ctor = _MODULE_ANALYSES.get(name)
        if ctor is None:
            raise KeyError(
                f"unknown module analysis {name!r}; registered: "
                f"{tuple(sorted(_MODULE_ANALYSES))}")
        if not self._enabled:
            self.stats.misses += 1
            return ctor(module, self)
        table = self._table(self._module_results, module)
        if name in table:
            self.stats.hits += 1
            return table[name]
        self.stats.misses += 1
        result = ctor(module, self)
        table[name] = result
        return result

    def cached(self, name: str, function: Function) -> Optional[object]:
        """Peek at a cached result without computing (and without
        touching the counters)."""
        entry = self._function_results.get(id(function))
        return entry[1].get(name) if entry else None

    # Invalidation -----------------------------------------------------------

    def invalidate(self, function: Function,
                   preserved: Optional[PreservedAnalyses] = None) -> int:
        """Drop cached analyses of ``function`` not named in ``preserved``
        (all of them by default).  Returns the number dropped."""
        preserved = preserved or _PRESERVE_NONE
        if preserved.is_all:
            return 0
        entry = self._function_results.get(id(function))
        if entry is None:
            return 0
        table = entry[1]
        dropped = 0
        for name in list(table):
            if not preserved.preserves(name):
                del table[name]
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate_module(self, module: Module,
                          preserved: Optional[PreservedAnalyses] = None) -> int:
        """Apply ``preserved`` to the module's own analyses and to every
        cached function entry (including functions a pass may have just
        erased from the module)."""
        preserved = preserved or _PRESERVE_NONE
        if preserved.is_all:
            return 0
        dropped = 0
        entry = self._module_results.get(id(module))
        if entry is not None:
            table = entry[1]
            for name in list(table):
                if not preserved.preserves(name):
                    del table[name]
                    dropped += 1
            self.stats.invalidations += dropped
        for _, (function, _table) in list(self._function_results.items()):
            if function.parent is module or function.parent is None:
                dropped += self.invalidate(function, preserved)
        return dropped

    def clear(self) -> None:
        self._function_results.clear()
        self._module_results.clear()

    # Internals --------------------------------------------------------------

    @staticmethod
    def _table(results, unit) -> Dict[str, object]:
        entry = results.get(id(unit))
        if entry is None:
            entry = (unit, {})
            results[id(unit)] = entry
        return entry[1]


# Choke-point accessors -------------------------------------------------------
#
# Call sites that hold a manager pass it along; call sites that do not
# get a fresh, uncached computation.  Either way the construction
# happens here and nowhere else.

def function_analysis(name: str, function: Function,
                      manager: Optional[AnalysisManager] = None) -> object:
    if manager is not None:
        return manager.get(name, function)
    return _FUNCTION_ANALYSES[name](function, AnalysisManager())


def get_domtree(function: Function,
                manager: Optional[AnalysisManager] = None) -> DominatorTree:
    return function_analysis(DOMTREE, function, manager)


def get_postdomtree(function: Function,
                    manager: Optional[AnalysisManager] = None
                    ) -> PostDominatorTree:
    return function_analysis(POSTDOMTREE, function, manager)


def get_loop_info(function: Function,
                  manager: Optional[AnalysisManager] = None) -> LoopInfo:
    return function_analysis(LOOPS, function, manager)


def get_liveness(function: Function,
                 manager: Optional[AnalysisManager] = None) -> Liveness:
    return function_analysis(LIVENESS, function, manager)


def get_storage(function: Function,
                manager: Optional[AnalysisManager] = None) -> StorageInfo:
    return function_analysis(STORAGE, function, manager)


def get_structure(function: Function,
                  manager: Optional[AnalysisManager] = None) -> object:
    """The structured region tree (a
    :class:`repro.structure.structurer.StructuredFunction`)."""
    return function_analysis(STRUCTURE, function, manager)


def get_type_inference(module: Module,
                       manager: Optional[AnalysisManager] = None
                       ) -> TypeInference:
    if manager is None:
        manager = AnalysisManager()
    return manager.get_module(TYPEINFER, module)


register_function_analysis(DOMTREE, lambda fn, am: DominatorTree(fn))
register_function_analysis(POSTDOMTREE, lambda fn, am: PostDominatorTree(fn))
register_function_analysis(
    LOOPS, lambda fn, am: LoopInfo(fn, domtree=am.get(DOMTREE, fn)))
register_function_analysis(LIVENESS, lambda fn, am: Liveness(fn))
# Storage recovery reads instructions (GEPs, allocas), not just the CFG,
# so it is deliberately NOT in CFG_ANALYSES: any instruction rewrite
# invalidates it unless the pass preserves it by name.
# Counted-loop descriptions, memoized per function so the decompiler's
# for-loop planner and storage recovery's extent harvester share one
# computation.  Reads compare/step instructions, so not CFG-preserved.
register_function_analysis(
    INDUCTION,
    lambda fn, am: {loop: analyze_counted_loop(loop)
                    for loop in am.get(LOOPS, fn).all_loops()})
register_function_analysis(
    STORAGE, lambda fn, am: recover_storage(
        fn, loop_info=am.get(LOOPS, fn),
        counted_loops=am.get(INDUCTION, fn)))
register_module_analysis(
    TYPEINFER,
    lambda m, am: infer_module_types(
        m, {fn: am.get(STORAGE, fn) for fn in m.defined_functions()}))


def _run_structure(fn: Function, am: AnalysisManager) -> object:
    # Deferred import: repro.structure sits above the analysis layer.
    # Structuring reads branch conditions and instructions, so it is
    # deliberately NOT in CFG_ANALYSES.
    from ..structure.structurer import structure_function
    return structure_function(fn, loop_info=am.get(LOOPS, fn),
                              domtree=am.get(DOMTREE, fn),
                              postdom=am.get(POSTDOMTREE, fn))


register_function_analysis(STRUCTURE, _run_structure)
