"""Storage-location recovery: from SSA values back to program variables.

The first stage of the metadata-free variable/type recovery subsystem
(the second is :mod:`repro.analysis.typeinfer`).  Debug metadata tells
the decompiler which SSA values belong to which source variable; when it
is stripped, that partition has to be *recovered* from what the IR still
shows — allocation sites, address arithmetic, and the CFG.  This pass
recovers three things:

* **Storage roots** — the address-taken objects of the function:
  globals, allocas, and pointer arguments.  Only their *sizes* are
  trusted (a binary's symbol table and stack-frame layout carry sizes);
  their element scalar types are deliberately ignored — recovering
  those is the type-inference stage's job.

* **Pointer provenance** — a forward dataflow on the existing
  :class:`~repro.analysis.dataflow.ForwardAnalysis` framework mapping
  every pointer-typed SSA value to the root it addresses.  Running it
  as a dataflow (rather than a flat walk) is what resolves pointer
  *phis*: a loop-carried ``p = phi [A, pre], [p.next, latch]`` gets
  ``A``'s provenance from the fixpoint.

* **Array geometry** — per-root stride evidence harvested from GEP
  chains (including byte-level ``i8*`` arithmetic, where the stride
  hides in a ``mul``/``shl`` of the index), cross-checked against
  induction-variable extents from :mod:`repro.analysis.induction`, and
  folded into recovered dimensions ``T[N][M]`` by dividing the root size
  by the observed strides.

Values that are *not* pointers are partitioned into variables by their
phi webs: the values a phi merges were one mutable variable before SSA
split them, so each web prints as one recovered C variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir import types as ir_ty
from ..ir.block import BasicBlock
from ..ir.instructions import (Alloca, BinaryOp, Cast, GetElementPtr,
                               Instruction, Load, Phi, Select, Store)
from ..ir.module import Function
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value
from .dataflow import ForwardAnalysis
from .induction import analyze_counted_loop
from .loops import LoopInfo

#: Provenance lattice bottom/top sentinels.
_UNKNOWN = object()   # no information yet (lattice bottom)
_MANY = object()      # conflicting roots reach here (lattice top)


@dataclass(frozen=True)
class StorageRoot:
    """One address-taken object: a global, an alloca, or a pointer arg."""

    kind: str                    # 'global' | 'alloca' | 'argument'
    name: str
    size_bytes: Optional[int]    # None when unknown (pointer arguments)

    def __repr__(self) -> str:
        size = "?" if self.size_bytes is None else self.size_bytes
        return f"<StorageRoot {self.kind} {self.name} [{size}B]>"


@dataclass(frozen=True)
class StorageLocation:
    """A storage home: a root plus what is known about the offset."""

    root: StorageRoot
    const_offset: int = 0        # byte offset contributed by constant indices
    is_element: bool = False     # True when a variable index is involved

    def __repr__(self) -> str:
        suffix = "+var" if self.is_element else ""
        return (f"<StorageLocation {self.root.name}"
                f"+{self.const_offset}{suffix}>")


@dataclass
class AccessPattern:
    """One observed indexed access into a root."""

    strides: Tuple[int, ...]         # bytes stepped per variable index
    extents: Tuple[Optional[int], ...]  # matching IV extents (when proven)
    width: Optional[int]             # leaf access size in bytes (if seen)


class _Provenance(ForwardAnalysis):
    """Forward dataflow: pointer SSA value -> storage root (or _MANY)."""

    def __init__(self, roots: Dict[Value, StorageRoot]):
        self.roots = roots

    def initial(self):
        return {}

    def boundary(self):
        # Arguments and globals are their own roots from function entry.
        return {value: root for value, root in self.roots.items()
                if not isinstance(value, Alloca)}

    def meet(self, states):
        merged: Dict[Value, object] = {}
        for state in states:
            for value, root in state.items():
                if value not in merged:
                    merged[value] = root
                elif merged[value] is not root:
                    merged[value] = _MANY
        return merged

    def _lookup(self, state, value):
        if value in self.roots:
            return self.roots[value]
        return state.get(value, _UNKNOWN)

    def transfer(self, inst: Instruction, state):
        source: Optional[Value] = None
        if isinstance(inst, Alloca):
            updated = dict(state)
            updated[inst] = self.roots[inst]
            return updated
        if isinstance(inst, GetElementPtr):
            source = inst.pointer
        elif isinstance(inst, Cast) and inst.opcode in ("bitcast",
                                                        "inttoptr",
                                                        "ptrtoint"):
            source = inst.value
        elif isinstance(inst, Select):
            a = self._lookup(state, inst.if_true)
            b = self._lookup(state, inst.if_false)
            resolved = a if a is b else (_MANY if _UNKNOWN not in (a, b)
                                         else (a if b is _UNKNOWN else b))
            if resolved is not _UNKNOWN:
                updated = dict(state)
                updated[inst] = resolved
                return updated
            return state
        elif isinstance(inst, Phi):
            resolved = _UNKNOWN
            for value, _ in inst.incoming:
                if value is inst:
                    continue
                prov = self._lookup(state, value)
                if prov is _UNKNOWN:
                    continue
                if resolved is _UNKNOWN:
                    resolved = prov
                elif resolved is not prov:
                    resolved = _MANY
            if resolved is not _UNKNOWN:
                updated = dict(state)
                updated[inst] = resolved
                return updated
            return state
        if source is None:
            return state
        prov = self._lookup(state, source)
        if prov is _UNKNOWN:
            return state
        updated = dict(state)
        updated[inst] = prov
        return updated


def _affine_terms(index: Value, depth: int = 0):
    """Decompose an index expression into ``[(value, coeff)], const``.

    Handles the shapes byte-level address arithmetic produces:
    ``mul``/``shl`` scaling, ``add``/``sub`` of terms, and widening
    casts wrapped around any of them.
    """
    while isinstance(index, Cast) and index.opcode in ("sext", "zext",
                                                       "trunc"):
        index = index.value
    if isinstance(index, ConstantInt):
        return [], index.value
    if depth < 6 and isinstance(index, BinaryOp):
        if index.opcode == "add":
            lt, lc = _affine_terms(index.lhs, depth + 1)
            rt, rc = _affine_terms(index.rhs, depth + 1)
            return lt + rt, lc + rc
        if index.opcode == "sub":
            lt, lc = _affine_terms(index.lhs, depth + 1)
            rt, rc = _affine_terms(index.rhs, depth + 1)
            return lt + [(v, -c) for v, c in rt], lc - rc
        if index.opcode == "mul":
            if isinstance(index.rhs, ConstantInt):
                terms, const = _affine_terms(index.lhs, depth + 1)
                scale = index.rhs.value
                return ([(v, c * scale) for v, c in terms] or
                        [(index.lhs, scale)]), const * scale
            if isinstance(index.lhs, ConstantInt):
                terms, const = _affine_terms(index.rhs, depth + 1)
                scale = index.lhs.value
                return ([(v, c * scale) for v, c in terms] or
                        [(index.rhs, scale)]), const * scale
        if index.opcode == "shl" and isinstance(index.rhs, ConstantInt):
            terms, const = _affine_terms(index.lhs, depth + 1)
            scale = 1 << index.rhs.value
            return ([(v, c * scale) for v, c in terms] or
                    [(index.lhs, scale)]), const * scale
    return [(index, 1)], 0


def _strip_casts(value: Value) -> Value:
    while isinstance(value, Cast) and value.opcode in ("sext", "zext",
                                                       "trunc"):
        value = value.value
    return value


def element_width_of(patterns) -> Optional[int]:
    """Leaf access width evidence (bytes), smallest observed."""
    widths = [p.width for p in patterns if p.width is not None]
    return min(widths) if widths else None


def shape_of_accesses(size_bytes: Optional[int],
                      patterns) -> Tuple[Optional[int], ...]:
    """Recover array dimensions (outermost first) from access patterns.

    Strides observed across every pattern are sorted descending and
    divided pairwise; the outermost extent divides ``size_bytes`` by the
    largest stride.  Unknown extents (pointer arguments with no size)
    come back as ``None``.  No strided access at all recovers ``()``.
    """
    width = element_width_of(patterns)
    strides: Set[int] = set()
    for pattern in patterns:
        strides.update(s for s in pattern.strides if s > 0)
    if not strides:
        return ()
    ordered = sorted(strides, reverse=True)
    if width is not None and width not in ordered and width > 0:
        ordered.append(width)
    dims: List[Optional[int]] = []
    outer = size_bytes
    for stride in ordered:
        if outer is None:
            dims.append(_extent_evidence_of(patterns, stride))
        elif outer % stride == 0:
            dims.append(outer // stride)
        else:
            dims.append(None)
        outer = stride
    # The final stride level steps over single elements; the dims list
    # already counts them, so nothing remains to append.
    return tuple(dims)


def _extent_evidence_of(patterns, stride: int) -> Optional[int]:
    for pattern in patterns:
        for s, extent in zip(pattern.strides, pattern.extents):
            if s == stride and extent is not None:
                return extent
    return None


class StorageInfo:
    """The result of storage recovery for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.roots: List[StorageRoot] = []
        self.root_of_value: Dict[Value, StorageRoot] = {}
        #: Pointer SSA value -> provenance root (may be None for _MANY).
        self.provenance: Dict[Value, Optional[StorageRoot]] = {}
        #: Pointer SSA value -> recovered storage home.
        self.homes: Dict[Value, StorageLocation] = {}
        #: Per-root observed indexed access patterns.
        self.accesses: Dict[StorageRoot, List[AccessPattern]] = {}
        #: Scalar SSA value -> variable id (phi-web partition).
        self.variable_of: Dict[Value, int] = {}
        self._web_members: Dict[int, List[Value]] = {}
        self._shape_cache: Dict[StorageRoot, Tuple[Optional[int], ...]] = {}

    # -- Queries -----------------------------------------------------------

    def home(self, value: Value) -> Optional[StorageLocation]:
        return self.homes.get(value)

    def root_for(self, value: Value) -> Optional[StorageRoot]:
        if value in self.root_of_value:
            return self.root_of_value[value]
        return self.provenance.get(value)

    def web_of(self, value: Value) -> Optional[int]:
        return self.variable_of.get(value)

    def web_members(self, web: int) -> List[Value]:
        return self._web_members.get(web, [])

    def element_width(self, root: StorageRoot) -> Optional[int]:
        """Leaf access width evidence (bytes), smallest observed."""
        return element_width_of(self.accesses.get(root, ()))

    def is_array_like(self, root: StorageRoot) -> bool:
        """True when any access indexes the root with a variable stride."""
        return any(p.strides for p in self.accesses.get(root, ()))

    def shape(self, root: StorageRoot) -> Tuple[Optional[int], ...]:
        """Recovered array dimensions, outermost first.

        Strides observed across every access are sorted descending and
        divided pairwise; the outermost extent divides the root size by
        the largest stride.  Unknown extents (pointer arguments with no
        size) come back as ``None``.  Scalars recover as ``()``.

        Note this uses only the accesses *this function* performs;
        :meth:`~repro.analysis.typeinfer.TypeInference.root_rectype`
        merges evidence module-wide for globals.
        """
        if root not in self._shape_cache:
            self._shape_cache[root] = shape_of_accesses(
                root.size_bytes, self.accesses.get(root, ()))
        return self._shape_cache[root]

    def describe(self) -> str:
        lines = [f"storage recovery for {self.function.name}:"]
        for root in self.roots:
            shape = self.shape(root)
            dims = "".join(f"[{d if d is not None else '?'}]" for d in shape)
            width = self.element_width(root)
            lines.append(f"  {root.kind} {root.name}{dims} "
                         f"(size={root.size_bytes}, elem={width})")
        return "\n".join(lines)


def recover_storage(function: Function,
                    loop_info: Optional[LoopInfo] = None,
                    counted_loops=None) -> StorageInfo:
    """Run storage recovery on ``function``.

    Prefer requesting the ``storage`` analysis through an
    :class:`~repro.analysis.manager.AnalysisManager`; this entry point is
    the construction choke point it calls.  ``counted_loops`` (the
    INDUCTION analysis result, ``{loop: CountedLoop|None}``) avoids
    re-deriving counted-loop descriptions the manager already holds.
    """
    info = StorageInfo(function)
    module = function.parent

    # 1. Enumerate roots: globals referenced, allocas, pointer arguments.
    referenced: Set[GlobalVariable] = set()
    for block in function.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, GlobalVariable):
                    referenced.add(op)
    if module is not None:
        for var in module.globals.values():
            if var in referenced:
                _add_root(info, var, StorageRoot(
                    "global", var.name, _sizeof_or_none(var.value_type)))
    for arg in function.arguments:
        if arg.type.is_pointer:
            _add_root(info, arg, StorageRoot(
                "argument", arg.name or f"arg{arg.index}", None))
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Alloca):
                _add_root(info, inst, StorageRoot(
                    "alloca", inst.name or "stack",
                    _sizeof_or_none(inst.allocated_type)))

    # 2. Pointer provenance.  Derived pointers with joins (phi/select)
    # need a fixpoint over the CFG; without joins every chain is a
    # def-before-use GEP/cast walk, so one pass in reverse postorder
    # resolves everything (the common case, and much cheaper).
    if function.blocks:
        if _has_pointer_joins(function):
            result = _Provenance(info.root_of_value).run(function)
            final: Dict[Value, object] = {}
            for state in result.block_out.values():
                for value, root in state.items():
                    if value not in final:
                        final[value] = root
                    elif final[value] is not root:
                        final[value] = _MANY
            for value, root in final.items():
                info.provenance[value] = \
                    root if isinstance(root, StorageRoot) else None
        else:
            _sparse_provenance(info, function)

    # 3. Harvest GEP access geometry per root.
    extents = _iv_extents(function, loop_info, counted_loops)
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, GetElementPtr):
                _record_gep(info, inst, extents)

    # 4. Partition scalar SSA values into phi webs.
    _build_webs(info, function)
    return info


def _has_pointer_joins(function: Function) -> bool:
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, (Phi, Select)) and inst.type.is_pointer:
                return True
    return False


def _sparse_provenance(info: StorageInfo, function: Function) -> None:
    """Single-pass provenance: reverse postorder visits every pointer
    definition after its operand's (defs dominate uses), so each
    GEP/cast inherits an already-resolved root."""
    from .cfg import reverse_postorder
    for block in reverse_postorder(function):
        for inst in block.instructions:
            if isinstance(inst, GetElementPtr):
                source = inst.pointer
            elif isinstance(inst, Cast) and inst.opcode in (
                    "bitcast", "inttoptr", "ptrtoint"):
                source = inst.value
            else:
                continue
            if source in info.provenance:
                prov = info.provenance[source]
                if prov is not None:
                    info.provenance[inst] = prov


def _add_root(info: StorageInfo, value: Value, root: StorageRoot) -> None:
    info.roots.append(root)
    info.root_of_value[value] = root
    info.provenance[value] = root
    info.homes[value] = StorageLocation(root)


def _sizeof_or_none(vtype: ir_ty.Type) -> Optional[int]:
    try:
        return ir_ty.sizeof(vtype)
    except TypeError:
        return None


def _iv_extents(function: Function,
                loop_info: Optional[LoopInfo],
                counted_loops=None) -> Dict[Value, int]:
    """Map induction phis to a proven constant extent (0-based, step 1)."""
    extents: Dict[Value, int] = {}
    if loop_info is None:
        return extents
    for loop in loop_info.all_loops():
        # Identity-keyed: a map built from another LoopInfo instance
        # (cache-less manager) misses, so analyze directly then.
        if counted_loops is not None and loop in counted_loops:
            counted = counted_loops[loop]
        else:
            counted = analyze_counted_loop(loop)
        if counted is None:
            continue
        if not isinstance(counted.start, ConstantInt) \
                or counted.start.value != 0:
            continue
        if counted.step.value != 1:
            continue
        if isinstance(counted.bound, ConstantInt) \
                and counted.predicate == "slt":
            extents[counted.phi] = counted.bound.value
    return extents


def _gep_offsets(gep: GetElementPtr):
    """Per-index ``(value, stride_bytes)`` terms and the constant offset.

    Strides come from the GEP's address computation itself (the scaled
    addressing a compiled binary exhibits); byte-level chains
    (``i8*`` + ``mul`` scaled index) are normalized to the same form by
    affine decomposition of the index expression.
    """
    terms: List[Tuple[Value, int]] = []
    const_offset = 0
    current = gep.pointer.type.pointee
    for position, index in enumerate(gep.indices):
        if position > 0:
            current = ir_ty.element_type(current)
        stride = _sizeof_or_none(current)
        if stride is None:
            continue
        affine, const = _affine_terms(index)
        const_offset += const * stride
        for value, coeff in affine:
            terms.append((value, coeff * stride))
    return terms, const_offset


def pointer_chain_terms(value: Value, max_depth: int = 16):
    """Accumulate a pointer expression's address arithmetic.

    Walks GEP chains and pointer-reinterpreting casts back toward the
    base, returning ``(base, [(value, stride_bytes)], const_bytes)`` —
    the affine form of the address relative to whatever ``base`` turns
    out to be (usually a storage root).
    """
    terms: List[Tuple[Value, int]] = []
    const_offset = 0
    current = value
    for _ in range(max_depth):
        if isinstance(current, Cast) and current.opcode in ("bitcast",
                                                            "inttoptr",
                                                            "ptrtoint"):
            current = current.value
            continue
        if isinstance(current, GetElementPtr):
            link_terms, link_const = _gep_offsets(current)
            terms.extend(link_terms)
            const_offset += link_const
            current = current.pointer
            continue
        break
    return current, terms, const_offset


def _record_gep(info: StorageInfo, gep: GetElementPtr,
                extents: Dict[Value, int]) -> None:
    root = info.provenance.get(gep)
    if root is None:
        return
    # Accumulate the whole chain (gep-of-gep) into one pattern.
    _, terms, const_offset = pointer_chain_terms(gep)
    strides = []
    matched_extents: List[Optional[int]] = []
    for value, stride in terms:
        if stride == 0:
            continue
        strides.append(abs(stride))
        matched_extents.append(extents.get(_strip_casts(value)))
    width = _leaf_width(gep)
    pattern = AccessPattern(tuple(sorted(strides, reverse=True)),
                            tuple(x for _, x in sorted(
                                zip(strides, matched_extents),
                                key=lambda sx: -sx[0])),
                            width)
    info.accesses.setdefault(root, []).append(pattern)
    info.homes[gep] = StorageLocation(root, const_offset, bool(strides))


def _leaf_width(gep: GetElementPtr) -> Optional[int]:
    """Access width evidence from the loads/stores this address feeds."""
    for user in gep.users:
        if isinstance(user, Load):
            return _sizeof_or_none(user.type)
        if isinstance(user, Store) and user.value is not gep:
            return _sizeof_or_none(user.value.type)
    return None


def _build_webs(info: StorageInfo, function: Function) -> None:
    parent: Dict[Value, Value] = {}

    def find(v: Value) -> Value:
        while parent.get(v, v) is not v:
            parent[v] = parent.get(parent[v], parent[v])
            v = parent[v]
        return v

    def union(a: Value, b: Value) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    candidates: List[Value] = []
    for arg in function.arguments:
        if not arg.type.is_pointer:
            candidates.append(arg)
            parent.setdefault(arg, arg)
    for block in function.blocks:
        for inst in block.instructions:
            if inst.type.is_void or inst.type.is_pointer:
                continue
            candidates.append(inst)
            parent.setdefault(inst, inst)
            if isinstance(inst, Phi):
                for value, _ in inst.incoming:
                    if isinstance(value, (Instruction, Argument)) \
                            and not value.type.is_pointer:
                        parent.setdefault(value, value)
                        union(inst, value)
    web_ids: Dict[Value, int] = {}
    next_id = 0
    for value in candidates:
        rep = find(value)
        if rep not in web_ids:
            web_ids[rep] = next_id
            next_id += 1
        web = web_ids[rep]
        info.variable_of[value] = web
        info._web_members.setdefault(web, []).append(value)
