"""Base-object alias analysis.

Intentionally intra-procedural and simple — exactly the limitation the
paper's Figure 2 case study turns on: two distinct *allocations* never
alias, but two pointer *arguments* may, which forces the parallelizer
to emit a runtime aliasing check with a sequential fallback.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..ir.instructions import Alloca, Call, Cast, GetElementPtr, Instruction, Load
from ..ir.values import Argument, GlobalVariable, Value


class AliasResult(Enum):
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


def base_object(pointer: Value) -> Value:
    """Walk GEP/bitcast chains to the underlying allocation site."""
    current = pointer
    while True:
        if isinstance(current, GetElementPtr):
            current = current.pointer
        elif isinstance(current, Cast) and current.opcode == "bitcast":
            current = current.value
        else:
            return current


def _is_identified_object(value: Value) -> bool:
    """Objects with a known, private allocation: allocas, globals, malloc."""
    if isinstance(value, (Alloca, GlobalVariable)):
        return True
    if isinstance(value, Call) and value.callee_name in ("malloc", "calloc"):
        return True
    return False


def alias(a: Value, b: Value) -> AliasResult:
    """Alias relation between two pointer values."""
    base_a, base_b = base_object(a), base_object(b)
    if base_a is base_b:
        if a is b:
            return AliasResult.MUST_ALIAS
        return AliasResult.MAY_ALIAS
    if _is_identified_object(base_a) and _is_identified_object(base_b):
        return AliasResult.NO_ALIAS
    if _is_identified_object(base_a) and isinstance(base_b, Argument):
        return AliasResult.MAY_ALIAS
    if _is_identified_object(base_b) and isinstance(base_a, Argument):
        return AliasResult.MAY_ALIAS
    # argument vs argument, or anything involving loads of pointers
    return AliasResult.MAY_ALIAS


def definitely_no_alias(a: Value, b: Value) -> bool:
    return alias(a, b) is AliasResult.NO_ALIAS
