"""Natural-loop detection and loop-shape queries.

``LoopInfo`` discovers natural loops from dominator-identified back
edges and arranges them into a forest.  ``Loop`` exposes the structural
queries the rotation pass, Polly, and SPLENDID's Loop-Rotate
Detransformer need: header, latch, preheader, exiting/exit blocks, and
whether the loop is in rotated (do-while) form.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.instructions import CondBranch, Phi
from ..ir.module import Function
from .dominators import DominatorTree


class Loop:
    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    # Structure ------------------------------------------------------------

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        depth, loop = 1, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    @property
    def latches(self) -> List[BasicBlock]:
        return [p for p in self.header.predecessors if p in self.blocks]

    @property
    def latch(self) -> Optional[BasicBlock]:
        latches = self.latches
        return latches[0] if len(latches) == 1 else None

    @property
    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header whose only
        successor is the header."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors == [self.header]:
            return candidate
        return None

    @property
    def exiting_blocks(self) -> List[BasicBlock]:
        result = []
        for block in self.blocks:
            if any(s not in self.blocks for s in block.successors):
                result.append(block)
        result.sort(key=_block_order_key)
        return result

    @property
    def exit_blocks(self) -> List[BasicBlock]:
        result = []
        for block in self.exiting_blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in result:
                    result.append(succ)
        return result

    @property
    def unique_exit(self) -> Optional[BasicBlock]:
        exits = self.exit_blocks
        return exits[0] if len(exits) == 1 else None

    # Shape ------------------------------------------------------------------

    @property
    def is_rotated(self) -> bool:
        """True when the (unique) latch is also the (unique) exiting block
        — the do-while shape produced by loop rotation."""
        latch = self.latch
        if latch is None:
            return False
        exiting = self.exiting_blocks
        return exiting == [latch] and isinstance(latch.terminator, CondBranch)

    @property
    def is_top_test(self) -> bool:
        """True when the header is the only exiting block and the body
        follows it (while/for shape).  Single-block loops test at the
        bottom by construction and report as rotated instead."""
        if self.latch is self.header:
            return False
        exiting = self.exiting_blocks
        return exiting == [self.header] and isinstance(
            self.header.terminator, CondBranch)

    def header_phis(self) -> List[Phi]:
        return [i for i in self.header.instructions if isinstance(i, Phi)]

    def blocks_in_layout_order(self) -> List[BasicBlock]:
        function = self.header.parent
        return [b for b in function.blocks if b in self.blocks]

    def __repr__(self) -> str:
        return (f"<Loop header={self.header.name} depth={self.depth} "
                f"blocks={sorted(b.name for b in self.blocks)}>")


def _block_order_key(block: BasicBlock):
    function = block.parent
    if function is not None and block in function.blocks:
        return function.blocks.index(block)
    return 0


class LoopInfo:
    """Loop forest for one function."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level: List[Loop] = []
        self._loop_of_header: Dict[BasicBlock, Loop] = {}
        self._innermost: Dict[BasicBlock, Loop] = {}
        self._discover()

    def _discover(self) -> None:
        # Find back edges: tail -> head where head dominates tail.
        back_edges: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in self.domtree.reachable:
            for succ in block.successors:
                if self.domtree.dominates(succ, block):
                    back_edges.setdefault(succ, []).append(block)

        # Build one loop per header, merging all its back edges.
        loops: List[Loop] = []
        for header, tails in back_edges.items():
            loop = Loop(header)
            worklist = list(tails)
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                worklist.extend(p for p in block.predecessors
                                if p in self.domtree._rpo_index)
            loops.append(loop)
            self._loop_of_header[header] = loop

        # Nest loops: a loop is a subloop of the smallest loop strictly
        # containing its header.
        loops.sort(key=lambda l: len(l.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if inner.header in outer.blocks and outer is not inner:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break
        self.top_level = [l for l in loops if l.parent is None]
        self.top_level.sort(key=lambda l: _block_order_key(l.header))
        for loop in loops:
            loop.subloops.sort(key=lambda l: _block_order_key(l.header))
        for loop in loops:
            for block in loop.blocks:
                current = self._innermost.get(block)
                if current is None or len(loop.blocks) < len(current.blocks):
                    self._innermost[block] = loop

    # Queries --------------------------------------------------------------------

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """Innermost loop containing ``block``."""
        return self._innermost.get(block)

    def loop_with_header(self, header: BasicBlock) -> Optional[Loop]:
        return self._loop_of_header.get(header)

    def all_loops(self) -> List[Loop]:
        result: List[Loop] = []
        stack = list(self.top_level)
        while stack:
            loop = stack.pop(0)
            result.append(loop)
            stack = loop.subloops + stack
        return result

    def innermost_loops(self) -> List[Loop]:
        return [l for l in self.all_loops() if not l.subloops]

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0
