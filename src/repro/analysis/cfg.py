"""Control-flow graph utilities: traversal orders and reachability."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..ir.block import BasicBlock
from ..ir.module import Function


def reachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first discovery order."""
    if not function.blocks:
        return []
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        order.append(block)
        stack.extend(reversed(block.successors))
    return order


def postorder(function: Function) -> List[BasicBlock]:
    result: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        seen.add(block)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                result.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry)
    return result


def reverse_postorder(function: Function) -> List[BasicBlock]:
    return list(reversed(postorder(function)))


def rpo_index(function: Function) -> Dict[BasicBlock, int]:
    return {block: i for i, block in enumerate(reverse_postorder(function))}


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry.  Returns removal count."""
    live = set(reachable_blocks(function))
    dead = [b for b in function.blocks if b not in live]
    for block in dead:
        for succ in block.successors:
            for phi in succ.phis():
                if any(pred is block for _, pred in phi.incoming):
                    phi.remove_incoming(block)
        for inst in list(block.instructions):
            inst.erase()
    for block in dead:
        function.remove_block(block)
    return len(dead)


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the pred->succ edge; returns the new block."""
    from ..ir.instructions import Branch

    function = pred.parent
    middle = BasicBlock(f"{pred.name}.split", function)
    function.add_block(middle, after=pred)
    term = pred.terminator
    for i, op in enumerate(term.operands):
        if op is succ:
            term.set_operand(i, middle)
    middle.append(Branch(succ))
    for phi in succ.phis():
        for idx in range(1, len(phi.operands), 2):
            if phi.operands[idx] is pred:
                phi.set_operand(idx, middle)
    return middle
