"""Backward liveness analysis over SSA values.

Used by the outliner (live-in computation for parallel regions) and by
tests validating the variable-renaming conflict rule: two values merged
into one source variable must never be simultaneously live.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, Phi
from ..ir.module import Function
from ..ir.values import Argument, Value
from .cfg import postorder


def _is_trackable(value: Value) -> bool:
    return isinstance(value, (Instruction, Argument))


class Liveness:
    """live_in / live_out per block, plus a per-instruction query."""

    def __init__(self, function: Function):
        self.function = function
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    def _compute(self) -> None:
        use: Dict[BasicBlock, Set[Value]] = {}
        defs: Dict[BasicBlock, Set[Value]] = {}
        phi_uses: Dict[BasicBlock, Set[Value]] = {}  # keyed by PREDECESSOR

        for block in self.function.blocks:
            upward: Set[Value] = set()
            defined: Set[Value] = set()
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    # Phi uses occur at the end of the incoming edges.
                    for value, pred in inst.incoming:
                        if _is_trackable(value):
                            phi_uses.setdefault(pred, set()).add(value)
                else:
                    for op in inst.operands:
                        if _is_trackable(op) and op not in defined:
                            upward.add(op)
                defined.add(inst)
            use[block] = upward
            defs[block] = defined

        blocks = self.function.blocks
        self.live_in = {b: set() for b in blocks}
        self.live_out = {b: set() for b in blocks}
        order = postorder(self.function)
        changed = True
        while changed:
            changed = False
            for block in order:
                out: Set[Value] = set(phi_uses.get(block, ()))
                for succ in block.successors:
                    out |= self.live_in[succ]
                new_in = use[block] | (out - defs[block])
                if out != self.live_out[block] or new_in != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = new_in
                    changed = True

    def live_after(self, inst: Instruction) -> Set[Value]:
        """Values live immediately after ``inst`` executes."""
        block = inst.parent
        live = set(self.live_out[block])
        index = block.index_of(inst)
        for later in reversed(block.instructions[index + 1:]):
            live.discard(later)
            if isinstance(later, Phi):
                continue
            for op in later.operands:
                if _is_trackable(op):
                    live.add(op)
        return live

    def overlap(self, a: Value, b: Value) -> bool:
        """True if values ``a`` and ``b`` are ever live at the same time.

        Conservative SSA overlap test: b is live right after a's
        definition, or vice versa (sufficient for conflict detection on
        values proposed to share one source variable).
        """
        if isinstance(a, Instruction) and a.parent is not None:
            if b in self.live_after(a):
                return True
        if isinstance(b, Instruction) and b.parent is not None:
            if a in self.live_after(b):
                return True
        return False
