"""Constraint-based type inference over a recovered-type lattice.

The second stage of the metadata-free recovery subsystem (the first is
:mod:`repro.analysis.storage`).  Instead of *reading* declared types off
storage roots, the engine re-derives them typehoon-style from how values
are *used*:

* arithmetic opcodes type their operands (``fadd`` means double,
  ``sdiv``/signed compares mean signed integers);
* memory ops link a pointer's pointee to the value loaded or stored
  through it (access widths are instruction facts, like ``movsd`` vs
  ``movl`` in a binary);
* GEPs link pointers into the storage geometry recovered by stage one;
* cast opcodes pin the widths on both of their sides;
* call sites unify arguments with callee parameters (module-wide), and
  extern declarations contribute their header signatures.

Constraints are solved with a union-find over type variables: equality
constraints unify, primitive evidence joins on a lattice
(``BOT < int(width)/double/pointer < TOP``), and pointee links
propagate through a bounded fixpoint.  The result maps every SSA value
and every storage root to a :class:`RecType` — ``int``, ``double``,
``T*``, ``T[N][M]``, or a struct-ish field layout for roots with
heterogeneous constant-offset accesses — which the decompiler prints
when running with ``--types=recovered`` and the lint layer
cross-checks against the declared (debug) types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir import types as ir_ty
from ..ir.instructions import (Alloca, BinaryOp, Call, Cast, CondBranch,
                               DbgValue, FCmp, GetElementPtr, ICmp,
                               Instruction, Load, Phi, Ret, Select, Store)
from ..ir.module import Function, Module
from ..ir.values import (Argument, Constant, ConstantFloat, ConstantInt,
                         ConstantPointerNull, GlobalVariable, UndefValue,
                         Value)
from .storage import StorageInfo, StorageRoot, shape_of_accesses

_MAX_ROUNDS = 64

FLOAT_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
SIGNED_OPS = frozenset({"sdiv", "srem", "ashr"})
SIGNED_PREDICATES = frozenset({"slt", "sle", "sgt", "sge"})


# ---------------------------------------------------------------------------
# Recovered types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecType:
    """Base class for recovered types."""

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RUnknown(RecType):
    """No usage evidence (lattice bottom) — surfaced as a lint warning."""

    def render(self) -> str:
        return "<unknown>"


@dataclass(frozen=True)
class RConflict(RecType):
    """Contradictory usage evidence (lattice top)."""

    reason: str = ""

    def render(self) -> str:
        return f"<conflict{': ' + self.reason if self.reason else ''}>"


@dataclass(frozen=True)
class RInt(RecType):
    bits: Optional[int] = None      # None: width unproven (prints as int)
    signed: bool = True

    def render(self) -> str:
        if self.bits is not None and self.bits > 32:
            return "long"
        return "int"


@dataclass(frozen=True)
class RFloat(RecType):
    def render(self) -> str:
        return "double"


@dataclass(frozen=True)
class RPointer(RecType):
    pointee: RecType = field(default_factory=RUnknown)

    def render(self) -> str:
        return f"{self.pointee.render()}*"


@dataclass(frozen=True)
class RArray(RecType):
    element: RecType
    dims: Tuple[Optional[int], ...]

    def render(self) -> str:
        dims = "".join(f"[{d if d is not None else ''}]" for d in self.dims)
        return f"{self.element.render()}{dims}"


@dataclass(frozen=True)
class RStruct(RecType):
    """Field layout recovered from heterogeneous constant offsets."""

    fields: Tuple[Tuple[int, RecType], ...]   # (byte offset, type)

    def render(self) -> str:
        body = "; ".join(f"+{off}: {ft.render()}" for off, ft in self.fields)
        return f"struct {{ {body} }}"


def is_resolved(rec: RecType) -> bool:
    if isinstance(rec, (RUnknown, RConflict)):
        return False
    if isinstance(rec, RPointer):
        return True                  # a pointer with unknown pointee is fine
    if isinstance(rec, RArray):
        return is_resolved(rec.element)
    return True


# ---------------------------------------------------------------------------
# The primitive lattice and the union-find solver
# ---------------------------------------------------------------------------

_BOT = ("bot",)
_FLOAT = ("float",)
_PTR = ("ptr",)


def _int(bits: Optional[int], signed: bool) -> tuple:
    return ("int", bits, signed)


def _join(a: tuple, b: tuple) -> tuple:
    """Join two primitive lattice points (TOP is ('top', reason))."""
    if a == b:
        return a
    if a == _BOT:
        return b
    if b == _BOT:
        return a
    if a[0] == "top":
        return a
    if b[0] == "top":
        return b
    if a[0] == "int" and b[0] == "int":
        bits_a, bits_b = a[1], b[1]
        if bits_a is None:
            bits = bits_b
        elif bits_b is None:
            bits = bits_a
        else:
            bits = max(bits_a, bits_b)
        return _int(bits, a[2] or b[2])
    return ("top", f"{a[0]} vs {b[0]}")


class _Solver:
    """Union-find over type variables with evidence joining."""

    def __init__(self):
        self.parent: List[int] = []
        self.prim: List[tuple] = []
        self.pointee: Dict[int, int] = {}

    def fresh(self) -> int:
        tv = len(self.parent)
        self.parent.append(tv)
        self.prim.append(_BOT)
        return tv

    def find(self, tv: int) -> int:
        root = tv
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[tv] != root:
            self.parent[tv], tv = root, self.parent[tv]
        return root

    def add_prim(self, tv: int, prim: tuple) -> None:
        root = self.find(tv)
        self.prim[root] = _join(self.prim[root], prim)

    def prim_of(self, tv: int) -> tuple:
        return self.prim[self.find(tv)]

    def pointee_of(self, tv: int, create: bool = False) -> Optional[int]:
        root = self.find(tv)
        existing = self.pointee.get(root)
        if existing is not None:
            return self.find(existing)
        if create:
            fresh = self.fresh()
            self.pointee[root] = fresh
            self.add_prim(root, _PTR)
            return fresh
        return None

    def unify(self, a: int, b: int, depth: int = 0) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        pa, pb = self.pointee.get(ra), self.pointee.get(rb)
        self.parent[ra] = rb
        self.prim[rb] = _join(self.prim[ra], self.prim[rb])
        if pa is not None and pb is not None:
            if depth < 12:
                self.unify(pa, pb, depth + 1)
        elif pa is not None:
            self.pointee[rb] = pa


# ---------------------------------------------------------------------------
# Constraint generation + result
# ---------------------------------------------------------------------------

class TypeInference:
    """Module-wide recovered types.

    Construct through the analysis manager (``get_module(TYPEINFER, m)``)
    or :func:`infer_module_types`; the per-value results are exposed with
    :meth:`rectype_of`, per-root declarations with :meth:`root_rectype`,
    and cross-checks against declared types with :meth:`disagreements`.
    """

    def __init__(self, module: Module,
                 storages: Dict[Function, StorageInfo]):
        self.module = module
        self.storages = storages
        self._solver = _Solver()
        self._value_tv: Dict[Value, int] = {}
        #: (root, field key) -> tv; key is 'elem' or ('field', offset).
        self._slot_tv: Dict[Tuple[StorageRoot, object], int] = {}
        self._ret_tv: Dict[Function, int] = {}
        self._struct_roots: Dict[StorageRoot, Set[int]] = {}
        self.rounds = 0
        self._generate()

    # -- Type variables ----------------------------------------------------

    def _tv(self, value: Value) -> int:
        tv = self._value_tv.get(value)
        if tv is None:
            tv = self._solver.fresh()
            self._value_tv[value] = tv
            if isinstance(value, ConstantInt):
                self._solver.add_prim(tv, _int(value.type.bits, True))
            elif isinstance(value, ConstantFloat):
                self._solver.add_prim(tv, _FLOAT)
            elif isinstance(value, ConstantPointerNull):
                self._solver.add_prim(tv, _PTR)
        return tv

    def _slot(self, root: StorageRoot, key: object) -> int:
        tv = self._slot_tv.get((root, key))
        if tv is None:
            tv = self._solver.fresh()
            self._slot_tv[(root, key)] = tv
        return tv

    def _elem_tv(self, storage: StorageInfo, value: Value,
                 create: bool = True) -> Optional[int]:
        """The element slot a pointer value addresses, if its provenance
        and offset shape are recovered; falls back to the pointer tv's
        own pointee variable."""
        home = storage.home(value)
        root = storage.root_for(value)
        if root is not None:
            if home is not None and not home.is_element \
                    and home.const_offset and not storage.is_array_like(root):
                key: object = ("field", home.const_offset)
                self._struct_roots.setdefault(root, set()).add(
                    home.const_offset)
            else:
                key = "elem"
            return self._slot(root, key)
        return self._solver.pointee_of(self._tv(value), create=create)

    def _ret(self, function: Function) -> int:
        tv = self._ret_tv.get(function)
        if tv is None:
            tv = self._solver.fresh()
            self._ret_tv[function] = tv
        return tv

    # -- Generation --------------------------------------------------------

    def _generate(self) -> None:
        for function in self.module.defined_functions():
            storage = self.storages[function]
            for block in function.blocks:
                for inst in block.instructions:
                    self._constrain(function, storage, inst)
        self.rounds = 1  # single generation pass; unification is eager

    def _constrain(self, function: Function, storage: StorageInfo,
                   inst: Instruction) -> None:
        solver = self._solver
        if isinstance(inst, DbgValue):
            return
        if isinstance(inst, BinaryOp):
            prim = _FLOAT if inst.opcode in FLOAT_OPS else \
                _int(None, inst.opcode in SIGNED_OPS)
            for side in (inst.lhs, inst.rhs, inst):
                solver.add_prim(self._tv(side), prim)
            if inst.opcode not in ("shl", "ashr", "lshr"):
                solver.unify(self._tv(inst.lhs), self._tv(inst.rhs))
                solver.unify(self._tv(inst), self._tv(inst.lhs))
            return
        if isinstance(inst, ICmp):
            solver.unify(self._tv(inst.lhs), self._tv(inst.rhs))
            if inst.predicate in SIGNED_PREDICATES:
                solver.add_prim(self._tv(inst.lhs), _int(None, True))
            solver.add_prim(self._tv(inst), _int(1, False))
            return
        if isinstance(inst, FCmp):
            for side in (inst.lhs, inst.rhs):
                solver.add_prim(self._tv(side), _FLOAT)
            solver.add_prim(self._tv(inst), _int(1, False))
            return
        if isinstance(inst, Load):
            slot = self._elem_tv(storage, inst.pointer)
            if slot is not None:
                solver.unify(slot, self._tv(inst))
            solver.add_prim(self._tv(inst.pointer), _PTR)
            self._access_width(inst, inst.type)
            return
        if isinstance(inst, Store):
            slot = self._elem_tv(storage, inst.pointer)
            if slot is not None:
                solver.unify(slot, self._tv(inst.value))
            solver.add_prim(self._tv(inst.pointer), _PTR)
            self._access_width(inst.value, inst.value.type)
            return
        if isinstance(inst, GetElementPtr):
            solver.add_prim(self._tv(inst), _PTR)
            solver.add_prim(self._tv(inst.pointer), _PTR)
            for index in inst.indices:
                if not isinstance(index, Constant):
                    solver.add_prim(self._tv(index), _int(None, True))
            return
        if isinstance(inst, Cast):
            self._constrain_cast(inst)
            return
        if isinstance(inst, Select):
            solver.unify(self._tv(inst.if_true), self._tv(inst.if_false))
            solver.unify(self._tv(inst), self._tv(inst.if_true))
            solver.add_prim(self._tv(inst.condition), _int(1, False))
            return
        if isinstance(inst, Phi):
            for value, _ in inst.incoming:
                if value is inst or isinstance(value, UndefValue):
                    continue
                solver.unify(self._tv(inst), self._tv(value))
            return
        if isinstance(inst, Ret):
            if inst.value is not None:
                solver.unify(self._ret(function), self._tv(inst.value))
            return
        if isinstance(inst, Call):
            self._constrain_call(inst)
            return
        if isinstance(inst, CondBranch):
            solver.add_prim(self._tv(inst.condition), _int(1, False))
            return

    def _access_width(self, value: Value, vtype: ir_ty.Type) -> None:
        """Access width is an instruction fact (load/store operand size)."""
        if vtype.is_float:
            self._solver.add_prim(self._tv(value), _FLOAT)
        elif vtype.is_integer:
            self._solver.add_prim(self._tv(value), _int(vtype.bits, False))

    def _constrain_cast(self, inst: Cast) -> None:
        solver = self._solver
        opcode = inst.opcode
        src, dst = self._tv(inst.value), self._tv(inst)
        if opcode in ("sext", "zext", "trunc"):
            src_bits = inst.value.type.bits \
                if inst.value.type.is_integer else None
            dst_bits = inst.type.bits if inst.type.is_integer else None
            solver.add_prim(src, _int(src_bits, opcode == "sext"))
            solver.add_prim(dst, _int(dst_bits, opcode == "sext"))
        elif opcode == "sitofp":
            solver.add_prim(src, _int(None, True))
            solver.add_prim(dst, _FLOAT)
        elif opcode == "fptosi":
            solver.add_prim(src, _FLOAT)
            solver.add_prim(dst, _int(None, True))
        elif opcode == "bitcast":
            # A reinterpretation: both sides are pointers but their
            # pointees are deliberately NOT unified.
            solver.add_prim(src, _PTR)
            solver.add_prim(dst, _PTR)
        elif opcode == "ptrtoint":
            solver.add_prim(src, _PTR)
            solver.add_prim(dst, _int(64, False))
        elif opcode == "inttoptr":
            solver.add_prim(src, _int(64, False))
            solver.add_prim(dst, _PTR)

    def _constrain_call(self, inst: Call) -> None:
        solver = self._solver
        callee = self.module.functions.get(inst.callee_name) \
            if self.module is not None else None
        if callee is None:
            return
        if callee.is_declaration:
            # Extern signature = header knowledge.
            for arg, param_type in zip(inst.args,
                                       callee.function_type.params):
                prim = _prim_of_type(param_type)
                if prim is not None:
                    solver.add_prim(self._tv(arg), prim)
            if not inst.type.is_void:
                prim = _prim_of_type(callee.return_type)
                if prim is not None:
                    solver.add_prim(self._tv(inst), prim)
            return
        for arg, param in zip(inst.args, callee.arguments):
            solver.unify(self._tv(arg), self._tv(param))
        if not inst.type.is_void:
            solver.unify(self._tv(inst), self._ret(callee))

    # -- Resolution --------------------------------------------------------

    def rectype_of(self, value: Value, depth: int = 0) -> RecType:
        tv = self._value_tv.get(value)
        if tv is None:
            return RUnknown()
        return self._resolve(tv, depth)

    def return_rectype(self, function: Function) -> RecType:
        tv = self._ret_tv.get(function)
        return self._resolve(tv) if tv is not None else RUnknown()

    def _resolve(self, tv: int, depth: int = 0) -> RecType:
        prim = self._solver.prim_of(tv)
        if prim == _BOT:
            pointee = self._solver.pointee_of(tv)
            if pointee is not None:
                return RPointer(self._resolve(pointee, depth + 1)
                                if depth < 4 else RUnknown())
            return RUnknown()
        if prim[0] == "top":
            return RConflict(prim[1])
        if prim[0] == "int":
            return RInt(prim[1], prim[2] or prim[1] is None)
        if prim == _FLOAT:
            return RFloat()
        if prim == _PTR:
            pointee = self._solver.pointee_of(tv)
            if pointee is not None and depth < 4:
                return RPointer(self._resolve(pointee, depth + 1))
            return RPointer(RUnknown())
        return RConflict(str(prim))

    def element_rectype(self, function: Function,
                        root: StorageRoot) -> RecType:
        tv = self._slot_tv.get((root, "elem"))
        if tv is None:
            # Scalar root: its single field slot is at offset 0.
            tv = self._slot_tv.get((root, ("field", 0)))
        return self._resolve(tv) if tv is not None else RUnknown()

    def _patterns_of(self, function: Function, root: StorageRoot):
        """Access evidence for ``root`` — module-wide for globals.

        A global's layout is a whole-module fact: a function touching
        only ``a[0][j]`` observes just the unit stride, but another
        function's ``a[i][j]`` accesses pin the outer stride too, so
        globals pool every function's patterns before shaping.
        """
        if root.kind == "global":
            merged: list = []
            for storage in self.storages.values():
                merged.extend(storage.accesses.get(root, ()))
            return merged
        storage = self.storages.get(function)
        return storage.accesses.get(root, ()) if storage else ()

    def root_rectype(self, function: Function, root: StorageRoot) -> RecType:
        """The full recovered declaration type of a storage root."""
        patterns = self._patterns_of(function, root)
        array_like = any(p.strides for p in patterns)
        offsets = self._struct_roots.get(root)
        if offsets and not array_like:
            fields = []
            for off in sorted(offsets):
                tv = self._slot_tv.get((root, ("field", off)))
                fields.append((off, self._resolve(tv)
                               if tv is not None else RUnknown()))
            if len(fields) > 1 and len({f for _, f in fields}) > 1:
                return RStruct(tuple(fields))
        element = self.element_rectype(function, root)
        if array_like:
            return RArray(element,
                          shape_of_accesses(root.size_bytes, patterns))
        if root.kind == "argument":
            return RPointer(element)
        if root.size_bytes is not None and isinstance(element, (RInt, RFloat)):
            width = 8 if isinstance(element, RFloat) \
                else max(1, (element.bits or 32) // 8)
            if root.size_bytes > width and root.size_bytes % width == 0:
                # Sized storage never indexed with a variable stride —
                # recover the flat extent from the allocation size.
                return RArray(element, (root.size_bytes // width,))
        return element

    # -- Cross-checking ----------------------------------------------------

    def disagreements(self) -> List["TypeDisagreement"]:
        """Recovered-vs-declared comparisons (the lint layer's input)."""
        findings: List[TypeDisagreement] = []
        for function in self.module.defined_functions():
            storage = self.storages[function]
            for root in storage.roots:
                declared = _declared_root_type(storage, root)
                if declared is None:
                    continue
                recovered = self.root_rectype(function, root)
                verdict = _compare(recovered, declared)
                if verdict is not None:
                    findings.append(TypeDisagreement(
                        function.name, root.name, recovered,
                        declared, verdict))
        return findings


@dataclass
class TypeDisagreement:
    function: str
    location: str
    recovered: RecType
    declared: RecType
    kind: str          # 'mismatch' | 'unresolved'

    def render(self) -> str:
        return (f"{self.function}/{self.location}: recovered "
                f"{self.recovered.render()} vs declared "
                f"{self.declared.render()}")


def rectype_of_ir(vtype: ir_ty.Type) -> RecType:
    """The declared IR type expressed in the recovered-type vocabulary."""
    if vtype.is_float:
        return RFloat()
    if vtype.is_integer:
        return RInt(vtype.bits, True)
    if vtype.is_pointer:
        return RPointer(rectype_of_ir(vtype.pointee))
    if vtype.is_array:
        dims: List[int] = []
        current: ir_ty.Type = vtype
        while current.is_array:
            dims.append(current.count)
            current = current.element
        return RArray(rectype_of_ir(current), tuple(dims))
    return RUnknown()


def _declared_root_type(storage: StorageInfo,
                        root: StorageRoot) -> Optional[RecType]:
    for value, candidate in storage.root_of_value.items():
        if candidate is not root:
            continue
        if isinstance(value, GlobalVariable):
            return rectype_of_ir(value.value_type)
        if isinstance(value, Alloca):
            return rectype_of_ir(value.allocated_type)
        if isinstance(value, Argument):
            return rectype_of_ir(value.type)
    return None


def _compare(recovered: RecType, declared: RecType) -> Optional[str]:
    """None when consistent; 'unresolved' or 'mismatch' otherwise."""
    if isinstance(recovered, RUnknown):
        return "unresolved"
    if isinstance(recovered, RConflict):
        return "mismatch"
    if isinstance(declared, RArray):
        if isinstance(recovered, RArray):
            if not _scalar_agrees(recovered.element, declared.element):
                return "mismatch"
            if len(recovered.dims) != len(declared.dims):
                # Unit-stride evidence alone cannot distinguish a flat
                # layout from a nested one of equal extent, so a
                # coarser recovery (double[576] vs double[24][24]) is
                # consistent when the element counts match.
                if (len(recovered.dims) < len(declared.dims)
                        and None not in recovered.dims
                        and None not in declared.dims
                        and _dim_product(recovered.dims)
                        == _dim_product(declared.dims)):
                    return None
                return "mismatch"
            for rec_dim, decl_dim in zip(recovered.dims, declared.dims):
                if rec_dim is not None and rec_dim != decl_dim:
                    return "mismatch"
            return None
        if isinstance(recovered, (RInt, RFloat)):
            # A root that is an array in the declaration but was only
            # ever touched whole (never indexed): tolerated for 1-elem.
            return "mismatch"
        return "mismatch"
    if isinstance(declared, RPointer):
        if isinstance(recovered, RPointer):
            if isinstance(recovered.pointee, RUnknown):
                return None
            if _scalar_agrees(recovered.pointee, _leaf(declared.pointee)):
                return None
            return "mismatch"
        return "mismatch"
    return None if _scalar_agrees(recovered, declared) else "mismatch"


def _dim_product(dims: Sequence[int]) -> int:
    total = 1
    for dim in dims:
        total *= dim
    return total


def _leaf(rec: RecType) -> RecType:
    while isinstance(rec, RArray):
        rec = rec.element
    return rec


def _scalar_agrees(recovered: RecType, declared: RecType) -> bool:
    if isinstance(recovered, RUnknown):
        return True
    if isinstance(recovered, RFloat) and isinstance(declared, RFloat):
        return True
    if isinstance(recovered, RInt) and isinstance(declared, RInt):
        if recovered.bits is None or declared.bits is None:
            return True
        return recovered.bits == declared.bits
    if isinstance(recovered, RPointer) and isinstance(declared, RPointer):
        return True
    return False


def _prim_of_type(vtype: ir_ty.Type) -> Optional[tuple]:
    if vtype.is_float:
        return _FLOAT
    if vtype.is_integer:
        return _int(vtype.bits, True)
    if vtype.is_pointer:
        return _PTR
    return None


def infer_module_types(module: Module,
                       storages: Optional[Dict[Function, StorageInfo]] = None
                       ) -> TypeInference:
    """Run type inference over a whole module.

    Prefer requesting the ``typeinfer`` analysis through an
    :class:`~repro.analysis.manager.AnalysisManager`; this entry point
    is the construction choke point it calls.
    """
    if storages is None:
        from .storage import recover_storage
        storages = {fn: recover_storage(fn)
                    for fn in module.defined_functions()}
    return TypeInference(module, storages)
